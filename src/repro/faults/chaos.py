"""``repro chaos``: the pipeline-hardening proof, run as a campaign.

For every fault class of a named matrix this module runs a small but
real experiment campaign (the same trial jobs, executor, warehouse and
service code paths production uses) under that class's deterministic
:class:`~repro.faults.plan.FaultPlan`, then checks the **chaos
invariant** against a fault-free baseline:

    every trial either lands in the warehouse *bit-identical* to the
    fault-free run, or surfaces as a *typed, resumable* failure (a
    ``failed``/``crashed``/``timeout``/``quarantined`` job record, or a
    sideline spill record) — never silently missing, duplicated, or
    corrupted.

After the faulted run, the recovery path the docs prescribe is executed
for real — replay the sideline spill with
:func:`repro.store.ingest.ingest_sideline`, then re-run the campaign
fault-free over the surviving store — and the recovered store must equal
the baseline exactly.  Journal-fault classes additionally prove the
manifest stays ingestable (torn lines are skipped, not fatal).

Everything is seeded: a failing chaos run reproduces with the same
``--seed``.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.faults import inject
from repro.faults.breaker import reset_breakers
from repro.faults.plan import (
    FAULT_DRAIN_DURING_LEASE,
    FAULT_HTTP_DISCONNECT,
    FAULT_LEASE_EXPIRY,
    FAULT_SHARD_LOSS,
    FAULT_SUPERVISOR_SIGKILL,
    FAULT_WORKER_HANG,
    FAULT_WORKER_SIGKILL,
    FaultPlan,
    fault_matrix,
)
from repro.faults.retry import RetryPolicy, default_sleep

#: Statuses that count as "typed, resumable failure" under the invariant.
_TYPED_FAILURES = ("failed", "crashed", "timeout", "quarantined")

#: Snapshot of one trial payload: (dtype, shape, raw bytes).
_Snap = Tuple[str, Tuple[int, ...], bytes]


def _snap(value: np.ndarray) -> _Snap:
    array = np.ascontiguousarray(np.asarray(value))
    return (array.dtype.str, tuple(array.shape), array.tobytes())


@dataclass
class FaultOutcome:
    """What happened (and what was proven) for one fault class."""

    fault: str
    fires: int = 0
    typed_failures: List[str] = field(default_factory=list)
    #: Cache keys of jobs that ended in a typed failure — the invariant
    #: accepts these as "accounted for" when absent from the store.
    accounted_keys: set = field(default_factory=set)
    spilled: int = 0
    violations: List[str] = field(default_factory=list)
    recovered: bool = False
    note: str = ""

    def ok(self) -> bool:
        return not self.violations and self.recovered

    def summary(self) -> str:
        verdict = "ok" if self.ok() else "FAIL"
        parts = [f"{self.fault:<18} {verdict}", f"fires={self.fires}"]
        if self.typed_failures:
            parts.append(f"typed_failures={len(self.typed_failures)}")
        if self.spilled:
            parts.append(f"spilled={self.spilled}")
        if self.note:
            parts.append(self.note)
        line = "  ".join(parts)
        for violation in self.violations:
            line += f"\n    violation: {violation}"
        return line


@dataclass
class ChaosReport:
    """The full ``repro chaos`` result across a fault matrix."""

    matrix: str
    seed: int
    baseline_trials: int
    outcomes: List[FaultOutcome] = field(default_factory=list)

    def ok(self) -> bool:
        return bool(self.outcomes) and all(o.ok() for o in self.outcomes)

    def summary(self) -> str:
        lines = [
            f"chaos matrix {self.matrix!r} (seed {self.seed}, "
            f"{self.baseline_trials} baseline trials):"
        ]
        lines += ["  " + o.summary() for o in self.outcomes]
        lines.append("chaos: " + ("PASS" if self.ok() else "FAIL"))
        return "\n".join(lines)


def _chaos_jobs(duration_s: float, trials: int):
    from repro.exec.jobs import measurement_trial_jobs
    from repro.harness.config import ExperimentConfig, NetworkCondition

    condition = NetworkCondition(bandwidth_mbps=8, rtt_ms=20, buffer_bdp=0.6)
    config = ExperimentConfig(duration_s=float(duration_s), trials=int(trials))
    return measurement_trial_jobs("quiche", "cubic", condition, config)


def _topology_joblist(duration_s: float, trials: int):
    """The topology-campaign trial jobs the topology fault class runs.

    Same shape of work as any ``"topology"`` campaign cell — a dumbbell
    TopologySpec compiled and measured through the content-addressed
    trial-job path — so the chaos invariant covers the topo subsystem
    with the exact machinery every other class uses.
    """
    from repro.topo.campaign import topology_trial_jobs
    from repro.topo.spec import dumbbell

    return topology_trial_jobs(
        dumbbell("cubic"), float(duration_s), int(trials), base_seed=0
    )


def _peer_joblist(duration_s: float, trials: int):
    """The peer-conformance trial jobs the peer fault class runs.

    Same shape of work as any ``"peer_conformance"`` campaign cell — a
    two-CCA peer group's self-competition trials through the
    content-addressed trial-job path — so the chaos invariant covers
    the ccax subsystem with the exact machinery every other class uses.
    """
    from dataclasses import replace

    from repro.ccax.campaign import peer_trial_jobs
    from repro.harness import scenarios
    from repro.harness.config import ExperimentConfig

    config = replace(
        ExperimentConfig(), duration_s=float(duration_s), trials=int(trials)
    )
    return peer_trial_jobs(
        ["bbr3", "gcc"], scenarios.shallow_buffer(), config
    )


def _baseline(joblist, workdir: Path) -> Dict[str, _Snap]:
    from repro.exec import Executor
    from repro.harness.cache import ResultCache

    # Explicit directory: never share the user's QUICBENCH_CACHE_DIR, so
    # a chaos run is hermetic and the baseline is really recomputed.
    cache = ResultCache(directory=workdir / "baseline-cache")
    with Executor(jobs=1, cache=cache) as executor:
        values = executor.run(joblist, campaign="chaos-baseline")
    return {
        job.key: _snap(value)
        for job, value in zip(joblist, values)
        if job.key and value is not None
    }


def _check_store(
    store_path: Path,
    baseline: Dict[str, _Snap],
    accounted: set,
    sideline_keys: set,
) -> Tuple[List[str], List[str]]:
    """Invariant check: returns (violations, keys missing from the store)."""
    from repro.store.warehouse import ResultStore, StoreError

    violations: List[str] = []
    missing: List[str] = []
    with ResultStore(store_path) as store:
        for key, (dtype, shape, raw) in sorted(baseline.items()):
            try:
                value = store.get_trial(key, strict=True)
            except StoreError as exc:
                violations.append(f"corrupt payload for {key}: {exc}")
                continue
            if value is None:
                missing.append(key)
                if key not in accounted and key not in sideline_keys:
                    violations.append(
                        f"trial {key} silently missing (no typed failure, "
                        "no sideline record)"
                    )
            elif _snap(value) != (dtype, shape, raw):
                violations.append(
                    f"trial {key} differs from the fault-free baseline"
                )
    return violations, missing


def _sideline_keys(path: Path) -> set:
    import json

    keys = set()
    if not path.exists():
        return keys
    with open(path, "r") as handle:
        for line in handle:
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if record.get("kind") == "trial":
                keys.add(record.get("key"))
    return keys


def _run_faulted(
    fault: str,
    plan: FaultPlan,
    joblist,
    classdir: Path,
    jobs: int,
    outcome: FaultOutcome,
) -> None:
    """One campaign under ``plan``, recording what the pipeline reported."""
    from repro.exec import Executor
    from repro.exec.executor import ExecutionError
    from repro.store.cache import StoreCache
    from repro.store.warehouse import ResultStore

    # Worker faults need a real pool (the fault site lives in the worker
    # bootstrap); everything else runs serial to keep store/journal fault
    # schedules single-threaded and exactly reproducible.
    class_jobs = jobs if fault.startswith("worker-") else 1
    timeout_s = 3.0 if fault == FAULT_WORKER_HANG else 30.0
    with inject.active_plan(plan) as injector:
        store = ResultStore(classdir / "store.db")
        cache = StoreCache(store, directory=classdir / "cache")
        executor = Executor(
            jobs=class_jobs,
            cache=cache,
            timeout_s=timeout_s,
            retry=RetryPolicy(max_attempts=3, backoff_s=0.01),
            fault_plan=plan,
            store=store,
            store_run=f"chaos-{fault}",
            manifest_path=classdir / "manifest.jsonl",
        )
        try:
            executor.run(joblist, campaign=f"chaos-{fault}")
        except ExecutionError as exc:
            outcome.typed_failures = [
                f"{r.label or r.index}: {r.status} ({r.error})"
                for r in exc.failures
            ]
            outcome.accounted_keys = {
                joblist[r.index].key for r in exc.failures
            }
        finally:
            retried = sum(1 for r in executor.last_records if r.retried)
            if retried:
                outcome.note = f"retried={retried}"
            executor.close()
            if executor.store_sink is not None:
                outcome.spilled = executor.store_sink.spilled
            store.close()
        outcome.fires = injector.fire_count()


def _recover(
    joblist, classdir: Path, baseline: Dict[str, _Snap], outcome: FaultOutcome
) -> None:
    """Run the documented recovery: replay sideline, re-run fault-free."""
    from repro.exec import Executor
    from repro.store.cache import StoreCache
    from repro.store.ingest import ingest_sideline
    from repro.store.warehouse import ResultStore

    reset_breakers()  # recovery starts with a healthy circuit
    store_path = classdir / "store.db"
    sideline = Path(f"{store_path}.sideline.jsonl")
    with ResultStore(store_path) as store:
        if sideline.exists():
            report = ingest_sideline(store, sideline)
            outcome.note = (
                (outcome.note + "  " if outcome.note else "")
                + f"sideline replayed: {report.trials} trials "
                f"(+{report.trials_deduped} dup)"
            )
        cache = StoreCache(store, directory=classdir / "recovery-cache")
        with Executor(jobs=1, cache=cache, store=store,
                      store_run="chaos-recovery") as executor:
            executor.run(joblist, campaign="chaos-recovery")
    violations, missing = _check_store(store_path, baseline, set(), set())
    if violations or missing:
        outcome.violations += [
            f"post-recovery: {v}" for v in violations
        ] + [f"post-recovery: {k} still missing" for k in missing]
    else:
        outcome.recovered = True


def _check_manifest_ingestable(classdir: Path, outcome: FaultOutcome) -> None:
    """Journal-fault classes: a torn manifest must ingest, not explode."""
    from repro.store.ingest import ingest_manifest
    from repro.store.warehouse import ResultStore

    manifest = classdir / "manifest.jsonl"
    if not manifest.exists():
        return
    try:
        with ResultStore(classdir / "ingest-check.db") as scratch:
            report = ingest_manifest(scratch, manifest)
    except Exception as exc:  # noqa: BLE001 - any crash is the violation
        outcome.violations.append(
            f"manifest ingest crashed on the torn journal: "
            f"{type(exc).__name__}: {exc}"
        )
    else:
        if report.skipped_lines:
            outcome.note = (
                outcome.note + " " if outcome.note else ""
            ) + f"manifest: {report.skipped_lines} torn lines skipped"


def _run_service_class(
    plan: FaultPlan,
    classdir: Path,
    duration_s: float,
    trials: int,
    outcome: FaultOutcome,
) -> None:
    """http-disconnect: a real client/service round trip under resets.

    The client's first request eats an injected connection reset; the
    invariant here is typed handling end-to-end — ``submit_blocking``
    retries through a :class:`ServiceError` (never a raw socket error),
    the campaign completes, and every stored payload decodes.
    """
    from repro.service.client import ServiceClient, ServiceError
    from repro.service.server import ServiceApp
    from repro.store.warehouse import ResultStore, StoreError

    store_path = classdir / "store.db"
    app = ServiceApp(store_path=str(store_path), port=0, workers=1)
    app.start()
    try:
        client = ServiceClient(app.url, timeout_s=30.0)
        spec = {
            "kind": "matrix",
            "stacks": ["quiche"],
            "ccas": ["cubic"],
            "conditions": [
                {"bandwidth_mbps": 8, "rtt_ms": 20, "buffer_bdp": 0.6}
            ],
            "duration_s": float(duration_s),
            "trials": int(trials),
            "run": "chaos-http",
        }
        with inject.active_plan(plan) as injector:
            try:
                campaign = client.submit_blocking(
                    spec,
                    retry=RetryPolicy(
                        max_attempts=None, backoff_s=0.05,
                        backoff_cap_s=1.0, deadline_s=60.0,
                    ),
                )
            except ServiceError as exc:
                outcome.violations.append(
                    f"submit did not survive the disconnect: {exc}"
                )
                return
            final = client.wait(campaign["id"], timeout_s=300.0,
                                raise_on_failure=False)
            outcome.fires = injector.fire_count()
        if outcome.fires == 0:
            outcome.violations.append("disconnect fault never fired")
        if final["state"] != "done":
            outcome.typed_failures.append(
                f"campaign {final['id']}: {final['state']} ({final['error']})"
            )
            outcome.violations.append(
                f"campaign did not complete after the disconnect: "
                f"{final['state']}"
            )
            return
    finally:
        app.stop(drain=False)
    with ResultStore(store_path) as store:
        keys = store.trial_keys()
        if not keys:
            outcome.violations.append("campaign stored no trials")
        for key in keys:
            try:
                store.get_trial(key, strict=True)
            except StoreError as exc:
                outcome.violations.append(f"corrupt payload for {key}: {exc}")
    if not outcome.violations:
        outcome.recovered = True
        outcome.note = "service round trip survived the reset"


def _fabric_spec(duration_s: float, trials: int) -> dict:
    """The campaign the fabric fault classes run: enough work that a
    lease reliably outlives its TTL mid-execution."""
    return {
        "kind": "conformance",
        "stacks": ["quiche"],
        "ccas": ["cubic"],
        "duration_s": float(max(duration_s, 2.0)),
        "trials": max(int(trials), 2),
        "run": "chaos-fabric",
    }


def _store_snaps(path: Path) -> Dict[str, _Snap]:
    from repro.store.warehouse import ResultStore

    with ResultStore(path) as store:
        return {key: _snap(store.get_trial(key)) for key in store.trial_keys()}


def _fabric_baseline(spec: dict, basedir: Path) -> Dict[str, _Snap]:
    """Run the fabric chaos campaign fault-free through the
    single-process scheduler; its store is the bit-identity reference."""
    return _fabric_baselines([spec], basedir)


def _fabric_baselines(specs: List[dict], basedir: Path) -> Dict[str, _Snap]:
    import time

    from repro.harness.cache import cache_dir_override
    from repro.service.scheduler import TERMINAL_STATES, Scheduler
    from repro.service.specs import parse_campaign_spec

    basedir.mkdir(parents=True, exist_ok=True)
    store_path = basedir / "baseline.db"
    with cache_dir_override(basedir / "baseline-cache"):
        scheduler = Scheduler(str(store_path), workers=1)
        for spec in specs:
            job = scheduler.submit(parse_campaign_spec(spec))
            deadline = time.monotonic() + 300.0
            while time.monotonic() < deadline:
                if scheduler.job(job.id).state in TERMINAL_STATES:
                    break
                default_sleep(0.05)
        scheduler.shutdown(drain=True, timeout=30.0)
    return _store_snaps(store_path)


def _check_fabric_job(
    store_path: Path,
    campaign_id: str,
    coordinator,
    outcome: FaultOutcome,
    min_attempts: int = 2,
    max_attempts: Optional[int] = None,
) -> None:
    """One campaign's half of the fabric invariant: it completed, and
    its lease turned over exactly as the fault class demands."""
    from repro.fabric.queue import WorkQueue

    job = coordinator.job(campaign_id)
    if job is None or job.state != "done":
        state = job.state if job else "missing"
        outcome.violations.append(
            f"campaign did not complete after the fault: {state}"
        )
    with WorkQueue(str(store_path)) as q:
        task = q.task(campaign_id)
    attempts = task.attempts if task else 0
    if attempts < min_attempts:
        outcome.violations.append(
            f"the lease never turned over (attempts={attempts})"
        )
    elif max_attempts is not None and attempts > max_attempts:
        outcome.violations.append(
            f"the lease turned over under the fault "
            f"(attempts={attempts}) — work ran twice"
        )
    else:
        outcome.note = (
            outcome.note + "  " if outcome.note else ""
        ) + f"attempts={attempts}"


def _check_fabric_outcome(
    classdir: Path,
    campaign_id: str,
    coordinator,
    baseline: Dict[str, _Snap],
    outcome: FaultOutcome,
) -> None:
    """The fabric invariant: campaign done after >= 2 lease attempts,
    and the store matches the fault-free baseline bit-for-bit."""
    _check_fabric_job(
        classdir / "store.db", campaign_id, coordinator, outcome
    )
    violations, missing = _check_store(
        classdir / "store.db", baseline, set(), set()
    )
    outcome.violations += violations
    outcome.violations += [f"trial {k} missing after recovery" for k in missing]
    if not outcome.violations:
        outcome.recovered = True


def _run_lease_expiry_class(
    plan: FaultPlan,
    classdir: Path,
    duration_s: float,
    trials: int,
    outcome: FaultOutcome,
) -> None:
    """lease-expiry: attempt 1's heartbeats are all lost, the lease
    expires mid-campaign, attempt 2 re-runs it; the stale attempt-1
    completion must dedupe ('duplicate'), never double-write."""
    import threading
    import time

    from repro.fabric.coordinator import Coordinator
    from repro.fabric.worker import FabricWorker, LocalTransport
    from repro.harness.cache import cache_dir_override
    from repro.service.scheduler import TERMINAL_STATES
    from repro.service.specs import parse_campaign_spec

    spec = _fabric_spec(duration_s, trials)
    baseline = _fabric_baseline(spec, classdir / "baseline")
    store_path = classdir / "store.db"
    coordinator = Coordinator(
        str(store_path), lease_ttl_s=0.4, max_attempts=5
    )
    try:
        with cache_dir_override(classdir / "cache"), inject.active_plan(
            plan
        ) as injector:
            job = coordinator.submit(parse_campaign_spec(spec))
            workers = [
                FabricWorker(
                    LocalTransport(coordinator),
                    name=f"chaos-lease-w{i}",
                    store_path=str(store_path),
                    poll_s=0.05,
                    ttl_s=0.4,
                )
                for i in (1, 2)
            ]
            threads = [
                threading.Thread(target=w.run, daemon=True) for w in workers
            ]
            for thread in threads:
                thread.start()
            deadline = time.monotonic() + 300.0
            while time.monotonic() < deadline:
                if coordinator.job(job.id).state in TERMINAL_STATES:
                    break
                default_sleep(0.05)
            for worker in workers:
                worker.stop()
            for thread in threads:
                thread.join(timeout=10.0)
            outcome.fires = injector.fire_count()
        if outcome.fires == 0:
            outcome.violations.append("lease-expiry fault never fired")
        _check_fabric_outcome(
            classdir, job.id, coordinator, baseline, outcome
        )
    finally:
        coordinator.shutdown(drain=False)


def _run_worker_sigkill_class(
    plan: FaultPlan,
    classdir: Path,
    duration_s: float,
    trials: int,
    outcome: FaultOutcome,
) -> None:
    """worker-sigkill: a real ``repro fabric worker`` subprocess is
    SIGKILLed mid-lease (no cleanup, no goodbye); the lease expires and
    a second worker finishes the campaign bit-identically."""
    import os
    import signal
    import subprocess
    import sys
    import threading
    import time

    from repro.fabric.coordinator import Coordinator
    from repro.fabric.worker import FabricWorker, LocalTransport
    from repro.harness.cache import CACHE_DIR_ENV, cache_dir_override
    from repro.service.scheduler import TERMINAL_STATES
    from repro.service.server import ServiceApp
    from repro.service.specs import parse_campaign_spec

    spec = _fabric_spec(duration_s, trials)
    baseline = _fabric_baseline(spec, classdir / "baseline")
    store_path = classdir / "store.db"
    coordinator = Coordinator(
        str(store_path), lease_ttl_s=1.0, max_attempts=5
    )
    app = ServiceApp(str(store_path), port=0, scheduler=coordinator)
    app.start()
    proc = None
    try:
        with cache_dir_override(classdir / "cache"):
            job = coordinator.submit(parse_campaign_spec(spec))
            env = dict(os.environ)
            env[CACHE_DIR_ENV] = str(classdir / "victim-cache")
            proc = subprocess.Popen(
                [
                    sys.executable, "-m", "repro", "fabric", "worker",
                    "--url", app.url, "--store", str(store_path),
                    "--ttl", "1.0", "--poll", "0.05",
                    "--name", "chaos-victim",
                ],
                env=env,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )
            # Kill the instant the victim holds the lease: mid-campaign,
            # trials in flight, nothing flushed.
            leased = False
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if coordinator.fabric_status()["leases"]:
                    leased = True
                    break
                default_sleep(0.02)
            if not leased:
                outcome.violations.append(
                    "victim worker never leased the task"
                )
                return
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30.0)
            outcome.fires = 1  # the kill is the (process-level) fault
            rescuer = FabricWorker(
                LocalTransport(coordinator),
                name="chaos-rescuer",
                store_path=str(store_path),
                poll_s=0.05,
                ttl_s=1.0,
            )
            thread = threading.Thread(target=rescuer.run, daemon=True)
            thread.start()
            deadline = time.monotonic() + 300.0
            while time.monotonic() < deadline:
                if coordinator.job(job.id).state in TERMINAL_STATES:
                    break
                default_sleep(0.05)
            rescuer.stop()
            thread.join(timeout=10.0)
        _check_fabric_outcome(
            classdir, job.id, coordinator, baseline, outcome
        )
    finally:
        if proc is not None and proc.poll() is None:
            proc.kill()
        app.stop(drain=False)


def _run_shard_loss_class(
    plan: FaultPlan,
    classdir: Path,
    duration_s: float,
    trials: int,
    outcome: FaultOutcome,
) -> None:
    """shard-loss: a campaign lands across a 3-shard warehouse, then one
    non-meta shard file is deleted.  Reads of lost-shard trials must
    raise a typed :class:`ShardLostError` (never a silent gap), the
    run's report must carry the partial flag with the exact missing
    keys, and ``recover_shard`` + a fault-free re-run must restore the
    store bit-identical to the baseline."""
    import threading
    import time

    from repro.fabric.coordinator import Coordinator
    from repro.fabric.worker import FabricWorker, LocalTransport
    from repro.harness.cache import cache_dir_override
    from repro.service.scheduler import TERMINAL_STATES, Scheduler
    from repro.service.specs import parse_campaign_spec
    from repro.store import ShardLostError, open_store, shard_index

    spec = _fabric_spec(duration_s, trials)
    baseline = _fabric_baseline(spec, classdir / "baseline")
    root = classdir / "store"
    open_store(root, shards=3).close()
    coordinator = Coordinator(str(root), lease_ttl_s=10.0, max_attempts=3)
    try:
        with cache_dir_override(classdir / "cache"):
            job = coordinator.submit(parse_campaign_spec(spec))
            worker = FabricWorker(
                LocalTransport(coordinator),
                name="chaos-shard-w1",
                store_path=str(root),
                poll_s=0.05,
                ttl_s=10.0,
            )
            thread = threading.Thread(target=worker.run, daemon=True)
            thread.start()
            deadline = time.monotonic() + 300.0
            while time.monotonic() < deadline:
                if coordinator.job(job.id).state in TERMINAL_STATES:
                    break
                default_sleep(0.05)
            worker.stop()
            thread.join(timeout=10.0)
    finally:
        coordinator.shutdown(drain=False)
    if coordinator.job(job.id).state != "done":
        outcome.violations.append(
            f"sharded campaign never completed: {coordinator.job(job.id).state}"
        )
        return

    # Pre-fault sanity: the sharded store must already match baseline.
    with open_store(root) as store:
        shards = store.shards
        for key, snap in sorted(baseline.items()):
            value = store.get_trial(key)
            if value is None or _snap(value) != snap:
                outcome.violations.append(
                    f"sharded trial {key} differs pre-fault"
                )
    if outcome.violations:
        return

    # The fault: delete the first non-meta shard holding a trial (or
    # shard 1 if routing put everything on the meta shard).
    victim = next(
        (
            shard_index(key, shards)
            for key in sorted(baseline)
            if shard_index(key, shards) != 0
        ),
        1,
    )
    lost_keys = sorted(
        k for k in baseline if shard_index(k, shards) == victim
    )
    for suffix in ("", "-wal", "-shm"):
        path = root / f"shard-{victim:03d}.db{suffix}"
        if path.exists():
            path.unlink()
    outcome.fires = 1

    with open_store(root) as store:
        if victim not in store.lost_shards:
            outcome.violations.append(
                f"deleted shard {victim} not detected as lost"
            )
        if store.integrity_ok():
            outcome.violations.append(
                "integrity_ok() still true with a lost shard"
            )
        report = store.run_report(spec["run"])
        if sorted(report["missing"]) != lost_keys:
            outcome.violations.append(
                f"run_report missing={report['missing']} != "
                f"expected {lost_keys}"
            )
        if bool(report["partial"]) != bool(lost_keys):
            outcome.violations.append(
                f"run_report partial={report['partial']} with "
                f"{len(lost_keys)} lost trial(s)"
            )
        for key in lost_keys:
            try:
                store.get_trial(key)
            except ShardLostError as exc:
                if exc.shard != victim:
                    outcome.violations.append(
                        f"ShardLostError names shard {exc.shard}, "
                        f"not {victim}"
                    )
            else:
                outcome.violations.append(
                    f"read of lost-shard trial {key} returned without "
                    "a typed error (silent gap)"
                )
        for key in sorted(set(baseline) - set(lost_keys)):
            value = store.get_trial(key)
            if value is None or _snap(value) != baseline[key]:
                outcome.violations.append(
                    f"live-shard trial {key} unreadable after the fault"
                )
        healed = store.recover_shard(victim)
        if sorted(healed["missing"]) != lost_keys:
            outcome.violations.append(
                f"recover_shard missing={healed['missing']} != "
                f"expected {lost_keys}"
            )

    # Recovery: fault-free re-run over the recovered store refills only
    # the lost payloads (content-addressed identity dedupes the rest).
    import time as _time

    with cache_dir_override(classdir / "heal-cache"):
        scheduler = Scheduler(str(root), workers=1)
        job2 = scheduler.submit(parse_campaign_spec(spec))
        deadline = _time.monotonic() + 300.0
        while _time.monotonic() < deadline:
            if scheduler.job(job2.id).state in TERMINAL_STATES:
                break
            default_sleep(0.05)
        scheduler.shutdown(drain=True, timeout=30.0)

    with open_store(root) as store:
        if not store.integrity_ok():
            outcome.violations.append("store degraded after recovery")
        report = store.run_report(spec["run"])
        if report["partial"]:
            outcome.violations.append(
                f"run still partial after recovery: {report['missing']}"
            )
        for key, snap in sorted(baseline.items()):
            value = store.get_trial(key)
            if value is None:
                outcome.violations.append(
                    f"trial {key} missing after recovery"
                )
            elif _snap(value) != snap:
                outcome.violations.append(
                    f"trial {key} differs from baseline after recovery"
                )
    outcome.note = (
        f"shard {victim} lost with {len(lost_keys)} trial(s), recovered"
    )
    if not outcome.violations:
        outcome.recovered = True


def _run_drain_during_lease_class(
    plan: FaultPlan,
    classdir: Path,
    duration_s: float,
    trials: int,
    outcome: FaultOutcome,
) -> None:
    """drain-during-lease: the leaseholder gets a durable drain
    directive mid-lease.  It must finish that lease (attempts stays 1 —
    nothing handed over, nothing doubled), deregister and exit; a
    second worker started after the drain absorbs the remaining
    campaign.  The store must match the fault-free baseline exactly."""
    import threading
    import time

    from repro.fabric.coordinator import Coordinator
    from repro.fabric.worker import FabricWorker, LocalTransport
    from repro.harness.cache import cache_dir_override
    from repro.service.scheduler import TERMINAL_STATES
    from repro.service.specs import parse_campaign_spec

    spec_a = _fabric_spec(duration_s, trials)
    spec_b = dict(
        _fabric_spec(duration_s + 0.5, trials), run="chaos-fabric-b"
    )
    baseline = _fabric_baselines([spec_a, spec_b], classdir / "baseline")
    store_path = classdir / "store.db"
    coordinator = Coordinator(str(store_path), lease_ttl_s=10.0, max_attempts=3)
    victim_thread = None
    rescuer = None
    rescuer_thread = None
    try:
        with cache_dir_override(classdir / "cache"):
            job_a = coordinator.submit(parse_campaign_spec(spec_a))
            job_b = coordinator.submit(parse_campaign_spec(spec_b))
            victim = FabricWorker(
                LocalTransport(coordinator),
                name="chaos-drain-victim",
                store_path=str(store_path),
                poll_s=0.05,
                ttl_s=10.0,
            )
            victim_thread = threading.Thread(target=victim.run, daemon=True)
            victim_thread.start()
            # Wait until the victim actually holds a lease, then drain
            # it mid-flight.
            deadline = time.monotonic() + 60.0
            leased = False
            while time.monotonic() < deadline:
                leases = coordinator.fabric_status()["leases"]
                if any(l["owner"] == victim.name for l in leases):
                    leased = True
                    break
                default_sleep(0.02)
            if not leased:
                outcome.violations.append("victim never held a lease")
                victim.stop()
                return
            coordinator.drain_worker(victim.name)
            outcome.fires = 1
            rescuer = FabricWorker(
                LocalTransport(coordinator),
                name="chaos-drain-rescuer",
                store_path=str(store_path),
                poll_s=0.05,
                ttl_s=10.0,
            )
            rescuer_thread = threading.Thread(target=rescuer.run, daemon=True)
            rescuer_thread.start()
            seen_owners: Dict[str, set] = {}
            deadline = time.monotonic() + 300.0
            while time.monotonic() < deadline:
                for lease in coordinator.fabric_status()["leases"]:
                    seen_owners.setdefault(
                        lease["campaign"], set()
                    ).add(lease["owner"])
                states = {
                    coordinator.job(job_a.id).state,
                    coordinator.job(job_b.id).state,
                }
                if states <= set(TERMINAL_STATES):
                    break
                default_sleep(0.05)
            # The drained victim must exit on its own (never killed).
            victim_thread.join(timeout=60.0)
            if victim_thread.is_alive():
                outcome.violations.append(
                    "drained worker never exited on its own"
                )
                victim.stop()
            elif not victim.drained:
                outcome.violations.append(
                    "victim exited without observing the drain directive"
                )
            rescuer.stop()
            rescuer_thread.join(timeout=10.0)
        # The drained worker deregistered: no active registry row left.
        active = [
            w["name"]
            for w in coordinator.workers()
            if w["name"] == victim.name
        ]
        if active:
            outcome.violations.append(
                f"drained worker still registered: {active}"
            )
        # Its lease was finished, not handed over: exactly one attempt.
        _check_fabric_job(
            store_path, job_a.id, coordinator, outcome,
            min_attempts=1, max_attempts=1,
        )
        _check_fabric_job(
            store_path, job_b.id, coordinator, outcome,
            min_attempts=1, max_attempts=1,
        )
        # The rescuer (not the drained victim) ran the second campaign:
        # a draining worker's lease request gets the exit directive, so
        # the victim must never appear as job B's leaseholder.
        if victim.name in seen_owners.get(job_b.id, set()):
            outcome.violations.append(
                "drained worker leased new work after the directive"
            )
        violations, missing = _check_store(
            store_path, baseline, set(), set()
        )
        outcome.violations += violations
        outcome.violations += [
            f"trial {k} missing after the drain" for k in missing
        ]
        if not outcome.violations:
            outcome.recovered = True
    finally:
        coordinator.shutdown(drain=False)


def _run_supervisor_sigkill_class(
    plan: FaultPlan,
    classdir: Path,
    duration_s: float,
    trials: int,
    outcome: FaultOutcome,
) -> None:
    """supervisor-sigkill: a real ``repro fabric supervise`` subprocess
    spawns the fleet, then dies by SIGKILL mid-campaign.  The workers it
    spawned are untouched (they answer to the registry, not the
    supervisor), the campaign completes on a single lease attempt, and
    a replacement supervisor adopts the same fleet by reading the same
    warehouse — then drains it clean."""
    import os
    import signal
    import subprocess
    import sys
    import time

    from repro.fabric.coordinator import Coordinator
    from repro.fabric.queue import WorkQueue
    from repro.fabric.supervisor import FleetSupervisor, SupervisorConfig
    from repro.harness.cache import CACHE_DIR_ENV, cache_dir_override
    from repro.service.scheduler import TERMINAL_STATES
    from repro.service.server import ServiceApp
    from repro.service.specs import parse_campaign_spec

    spec = _fabric_spec(duration_s, trials)
    baseline = _fabric_baseline(spec, classdir / "baseline")
    store_path = classdir / "store.db"
    coordinator = Coordinator(str(store_path), lease_ttl_s=10.0, max_attempts=3)
    app = ServiceApp(str(store_path), port=0, scheduler=coordinator)
    app.start()
    proc = None
    try:
        with cache_dir_override(classdir / "cache"):
            job = coordinator.submit(parse_campaign_spec(spec))
            env = dict(os.environ)
            env[CACHE_DIR_ENV] = str(classdir / "fleet-cache")
            proc = subprocess.Popen(
                [
                    sys.executable, "-m", "repro", "fabric", "supervise",
                    "--db", str(store_path), "--url", app.url,
                    "--store", str(store_path),
                    "--min-workers", "1", "--max-workers", "2",
                    "--interval", "0.1", "--ttl", "10.0",
                    "--poll", "0.05",
                ],
                env=env,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )
            # Kill the supervisor the moment its spawned worker holds
            # the lease: fleet alive, campaign in flight, supervisor
            # gone without cleanup.
            leased = False
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if coordinator.fabric_status()["leases"]:
                    leased = True
                    break
                default_sleep(0.02)
            if not leased:
                outcome.violations.append(
                    "supervised worker never leased the task"
                )
                return
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30.0)
            outcome.fires = 1
            deadline = time.monotonic() + 300.0
            while time.monotonic() < deadline:
                if coordinator.job(job.id).state in TERMINAL_STATES:
                    break
                default_sleep(0.05)
        # A replacement supervisor adopts the orphaned fleet from the
        # registry alone (its handles dict starts empty) and retires it.
        with WorkQueue(str(store_path)) as queue:
            replacement = FleetSupervisor(
                queue,
                config=SupervisorConfig(min_workers=0, max_workers=2),
            )
            adopted = [
                w["name"]
                for w in replacement.fleet()
                if w["state"] == "active"
            ]
            if not adopted:
                outcome.violations.append(
                    "replacement supervisor found no live workers in "
                    "the registry"
                )
            for name in adopted:
                queue.drain_worker(name)
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if not [
                    w for w in queue.workers() if w["state"] == "active"
                ]:
                    break
                default_sleep(0.1)
            leftover = [
                w["name"] for w in queue.workers() if w["state"] == "active"
            ]
            if leftover:
                outcome.violations.append(
                    f"orphaned workers never drained: {leftover}"
                )
        outcome.note = f"adopted {len(adopted)} worker(s) after the kill"
        _check_fabric_job(
            store_path, job.id, coordinator, outcome,
            min_attempts=1, max_attempts=1,
        )
        violations, missing = _check_store(
            store_path, baseline, set(), set()
        )
        outcome.violations += violations
        outcome.violations += [
            f"trial {k} missing after the kill" for k in missing
        ]
        if not outcome.violations:
            outcome.recovered = True
    finally:
        if proc is not None and proc.poll() is None:
            proc.kill()
        app.stop(drain=False)


def run_chaos(
    matrix: str = "smoke",
    workdir: Optional[Union[str, Path]] = None,
    duration_s: float = 2.0,
    trials: int = 1,
    jobs: int = 2,
    seed: int = 0,
    log: Optional[Callable[[str], None]] = None,
) -> ChaosReport:
    """Run the chaos campaign for one named fault matrix.

    Returns a :class:`ChaosReport`; ``report.ok()`` is the CI gate.
    ``workdir`` (a scratch directory is created when omitted) receives
    one subdirectory per fault class with its store, manifest and any
    sideline spill — kept for post-mortem when a class fails.
    """
    import tempfile

    def say(message: str) -> None:
        if log is not None:
            log(message)

    if workdir is None:
        workdir = Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)

    resolved = fault_matrix(matrix, seed=seed)
    joblist = _chaos_jobs(duration_s, trials)
    say(f"chaos: baseline campaign ({len(joblist)} jobs)...")
    baseline = _baseline(joblist, workdir)
    report = ChaosReport(
        matrix=matrix, seed=seed, baseline_trials=len(baseline)
    )

    for fault, plan in resolved.plans.items():
        say(f"chaos: injecting {fault} ({plan.describe()})")
        classdir = workdir / fault
        classdir.mkdir(parents=True, exist_ok=True)
        outcome = FaultOutcome(fault=fault)
        reset_breakers()
        try:
            if fault == FAULT_HTTP_DISCONNECT:
                _run_service_class(plan, classdir, duration_s, trials, outcome)
            elif fault == FAULT_LEASE_EXPIRY:
                _run_lease_expiry_class(
                    plan, classdir, duration_s, trials, outcome
                )
            elif fault == FAULT_WORKER_SIGKILL:
                _run_worker_sigkill_class(
                    plan, classdir, duration_s, trials, outcome
                )
            elif fault == FAULT_SHARD_LOSS:
                _run_shard_loss_class(
                    plan, classdir, duration_s, trials, outcome
                )
            elif fault == FAULT_SUPERVISOR_SIGKILL:
                _run_supervisor_sigkill_class(
                    plan, classdir, duration_s, trials, outcome
                )
            elif fault == FAULT_DRAIN_DURING_LEASE:
                _run_drain_during_lease_class(
                    plan, classdir, duration_s, trials, outcome
                )
            else:
                _run_faulted(fault, plan, joblist, classdir, jobs, outcome)
                accounted = getattr(outcome, "accounted_keys", set())
                sideline_keys = _sideline_keys(
                    Path(f"{classdir / 'store.db'}.sideline.jsonl")
                )
                violations, _missing = _check_store(
                    classdir / "store.db", baseline, accounted, sideline_keys
                )
                outcome.violations += violations
                _check_manifest_ingestable(classdir, outcome)
                _recover(joblist, classdir, baseline, outcome)
        finally:
            inject.deactivate()
            reset_breakers()
        say("chaos: " + outcome.summary().replace("\n", "\nchaos: "))
        report.outcomes.append(outcome)

    # Campaign-kind classes ride along in every matrix: the same
    # store-locked schedule against repro.topo and repro.ccax trial
    # jobs, proving the bit-identical-or-typed-failure invariant holds
    # for each newer campaign kind with exactly the machinery used
    # above.
    from repro.faults.plan import FAULT_STORE_LOCKED, _single_class_plan

    ride_alongs = (
        ("topology", _topology_joblist),
        ("peer_conformance", _peer_joblist),
    )
    for kind, joblist_fn in ride_alongs:
        fault = f"{FAULT_STORE_LOCKED}@{kind}"
        plan = _single_class_plan(FAULT_STORE_LOCKED, seed)
        say(f"chaos: injecting {fault} ({plan.describe()})")
        classdir = workdir / fault
        classdir.mkdir(parents=True, exist_ok=True)
        outcome = FaultOutcome(fault=fault)
        reset_breakers()
        try:
            kind_jobs = joblist_fn(duration_s, trials)
            kind_baseline = _baseline(kind_jobs, workdir / f"{kind}-baseline")
            _run_faulted(fault, plan, kind_jobs, classdir, jobs, outcome)
            sideline_keys = _sideline_keys(
                Path(f"{classdir / 'store.db'}.sideline.jsonl")
            )
            violations, _missing = _check_store(
                classdir / "store.db",
                kind_baseline,
                getattr(outcome, "accounted_keys", set()),
                sideline_keys,
            )
            outcome.violations += violations
            _recover(kind_jobs, classdir, kind_baseline, outcome)
        finally:
            inject.deactivate()
            reset_breakers()
        say("chaos: " + outcome.summary().replace("\n", "\nchaos: "))
        report.outcomes.append(outcome)
    return report


__all__ = ["ChaosReport", "FaultOutcome", "run_chaos"]
