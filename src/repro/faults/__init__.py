"""``repro.faults`` — deterministic fault injection and pipeline hardening.

Failure is a first-class, reproducible scenario: a seeded
:class:`~repro.faults.plan.FaultPlan` schedules worker crashes, locked
databases, full disks, torn journals, clock skew and dropped
connections at named injection seams threaded through the exec → store
→ service pipeline; :class:`~repro.faults.retry.RetryPolicy` is the one
retry/backoff implementation everything shares; circuit breakers
(:mod:`repro.faults.breaker`) turn persistent dependency failure into
graceful degradation instead of cascade; and
:func:`~repro.faults.chaos.run_chaos` (the ``repro chaos`` CLI) proves
the pipeline invariant under every fault class: a trial either lands
bit-identical to the fault-free baseline or surfaces as a typed,
resumable failure — never silently missing, duplicated, or corrupted.
"""

from repro.faults.breaker import (
    BreakerOpen,
    CircuitBreaker,
    degraded,
    get_breaker,
    reset_breakers,
)
from repro.faults.inject import (
    FaultInjector,
    InjectedFault,
    activate,
    active,
    active_plan,
    deactivate,
    fault_point,
    fault_value,
)
from repro.faults.plan import (
    FAULT_CLASSES,
    FaultMatrix,
    FaultPlan,
    FaultRule,
    fault_matrix,
    rule,
)
from repro.faults.retry import RetryPolicy, default_monotonic, default_sleep

__all__ = [
    "FAULT_CLASSES",
    "BreakerOpen",
    "CircuitBreaker",
    "FaultInjector",
    "FaultMatrix",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "RetryPolicy",
    "activate",
    "active",
    "active_plan",
    "deactivate",
    "default_monotonic",
    "default_sleep",
    "degraded",
    "fault_matrix",
    "fault_point",
    "fault_value",
    "get_breaker",
    "reset_breakers",
    "rule",
]
