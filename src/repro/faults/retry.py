"""``RetryPolicy``: the one retry/backoff implementation in the codebase.

Before this module existed the pipeline carried three divergent retry
loops — ``Executor._backoff`` + a bare ``time.sleep``, the warehouse's
unbounded locked-spin, and the service client's hand-rolled 429 loop.
They disagreed about deadlines, jitter and injectability, and none could
be tested without real sleeping.  ``RetryPolicy`` replaces all three:

* bounded attempts (``max_attempts``; ``None`` = unlimited, bound by
  the deadline instead),
* exponential backoff (``backoff_s * 2**(attempt-1)``, capped at
  ``backoff_cap_s``) with *deterministic seeded* jitter — the jitter for
  attempt ``n`` under seed ``s`` is always the same number, so retry
  schedules are reproducible, not merely random,
* a total ``deadline_s`` measured on the injectable ``clock``,
* injectable ``sleep``/``clock`` seams (the PR 4 pattern): tests pass a
  fake pair and retry paths run instantly.

The lint ``raw-sleep-retry`` rule forbids ``time.sleep`` in the pipeline
packages outside this module's sanctioned seam, so the implementation
count stays at exactly one.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Optional


def default_sleep(seconds: float) -> None:
    """The one sanctioned blocking sleep in the pipeline packages.

    Every retry path sleeps through an injectable callable defaulting to
    this function (``LintConfig.sanctioned_sleep`` names exactly this
    seam); tests substitute a recording fake and run instantly.
    """
    time.sleep(seconds)


def default_monotonic() -> float:
    """The sanctioned monotonic read backing retry deadlines and breakers."""
    return time.monotonic()  # lint: disable=wall-clock -- the sanctioned monotonic seam retry deadlines and breakers inject


@dataclass(frozen=True)
class RetryPolicy:
    """Declarative retry behaviour with injectable time.

    ``call(fn)`` runs ``fn`` until it succeeds, a non-retryable
    exception escapes, attempts run out, or the next pause would cross
    the deadline — whichever comes first.  The *original* exception is
    re-raised on exhaustion; callers wanting a typed error wrap it.
    """

    max_attempts: Optional[int] = 3
    backoff_s: float = 0.05
    backoff_cap_s: float = 5.0
    deadline_s: Optional[float] = None
    jitter: float = 0.0
    seed: int = 0
    sleep: Callable[[float], None] = default_sleep
    clock: Callable[[], float] = default_monotonic

    def backoff(self, attempt: int) -> float:
        """The pause after failed attempt ``attempt`` (1-based)."""
        pause = min(
            self.backoff_cap_s, self.backoff_s * (2 ** max(0, attempt - 1))
        )
        if self.jitter:
            # Deterministic per-(seed, attempt) jitter in [0, jitter]:
            # retries de-synchronise across workers (each gets its own
            # seed) while any one schedule replays exactly.
            frac = random.Random(self.seed * 1000003 + attempt).random()
            pause *= 1.0 + self.jitter * frac
        return pause

    def give_up(self, started_at: float, attempt: int, pause: float) -> bool:
        """True when no further attempt should be made."""
        if self.max_attempts is not None and attempt >= self.max_attempts:
            return True
        if self.deadline_s is not None:
            if (self.clock() - started_at) + pause >= self.deadline_s:
                return True
        return False

    def call(
        self,
        fn: Callable,
        retryable: Callable[[BaseException], bool] = lambda exc: True,
        delay: Optional[Callable[[int, BaseException], float]] = None,
        on_retry: Optional[Callable[[int, BaseException, float], None]] = None,
    ):
        """Run ``fn()`` under this policy.

        ``retryable(exc)`` filters which failures retry; ``delay``
        overrides the backoff (e.g. a server's ``Retry-After``);
        ``on_retry(attempt, exc, pause)`` observes each retry.
        """
        started_at = self.clock()
        attempt = 0
        while True:
            attempt += 1
            try:
                return fn()
            except Exception as exc:
                if not retryable(exc):
                    raise
                pause = (
                    self.backoff(attempt) if delay is None else delay(attempt, exc)
                )
                if self.give_up(started_at, attempt, pause):
                    raise
                if on_retry is not None:
                    on_retry(attempt, exc, pause)
                self.sleep(pause)


__all__ = ["RetryPolicy", "default_monotonic", "default_sleep"]
