"""Fault taxonomy and deterministic fault schedules.

A :class:`FaultPlan` is a seeded, picklable schedule of fault events: it
names *which* fault class fires *where* (an injection-site string such
as ``exec.worker.trial`` or ``store.execute``) and *when* (by occurrence
index at the site, by context match, or both).  Plans are pure data —
they cross the ``spawn`` boundary into executor workers unchanged — and
every bit of scheduling randomness comes from ``random.Random(seed)``,
so the same plan against the same campaign fires the same faults in the
same places, run after run.  That determinism is what makes chaos runs
*reproducible scenarios* rather than flaky stress tests.

Fault classes (see ``docs/robustness.md`` for the full taxonomy):

===================  ====================================================
``worker-crash``     the worker process hard-exits (``os._exit``)
``worker-hang``      the worker sleeps past the executor's timeout
``worker-slow``      the worker sleeps briefly (latency, not failure)
``store-locked``     ``sqlite3.OperationalError: database is locked``
``disk-full``        ``OSError(ENOSPC)`` from a write path
``fsync-fail``       ``OSError(EIO)`` from an fsync
``journal-truncate`` a journal line is torn mid-record
``journal-corrupt``  a journal line is replaced with garbage
``clock-skew``       a telemetry timestamp jumps by ``param`` seconds
``http-disconnect``  the HTTP client's connection resets mid-request
``lease-expiry``     a fabric worker's heartbeats stop reaching the
                     coordinator; its lease expires and the task re-runs
``worker-sigkill``   a fabric worker process is SIGKILLed mid-lease
===================  ====================================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

FAULT_WORKER_CRASH = "worker-crash"
FAULT_WORKER_HANG = "worker-hang"
FAULT_WORKER_SLOW = "worker-slow"
FAULT_STORE_LOCKED = "store-locked"
FAULT_DISK_FULL = "disk-full"
FAULT_FSYNC_FAIL = "fsync-fail"
FAULT_JOURNAL_TRUNCATE = "journal-truncate"
FAULT_JOURNAL_CORRUPT = "journal-corrupt"
FAULT_CLOCK_SKEW = "clock-skew"
FAULT_HTTP_DISCONNECT = "http-disconnect"
FAULT_LEASE_EXPIRY = "lease-expiry"
FAULT_WORKER_SIGKILL = "worker-sigkill"
FAULT_SHARD_LOSS = "shard-loss"
FAULT_SUPERVISOR_SIGKILL = "supervisor-sigkill"
FAULT_DRAIN_DURING_LEASE = "drain-during-lease"

#: Every fault class, in documentation order.  New classes append: the
#: per-class schedule mix uses positional indices, and appending keeps
#: every older class's seeded schedule byte-stable.
FAULT_CLASSES = (
    FAULT_WORKER_CRASH,
    FAULT_WORKER_HANG,
    FAULT_WORKER_SLOW,
    FAULT_STORE_LOCKED,
    FAULT_DISK_FULL,
    FAULT_FSYNC_FAIL,
    FAULT_JOURNAL_TRUNCATE,
    FAULT_JOURNAL_CORRUPT,
    FAULT_CLOCK_SKEW,
    FAULT_HTTP_DISCONNECT,
    FAULT_LEASE_EXPIRY,
    FAULT_WORKER_SIGKILL,
    FAULT_SHARD_LOSS,
    FAULT_SUPERVISOR_SIGKILL,
    FAULT_DRAIN_DURING_LEASE,
)


@dataclass(frozen=True)
class FaultRule:
    """One scheduled fault: fire ``fault`` at ``site`` when matched.

    ``site`` is an exact injection-site name, or a prefix ending in
    ``*`` (``store.*`` matches every store site).  ``hits`` restricts
    firing to the given 1-based occurrence indices of this rule at the
    site (``None`` = every occurrence); the occurrence counter only
    advances on context matches, so ``when={"attempt": 1}, hits=(2,)``
    means "the second first-attempt trial".  ``limit`` caps total fires.
    ``param`` parameterises the fault (sleep seconds for hang/slow,
    skew seconds for clock-skew).
    """

    fault: str
    site: str
    hits: Optional[Tuple[int, ...]] = None
    when: Tuple[Tuple[str, object], ...] = ()
    param: Optional[float] = None
    limit: Optional[int] = None

    def matches_site(self, site: str) -> bool:
        if self.site.endswith("*"):
            return site.startswith(self.site[:-1])
        return site == self.site

    def matches_ctx(self, ctx: Mapping) -> bool:
        for key, value in self.when:
            if ctx.get(key) != value:
                return False
        return True


def rule(
    fault: str,
    site: str,
    hits: Optional[Tuple[int, ...]] = None,
    when: Optional[Mapping] = None,
    param: Optional[float] = None,
    limit: Optional[int] = None,
) -> FaultRule:
    """Build a :class:`FaultRule`, normalising ``when`` to a sorted tuple."""
    if fault not in FAULT_CLASSES:
        raise ValueError(f"unknown fault class {fault!r}")
    return FaultRule(
        fault=fault,
        site=site,
        hits=tuple(hits) if hits is not None else None,
        when=tuple(sorted((when or {}).items())),
        param=param,
        limit=limit,
    )


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded bundle of fault rules.

    Immutable and picklable: the executor ships the plan to spawned
    workers, which activate it locally so worker-side seams fire with
    the same deterministic schedule as the parent's.
    """

    name: str
    rules: Tuple[FaultRule, ...]
    seed: int = 0

    def rules_for(self, site: str) -> Tuple[FaultRule, ...]:
        return tuple(r for r in self.rules if r.matches_site(site))

    def describe(self) -> str:
        parts = []
        for r in self.rules:
            spec = f"{r.fault}@{r.site}"
            if r.hits:
                spec += f"#{','.join(map(str, r.hits))}"
            if r.when:
                spec += "{" + ",".join(f"{k}={v}" for k, v in r.when) + "}"
            parts.append(spec)
        return f"{self.name}(seed={self.seed}): " + "; ".join(parts)


def seeded_hits(seed: int, count: int, lo: int = 1, hi: int = 10) -> Tuple[int, ...]:
    """``count`` distinct occurrence indices in [lo, hi], deterministic.

    The helper every named fault matrix uses to spread its fault events:
    same seed, same schedule, so a chaos failure reproduces exactly.
    """
    population = list(range(lo, max(lo, hi) + 1))
    count = min(count, len(population))
    return tuple(sorted(random.Random(seed).sample(population, count)))


@dataclass
class FaultMatrix:
    """An ordered set of named single-class plans for ``repro chaos``."""

    name: str
    plans: Dict[str, FaultPlan] = field(default_factory=dict)


def _single_class_plan(fault: str, seed: int) -> FaultPlan:
    """The canonical chaos scenario for one fault class."""
    mix = seed * 1000003 + FAULT_CLASSES.index(fault)
    if fault == FAULT_WORKER_CRASH:
        rules = (rule(fault, "exec.worker.trial", when={"attempt": 1}),)
    elif fault == FAULT_WORKER_HANG:
        rules = (
            rule(fault, "exec.worker.trial", when={"attempt": 1}, param=30.0),
        )
    elif fault == FAULT_WORKER_SLOW:
        rules = (rule(fault, "exec.worker.trial", param=0.05),)
    elif fault == FAULT_STORE_LOCKED:
        # A transient burst the warehouse retry discipline must absorb.
        rules = (
            rule(fault, "store.execute", hits=seeded_hits(mix, 3, 1, 8),
                 when={"sql": "insert"}),
        )
    elif fault == FAULT_DISK_FULL:
        # Persistent: every warehouse INSERT fails for the whole run, so
        # the store-sink breaker must trip and spill to the sideline.
        rules = (rule(fault, "store.execute", when={"sql": "insert"}),)
    elif fault == FAULT_FSYNC_FAIL:
        rules = (rule(fault, "exec.manifest.fsync"),)
    elif fault == FAULT_JOURNAL_TRUNCATE:
        rules = (
            rule(fault, "exec.manifest.line", hits=seeded_hits(mix, 2, 1, 6)),
        )
    elif fault == FAULT_JOURNAL_CORRUPT:
        rules = (
            rule(fault, "exec.manifest.line", hits=seeded_hits(mix, 2, 1, 6)),
        )
    elif fault == FAULT_CLOCK_SKEW:
        rules = (rule(fault, "exec.manifest.clock", param=7200.0),)
    elif fault == FAULT_HTTP_DISCONNECT:
        rules = (rule(fault, "client.request", hits=(1,)),)
    elif fault == FAULT_LEASE_EXPIRY:
        # Every heartbeat the first lease attempt sends is lost; the
        # lease expires under the worker and the task re-runs on
        # attempt 2, whose beats get through.
        rules = (rule(fault, "fabric.heartbeat", when={"attempt": 1}),)
    elif fault == FAULT_WORKER_SIGKILL:
        # Process-level: the chaos driver SIGKILLs a real worker
        # subprocess mid-lease; the rule documents the schedule (first
        # lease dies) rather than firing through the in-process seam.
        rules = (rule(fault, "fabric.worker.process", hits=(1,)),)
    elif fault == FAULT_SHARD_LOSS:
        # Filesystem-level: the chaos driver deletes one non-meta shard
        # of a sharded warehouse after the campaign lands; the rule
        # documents the schedule (first shard touched is lost).
        rules = (rule(fault, "store.shard.file", hits=(1,)),)
    elif fault == FAULT_SUPERVISOR_SIGKILL:
        # Process-level: the fleet supervisor dies mid-campaign; the
        # registry (not the corpse's memory) is the fleet's truth, so a
        # replacement adopts the same workers.
        rules = (rule(fault, "fabric.supervisor.process", hits=(1,)),)
    elif fault == FAULT_DRAIN_DURING_LEASE:
        # Registry-level: the leaseholder gets a durable drain directive
        # mid-lease; it must finish that lease (never hand it to a
        # second attempt) and then exit.
        rules = (rule(fault, "fabric.worker.drain", hits=(1,)),)
    else:  # pragma: no cover - FAULT_CLASSES is exhaustive
        raise ValueError(f"unknown fault class {fault!r}")
    return FaultPlan(name=fault, rules=rules, seed=seed)


#: Fault classes per named matrix.  ``smoke`` sticks to the fast,
#: service-free classes; ``default`` exercises every class in the
#: taxonomy, including the in-process campaign-service round trip.
MATRIX_CLASSES = {
    "smoke": (
        FAULT_WORKER_CRASH,
        FAULT_STORE_LOCKED,
        FAULT_DISK_FULL,
        FAULT_JOURNAL_CORRUPT,
        FAULT_LEASE_EXPIRY,
        FAULT_WORKER_SIGKILL,
    ),
    # The fleet recovery proofs: sharded-warehouse loss, supervisor
    # death, drain racing a live lease.  ``fleet-smoke`` is the CI cut
    # (no subprocess supervisor, so it stays fast).
    "fleet": (
        FAULT_SHARD_LOSS,
        FAULT_SUPERVISOR_SIGKILL,
        FAULT_DRAIN_DURING_LEASE,
    ),
    "fleet-smoke": (
        FAULT_SHARD_LOSS,
        FAULT_DRAIN_DURING_LEASE,
    ),
    "default": FAULT_CLASSES,
}


def fault_matrix(name: str, seed: int = 0) -> FaultMatrix:
    """Resolve a named matrix into per-fault-class plans."""
    try:
        classes = MATRIX_CLASSES[name]
    except KeyError:
        known = ", ".join(sorted(MATRIX_CLASSES))
        raise ValueError(f"unknown fault matrix {name!r} (known: {known})")
    return FaultMatrix(
        name=name,
        plans={fault: _single_class_plan(fault, seed) for fault in classes},
    )


__all__ = [
    "FAULT_CLASSES",
    "FAULT_WORKER_CRASH",
    "FAULT_WORKER_HANG",
    "FAULT_WORKER_SLOW",
    "FAULT_STORE_LOCKED",
    "FAULT_DISK_FULL",
    "FAULT_FSYNC_FAIL",
    "FAULT_JOURNAL_TRUNCATE",
    "FAULT_JOURNAL_CORRUPT",
    "FAULT_CLOCK_SKEW",
    "FAULT_HTTP_DISCONNECT",
    "FAULT_LEASE_EXPIRY",
    "FAULT_WORKER_SIGKILL",
    "FAULT_SHARD_LOSS",
    "FAULT_SUPERVISOR_SIGKILL",
    "FAULT_DRAIN_DURING_LEASE",
    "FaultRule",
    "FaultPlan",
    "FaultMatrix",
    "MATRIX_CLASSES",
    "fault_matrix",
    "rule",
    "seeded_hits",
]
