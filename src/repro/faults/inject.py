"""The fault-injection seam: ``fault_point`` / ``fault_value``.

Production code calls :func:`fault_point` (raise/act sites) and
:func:`fault_value` (transform sites: journal lines, clock reads) at the
places a deterministic fault may strike.  With no plan active — the
normal case — both are a single ``None`` check and return immediately;
the exec-parallel benchmark guard (`tests/test_faults_plan.py`) holds
the seam to that zero-cost contract.  Activating a :class:`FaultPlan`
(``activate`` / the ``active_plan`` context manager) installs a
:class:`FaultInjector` that counts rule occurrences and fires the
scheduled faults.

Injected failures are *real* exception types carrying an
:class:`InjectedFault` marker mixin: ``store-locked`` raises a genuine
``sqlite3.OperationalError``, ``disk-full`` a genuine ``OSError`` with
``ENOSPC`` — so the production retry/degradation paths under test are
exactly the ones real faults would take.

Executor workers run in spawned processes with their own module globals;
:class:`~repro.exec.Executor` ships the plan across the boundary and the
worker bootstrap activates it locally.
"""

from __future__ import annotations

import errno
import os
import sqlite3
import threading
import time
from contextlib import contextmanager
from typing import Dict, List, Mapping, Optional, Tuple

from repro.faults.plan import (
    FAULT_CLOCK_SKEW,
    FAULT_DISK_FULL,
    FAULT_FSYNC_FAIL,
    FAULT_HTTP_DISCONNECT,
    FAULT_JOURNAL_CORRUPT,
    FAULT_LEASE_EXPIRY,
    FAULT_JOURNAL_TRUNCATE,
    FAULT_STORE_LOCKED,
    FAULT_WORKER_CRASH,
    FAULT_WORKER_HANG,
    FAULT_WORKER_SLOW,
    FaultPlan,
    FaultRule,
)

#: Exit code of an injected worker crash (distinct from real crashes'
#: codes so telemetry and tests can attribute it).
CRASH_EXIT_CODE = 27


class InjectedFault(Exception):
    """Marker mixin: every injected failure is an instance of this."""

    def __init__(self, fault: str, site: str, message: Optional[str] = None):
        self.fault = fault
        self.site = site
        super().__init__(message or f"injected {fault} at {site}")


class InjectedLocked(sqlite3.OperationalError, InjectedFault):
    """Injected ``database is locked`` — real OperationalError type."""

    def __init__(self, fault: str, site: str):
        self.fault = fault
        self.site = site
        sqlite3.OperationalError.__init__(
            self, f"database is locked (injected {fault} at {site})"
        )


class InjectedDiskError(OSError, InjectedFault):
    """Injected ``OSError`` (ENOSPC for disk-full, EIO for fsync-fail)."""

    def __init__(self, fault: str, site: str, err: int):
        self.fault = fault
        self.site = site
        OSError.__init__(self, err, f"injected {fault} at {site}")


class InjectedDisconnect(ConnectionResetError, InjectedFault):
    """Injected connection reset — real ConnectionResetError type."""

    def __init__(self, fault: str, site: str):
        self.fault = fault
        self.site = site
        ConnectionResetError.__init__(
            self, f"connection reset (injected {fault} at {site})"
        )


class FaultInjector:
    """Runtime state of one active plan: occurrence counters + fire log."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._lock = threading.Lock()
        self._counts: Dict[int, int] = {}
        self._fired: Dict[int, int] = {}
        self._fires: List[Tuple[str, str]] = []

    # ------------------------------------------------------------- matching

    def _due_rules(self, site: str, ctx: Mapping) -> List[FaultRule]:
        """Count occurrences and collect the rules due to fire (locked)."""
        due: List[FaultRule] = []
        with self._lock:
            for index, r in enumerate(self.plan.rules):
                if not r.matches_site(site) or not r.matches_ctx(ctx):
                    continue
                count = self._counts.get(index, 0) + 1
                self._counts[index] = count
                if r.hits is not None and count not in r.hits:
                    continue
                if r.limit is not None and self._fired.get(index, 0) >= r.limit:
                    continue
                self._fired[index] = self._fired.get(index, 0) + 1
                self._fires.append((site, r.fault))
                due.append(r)
        return due

    def fires(self) -> List[Tuple[str, str]]:
        """Every (site, fault) that has fired, in order."""
        with self._lock:
            return list(self._fires)

    def fire_count(self, fault: Optional[str] = None) -> int:
        with self._lock:
            if fault is None:
                return len(self._fires)
            return sum(1 for _, f in self._fires if f == fault)

    # --------------------------------------------------------------- firing

    def fire(self, site: str, ctx: Mapping) -> None:
        # Act outside the lock: hangs must not serialise other threads'
        # seams, and raising with a lock held is asking for trouble.
        for r in self._due_rules(site, ctx):
            self._act(r, site)

    @staticmethod
    def _act(r: FaultRule, site: str) -> None:
        if r.fault == FAULT_WORKER_CRASH:
            # Hard exit, exactly like an OOM-kill or a segfaulting stack:
            # no exception handling, no atexit.  The short sleep first
            # lets the result queue's feeder thread flush the pending
            # "start" report, so the parent can *attribute* the death and
            # the retry/quarantine paths engage deterministically; the
            # unattributable-death case (report lost with the process) is
            # exercised separately via the ``exec.result`` drop seam.
            time.sleep(0.2)
            os._exit(CRASH_EXIT_CODE)
        if r.fault in (FAULT_WORKER_HANG, FAULT_WORKER_SLOW):
            time.sleep(r.param if r.param is not None else 30.0)
            return
        if r.fault == FAULT_STORE_LOCKED:
            raise InjectedLocked(r.fault, site)
        if r.fault == FAULT_DISK_FULL:
            raise InjectedDiskError(r.fault, site, errno.ENOSPC)
        if r.fault == FAULT_FSYNC_FAIL:
            raise InjectedDiskError(r.fault, site, errno.EIO)
        if r.fault in (FAULT_HTTP_DISCONNECT, FAULT_LEASE_EXPIRY):
            # lease-expiry is a lost heartbeat: same wire-level failure
            # as a disconnect, struck at the fabric.heartbeat seam.
            raise InjectedDisconnect(r.fault, site)
        # Transform-class faults scheduled at an act site degrade to a
        # generic typed failure rather than passing silently.
        raise InjectedFault(r.fault, site)

    # ----------------------------------------------------------- transforms

    def transform(self, site: str, value, ctx: Mapping):
        for r in self._due_rules(site, ctx):
            if r.fault == FAULT_CLOCK_SKEW and isinstance(value, (int, float)):
                value = value + (r.param if r.param is not None else 3600.0)
            elif r.fault == FAULT_JOURNAL_TRUNCATE and isinstance(value, str):
                value = value[: max(1, len(value) // 2)]
            elif r.fault == FAULT_JOURNAL_CORRUPT and isinstance(value, str):
                value = "\x00CORRUPT" + value[len(value) // 2:]
        return value


_ACTIVE: Optional[FaultInjector] = None


def fault_point(site: str, **ctx) -> None:
    """Injection seam for raise/act faults; no-op with no plan active."""
    if _ACTIVE is None:
        return
    _ACTIVE.fire(site, ctx)


def fault_value(site: str, value, **ctx):
    """Injection seam for transform faults; identity with no plan active."""
    if _ACTIVE is None:
        return value
    return _ACTIVE.transform(site, value, ctx)


def active() -> Optional[FaultInjector]:
    """The live injector, or None when no plan is active."""
    return _ACTIVE


def activate(plan: FaultPlan) -> FaultInjector:
    """Install ``plan`` process-wide; returns its injector."""
    global _ACTIVE
    _ACTIVE = FaultInjector(plan)
    return _ACTIVE


def deactivate() -> None:
    """Remove any active plan; seams return to zero-cost no-ops."""
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def active_plan(plan: FaultPlan):
    """``with active_plan(plan) as injector: ...`` — always deactivates."""
    injector = activate(plan)
    try:
        yield injector
    finally:
        deactivate()


__all__ = [
    "CRASH_EXIT_CODE",
    "FaultInjector",
    "InjectedDiskError",
    "InjectedDisconnect",
    "InjectedFault",
    "InjectedLocked",
    "activate",
    "active",
    "active_plan",
    "deactivate",
    "fault_point",
    "fault_value",
]
