"""The open congestion-control registry.

``register_congestion_control(name, factory, capabilities)`` is the
single seam through which every layer — stack profiles, the harness,
topology flows, campaign specs and the CLI — resolves a CCA name.  The
built-in algorithms (the paper's three kernel-referenced CCAs plus the
BBRv2/BBRv3 and GCC families) register themselves on import; third
party algorithms register from a user module loaded with
:func:`load_modules`, with zero edits to core packages.

Capabilities are declarative metadata, not behaviour:

* ``kernel_reference`` — the CCA has a Linux-kernel reference
  implementation; exactly these names form
  :data:`repro.stacks.registry.CCAS` (the paper's study set).
* ``host_stacks`` — which stack profiles may host the CCA through the
  registry fallback when their own ``ccas`` table lacks it: ``"*"``
  (any stack) or an explicit tuple of stack names.  The kernel trio
  uses ``()`` because every hosting decision for them is an explicit,
  per-stack deviation table (Table 1) that a blanket fallback would
  falsify.
* ``family`` / ``paced`` / ``delay_based`` — descriptive, surfaced by
  ``repro cca list|describe``.

Registration is idempotent only for an identical re-registration of a
builtin; replacing an existing name requires ``replace=True`` so a
typo cannot silently shadow a studied algorithm.
"""

from __future__ import annotations

import importlib
import importlib.util
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.cca.base import CongestionController

#: Factory signature: mss (bytes) -> a fresh controller instance.
CCAFactory = Callable[[int], CongestionController]


class UnknownCCA(KeyError):
    """Raised when a name is not in the registry."""


class RegistrationError(ValueError):
    """Raised for invalid or conflicting registrations."""


@dataclass(frozen=True)
class CCACapabilities:
    """Declarative metadata attached to a registered CCA."""

    #: Algorithm family ("loss-based", "model-based", "delay-based", ...).
    family: str = "unspecified"
    #: True when a Linux-kernel reference implementation exists (the
    #: paper's conformance anchor); drives ``stacks.registry.CCAS``.
    kernel_reference: bool = False
    #: Whether the algorithm paces (informational).
    paced: bool = False
    #: Whether the primary congestion signal is delay (informational).
    delay_based: bool = False
    #: ``"*"`` = any stack may host via the registry fallback; a tuple
    #: restricts the fallback to those stacks; ``()`` disables it.
    host_stacks: Union[str, Tuple[str, ...]] = "*"
    #: One-line description for ``repro cca list``.
    description: str = ""

    def hosts(self, stack: str) -> bool:
        """Whether ``stack`` may host this CCA via the registry fallback."""
        if self.host_stacks == "*":
            return True
        return stack in self.host_stacks

    def as_dict(self) -> dict:
        return {
            "family": self.family,
            "kernel_reference": self.kernel_reference,
            "paced": self.paced,
            "delay_based": self.delay_based,
            "host_stacks": (
                "*" if self.host_stacks == "*" else list(self.host_stacks)
            ),
            "description": self.description,
        }


@dataclass(frozen=True)
class CCAInfo:
    """One registry entry."""

    name: str
    factory: CCAFactory
    capabilities: CCACapabilities
    #: "builtin" or the module (path) that registered the CCA.
    origin: str = "builtin"

    def build(self, mss: int) -> CongestionController:
        controller = self.factory(mss)
        if not isinstance(controller, CongestionController):
            raise RegistrationError(
                f"factory for {self.name!r} returned "
                f"{type(controller).__name__}, not a CongestionController"
            )
        return controller

    def describe(self) -> dict:
        return {
            "name": self.name,
            "origin": self.origin,
            **self.capabilities.as_dict(),
        }


_LOCK = threading.Lock()
#: Insertion-ordered: builtins first (paper order), then externals.
_REGISTRY: Dict[str, CCAInfo] = {}
#: Resolved module paths already loaded via :func:`load_modules`.
_LOADED_MODULES: Dict[str, str] = {}


def _coerce_capabilities(
    capabilities: Union[CCACapabilities, Mapping, None],
) -> CCACapabilities:
    if capabilities is None:
        return CCACapabilities()
    if isinstance(capabilities, CCACapabilities):
        return capabilities
    if isinstance(capabilities, Mapping):
        allowed = set(CCACapabilities.__dataclass_fields__)
        unknown = set(capabilities) - allowed
        if unknown:
            raise RegistrationError(
                f"unknown capability field(s): {', '.join(sorted(unknown))} "
                f"(allowed: {', '.join(sorted(allowed))})"
            )
        doc = dict(capabilities)
        hosts = doc.get("host_stacks")
        if isinstance(hosts, list):
            doc["host_stacks"] = tuple(hosts)
        return CCACapabilities(**doc)
    raise RegistrationError(
        "capabilities must be a CCACapabilities or a mapping"
    )


def register_congestion_control(
    name: str,
    factory: CCAFactory,
    capabilities: Union[CCACapabilities, Mapping, None] = None,
    origin: str = "user",
    replace: bool = False,
) -> CCAInfo:
    """Register a congestion-control factory under ``name``.

    ``factory(mss)`` must return a fresh
    :class:`~repro.cca.base.CongestionController` per call.  Returns
    the :class:`CCAInfo` now in the registry.
    """
    if not name or not isinstance(name, str):
        raise RegistrationError("cca name must be a non-empty string")
    if not name.replace("-", "").replace("_", "").isalnum():
        raise RegistrationError(
            f"cca name {name!r} must be alphanumeric (plus - or _)"
        )
    if not callable(factory):
        raise RegistrationError(f"factory for {name!r} is not callable")
    info = CCAInfo(
        name=name,
        factory=factory,
        capabilities=_coerce_capabilities(capabilities),
        origin=origin,
    )
    with _LOCK:
        existing = _REGISTRY.get(name)
        if existing is not None and not replace:
            raise RegistrationError(
                f"cca {name!r} is already registered (origin: "
                f"{existing.origin}); pass replace=True to override"
            )
        _REGISTRY[name] = info
    return info


def unregister(name: str) -> None:
    """Remove an entry (primarily for tests of the registration seam)."""
    with _LOCK:
        _REGISTRY.pop(name, None)


def get(name: str) -> CCAInfo:
    """Look up a registered CCA; raises :class:`UnknownCCA` with hints."""
    with _LOCK:
        info = _REGISTRY.get(name)
    if info is None:
        raise UnknownCCA(
            f"unknown cca {name!r}; registered: {', '.join(names())}"
        )
    return info


def is_registered(name: str) -> bool:
    with _LOCK:
        return name in _REGISTRY


def names() -> Tuple[str, ...]:
    """All registered names, in registration order."""
    with _LOCK:
        return tuple(_REGISTRY)


def entries() -> List[CCAInfo]:
    """All registry entries, in registration order."""
    with _LOCK:
        return list(_REGISTRY.values())


def kernel_reference_ccas() -> Tuple[str, ...]:
    """Names with a kernel reference — the paper's study set, in order."""
    with _LOCK:
        return tuple(
            name
            for name, info in _REGISTRY.items()
            if info.capabilities.kernel_reference
        )


def hosted_by(stack: str, cca: str) -> bool:
    """Whether ``stack`` may host ``cca`` through the registry fallback."""
    with _LOCK:
        info = _REGISTRY.get(cca)
    return info is not None and info.capabilities.hosts(stack)


def build(name: str, mss: int) -> CongestionController:
    """Instantiate a registered CCA for the given MSS."""
    return get(name).build(mss)


def load_modules(paths: Iterable[str]) -> List[str]:
    """Import user CCA modules so their registrations take effect.

    Each entry is a filesystem path to a ``.py`` file or an importable
    module name.  Loading is idempotent per resolved path — the
    executor's worker processes call this before building flows, so an
    external CCA participates in parallel campaigns without the module
    being imported at interpreter start.  Returns the module names that
    were (already or newly) loaded.
    """
    loaded: List[str] = []
    for raw in paths:
        path = str(raw)
        resolved = path
        candidate = Path(path)
        if candidate.suffix == ".py" or candidate.exists():
            resolved = str(candidate.resolve())
        with _LOCK:
            already = _LOADED_MODULES.get(resolved)
        if already is not None:
            loaded.append(already)
            continue
        if candidate.suffix == ".py" or candidate.exists():
            if not candidate.exists():
                raise RegistrationError(f"cca module not found: {path}")
            module_name = f"repro_ccax_ext_{candidate.stem}"
            spec = importlib.util.spec_from_file_location(
                module_name, str(candidate)
            )
            if spec is None or spec.loader is None:
                raise RegistrationError(f"cannot load cca module: {path}")
            module = importlib.util.module_from_spec(spec)
            spec.loader.exec_module(module)
        else:
            module_name = path
            importlib.import_module(module_name)
        with _LOCK:
            _LOADED_MODULES[resolved] = module_name
        loaded.append(module_name)
    return loaded


def external_entries() -> List[CCAInfo]:
    """Entries registered by non-builtin origins."""
    return [info for info in entries() if info.origin != "builtin"]


__all__ = [
    "CCACapabilities",
    "CCAFactory",
    "CCAInfo",
    "RegistrationError",
    "UnknownCCA",
    "build",
    "entries",
    "external_entries",
    "get",
    "hosted_by",
    "is_registered",
    "kernel_reference_ccas",
    "load_modules",
    "names",
    "register_congestion_control",
    "unregister",
]
