"""Peer-conformance campaigns: trial jobs, identity, and recording.

A peer-conformance campaign measures a *peer group* of CCAs without a
kernel reference: every peer runs self-competition trials (X vs X, the
same construction the kernel anchor uses for itself) on a neutral host
stack, per-peer Performance Envelopes are built, and the group is
clustered against itself (:mod:`repro.core.peer`).

Trial identity follows the harness discipline exactly — a peer trial
*is* a pair trial of ``Impl(host, peer)`` against itself, so the seed
and cache key come from :func:`repro.harness.runner.trial_identity`
unchanged.  Serial runs, ``repro.exec`` pools and the campaign service
therefore dedupe against the same content-addressed keys, an identical
resubmission is served entirely from cache, and peer trials even dedupe
against ordinary harness trials of the same pair.

External CCAs participate with zero core edits: the spec carries
``cca_modules`` (user module paths), and :func:`compute_peer_trial`
loads them through :func:`repro.ccax.registry.load_modules` before
resolving the flow — in the scheduler's process *and* in every spawned
worker, which imports this module fresh.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.peer import PeerConformanceResult, evaluate_peer_conformance
from repro.harness.cache import DEFAULT_CACHE, ResultCache
from repro.harness.config import ExperimentConfig, NetworkCondition
from repro.harness.runner import Impl, sampled_points, trial_identity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec import Executor
    from repro.exec.jobs import Job
    from repro.service.specs import CampaignSpec
    from repro.store.warehouse import ResultStore

#: Default neutral host for peers: the reference stack's transport
#: config, chosen for its deviation-free sender path — the *stack* is
#: not what a peer campaign measures.
DEFAULT_HOST_STACK = "linux"

#: Maximum candidate cluster count for the peer k-selection.
PEER_K_MAX = 4


def peer_trial_identity(
    host_stack: str,
    peer: str,
    condition: NetworkCondition,
    config: ExperimentConfig,
    trial: int,
) -> Tuple[int, str]:
    """The (seed, cache key) pair identifying one peer trial.

    Delegates to :func:`repro.harness.runner.trial_identity` for the
    self-competition pair, so peer campaigns share trial identity (and
    cache entries) with every other campaign kind.
    """
    impl = Impl(host_stack, peer)
    return trial_identity(impl, impl, condition, config, trial)


def compute_peer_trial(
    host_stack: str,
    peer: str,
    condition: NetworkCondition,
    config: ExperimentConfig,
    trial: int,
    cca_modules: Tuple[str, ...] = (),
    cache: Optional[ResultCache] = None,
) -> np.ndarray:
    """One self-competition trial's sampled point cloud, cached.

    Module-level and argument-picklable so one trial is one
    ``repro.exec`` job; loads any user CCA modules first so externally
    registered peers resolve inside spawned workers.
    """
    if cca_modules:
        from repro.ccax import registry

        registry.load_modules(cca_modules)
    impl = Impl(host_stack, peer)
    return sampled_points(impl, impl, condition, config, trial, cache=cache)


def peer_trial_jobs(
    peers: Sequence[str],
    condition: NetworkCondition,
    config: ExperimentConfig,
    host_stack: str = DEFAULT_HOST_STACK,
    cca_modules: Tuple[str, ...] = (),
) -> List["Job"]:
    """One executor job per (peer, trial) of one condition."""
    from repro.exec.jobs import Job

    jobs: List[Job] = []
    for peer in peers:
        for trial in range(config.trials):
            _seed, key = peer_trial_identity(
                host_stack, peer, condition, config, trial
            )
            jobs.append(
                Job(
                    fn=compute_peer_trial,
                    args=(host_stack, peer, condition, config, trial),
                    kwargs={"cca_modules": tuple(cca_modules)},
                    key=key,
                    label=(
                        f"peer {host_stack}/{peer} trial {trial} @ "
                        f"{condition.describe()}"
                    ),
                )
            )
    return jobs


def evaluate_peer_group(
    peers: Sequence[str],
    condition: NetworkCondition,
    config: ExperimentConfig,
    host_stack: str = DEFAULT_HOST_STACK,
    cca_modules: Tuple[str, ...] = (),
    cache: Optional[ResultCache] = None,
    executor: Optional["Executor"] = None,
) -> PeerConformanceResult:
    """Gather every peer's trials and run the peer-conformance engine."""
    trials_by_peer: Dict[str, List[np.ndarray]] = {}
    if executor is not None:
        jobs = peer_trial_jobs(
            peers, condition, config, host_stack, tuple(cca_modules)
        )
        values = executor.run(
            jobs, campaign=f"peers@{condition.describe()}"
        )
        per_peer = config.trials
        for i, peer in enumerate(peers):
            chunk = values[i * per_peer:(i + 1) * per_peer]
            trials_by_peer[peer] = [
                np.asarray(v) for v in chunk if v is not None
            ]
    else:
        for peer in peers:
            trials_by_peer[peer] = [
                compute_peer_trial(
                    host_stack,
                    peer,
                    condition,
                    config,
                    trial,
                    cca_modules=tuple(cca_modules),
                    cache=cache,
                )
                for trial in range(config.trials)
            ]
    return evaluate_peer_conformance(
        trials_by_peer,
        config.envelope,
        seed=config.seed,
        k_max=PEER_K_MAX,
    )


def record_peer_result(
    store: "ResultStore",
    run,
    result: PeerConformanceResult,
    condition: NetworkCondition,
) -> int:
    """Warehouse rows for one evaluated peer group at one condition.

    Per-pair rows follow the share-matrix convention — ``stack`` is the
    row peer, ``cca`` the column peer — under ``variant="peer"``; one
    aggregate row per peer (``cca="aggregate"``) carries the
    peer-conformance score, its cluster and the selected k.
    """
    cells = 0
    clusters = result.clusters()
    for i, row_peer in enumerate(result.peers):
        for j, col_peer in enumerate(result.peers):
            if i == j:
                continue
            store.record_metrics(
                run,
                stack=row_peer,
                cca=col_peer,
                variant="peer",
                condition=condition,
                metrics={
                    "peer_conf": float(result.matrix[i, j]),
                    "peer_distance": float(1.0 - result.matrix[i, j]),
                },
            )
            cells += 1
        store.record_metrics(
            run,
            stack=row_peer,
            cca="aggregate",
            variant="default",
            condition=condition,
            metrics={
                "peer_score": float(result.scores[i]),
                "cluster": float(clusters[row_peer]),
                "k": float(result.k),
            },
        )
        cells += 1
    return cells


def run_peer_conformance_campaign(
    spec: "CampaignSpec",
    store: Optional["ResultStore"],
    executor: Optional["Executor"],
) -> dict:
    """Run a ``"peer_conformance"`` campaign and record it.

    Trials run through ``executor`` when given (the scheduler's path —
    parallel, deduped, store-written-through) and serially through the
    default cache otherwise; both paths call
    :func:`compute_peer_trial`, so results are bit-identical at any job
    count.
    """
    from repro.faults import inject

    config = spec.experiment_config()
    peers = list(spec.peers)
    host_stack = spec.host_stack or DEFAULT_HOST_STACK
    cca_modules = tuple(spec.cca_modules)
    if cca_modules:
        from repro.ccax import registry

        registry.load_modules(cca_modules)

    run = None
    if store is not None:
        run = store.ensure_run(
            spec.run_name(),
            note=spec.note or "reference-free peer-conformance campaign",
            config=spec.canonical(),
        )

    cells = 0
    groups: List[dict] = []
    for condition in spec.resolved_conditions():
        result = evaluate_peer_group(
            peers,
            condition,
            config,
            host_stack=host_stack,
            cca_modules=cca_modules,
            cache=None if executor is None else executor.cache,
            executor=executor,
        )
        inject.fault_point(
            "peer_conformance.evaluate", condition=condition.describe()
        )
        if store is not None:
            cells += record_peer_result(store, run, result, condition)
        groups.append(
            {"condition": condition.describe(), **result.summary()}
        )
    return {
        "runs": spec.run_names(),
        "cells": cells,
        "peer_conformance": groups,
    }


__all__ = [
    "DEFAULT_HOST_STACK",
    "PEER_K_MAX",
    "compute_peer_trial",
    "evaluate_peer_group",
    "peer_trial_identity",
    "peer_trial_jobs",
    "record_peer_result",
    "run_peer_conformance_campaign",
]
