"""Built-in registry entries: the paper's trio plus the new families.

Imported for its side effects by :mod:`repro.ccax`; every factory is a
module-level function so registry-driven flows stay picklable for the
``repro.exec`` worker pool.
"""

from __future__ import annotations

from repro.cca.base import CongestionController
from repro.cca.bbr import BBR
from repro.cca.bbr2 import BBR2, BBR3
from repro.cca.cubic import Cubic
from repro.cca.gcc import GccController
from repro.cca.reno import NewReno
from repro.ccax import registry


def make_cubic(mss: int) -> CongestionController:
    return Cubic(mss)


def make_bbr(mss: int) -> CongestionController:
    return BBR(mss)


def make_reno(mss: int) -> CongestionController:
    return NewReno(mss)


def make_bbr2(mss: int) -> CongestionController:
    return BBR2(mss)


def make_bbr3(mss: int) -> CongestionController:
    return BBR3(mss)


def make_gcc(mss: int) -> CongestionController:
    return GccController(mss)


def register_builtins() -> None:
    """Idempotently (re-)register the shipped algorithms."""
    shipped = [
        (
            "cubic",
            make_cubic,
            registry.CCACapabilities(
                family="loss-based",
                kernel_reference=True,
                # The kernel trio is hosted only through each stack's
                # explicit deviation table (Table 1), never the fallback.
                host_stacks=(),
                description="CUBIC (RFC 8312) with HyStart, kernel reference",
            ),
        ),
        (
            "bbr",
            make_bbr,
            registry.CCACapabilities(
                family="model-based",
                kernel_reference=True,
                paced=True,
                host_stacks=(),
                description="BBR v1 (btl_bw/min_rtt model), kernel reference",
            ),
        ),
        (
            "reno",
            make_reno,
            registry.CCACapabilities(
                family="loss-based",
                kernel_reference=True,
                host_stacks=(),
                description="NewReno (RFC 6582), kernel reference",
            ),
        ),
        (
            "bbr2",
            make_bbr2,
            registry.CCACapabilities(
                family="model-based",
                paced=True,
                description=(
                    "BBRv2: loss-aware inflight_hi/inflight_lo bounds, "
                    "ProbeBW UP/DOWN/CRUISE/REFILL (no kernel reference)"
                ),
            ),
        ),
        (
            "bbr3",
            make_bbr3,
            registry.CCACapabilities(
                family="model-based",
                paced=True,
                description=(
                    "BBRv3: the v2 machine with gentler DOWN gain and "
                    "lower startup cwnd gain (no kernel reference)"
                ),
            ),
        ),
        (
            "gcc",
            make_gcc,
            registry.CCACapabilities(
                family="real-time",
                paced=True,
                delay_based=True,
                description=(
                    "GCC/REMB-style delay-gradient AIMD rate controller "
                    "(no kernel reference)"
                ),
            ),
        ),
    ]
    for name, factory, capabilities in shipped:
        if registry.is_registered(name):
            continue
        registry.register_congestion_control(
            name, factory, capabilities, origin="builtin"
        )


register_builtins()
