"""repro.ccax: the open congestion-control subsystem.

Layered on :mod:`repro.cca`, this package provides

* the :func:`register_congestion_control` registry every layer resolves
  CCA names through (:mod:`repro.ccax.registry`),
* built-in registrations for the paper's kernel-referenced trio plus
  the BBRv2/BBRv3 and GCC families (:mod:`repro.ccax.builtins`), and
* reference-free *peer-conformance* campaigns, which cluster a peer
  group of CCAs against each other instead of against the kernel
  anchor (:mod:`repro.ccax.campaign`, engine in :mod:`repro.core.peer`).
"""

from repro.ccax.registry import (
    CCACapabilities,
    CCAInfo,
    RegistrationError,
    UnknownCCA,
    load_modules,
    register_congestion_control,
)
from repro.ccax import builtins as _builtins  # noqa: F401 - registrations

__all__ = [
    "CCACapabilities",
    "CCAInfo",
    "RegistrationError",
    "UnknownCCA",
    "load_modules",
    "register_congestion_control",
]
