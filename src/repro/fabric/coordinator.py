"""The fabric coordinator: scheduler dispatching into the durable queue.

:class:`Coordinator` is the service scheduler with its dispatch seam
rerouted — instead of handing jobs to in-process worker threads, it
enqueues them into the :class:`~repro.fabric.queue.WorkQueue` living in
the same warehouse file, and a fleet of :mod:`repro.fabric.worker`
processes (local or remote) leases them out over HTTP.

Everything the single-process scheduler guarantees carries over:

* the events journal is still written *before* state changes, so
  :meth:`resume_pending` replays across coordinator restarts — and the
  queue's ``INSERT OR IGNORE`` by campaign id makes the replay meet the
  durable task rows halfway (a task that finished while the coordinator
  was down completes its job immediately on re-submit);
* trial results are content-addressed, so a campaign that runs twice
  (lease expiry, crashed worker, stale completion) lands bit-identical
  rows, never duplicates;
* long-poll/SSE watchers see the same event stream — workers ship
  progress batches on their heartbeats and the coordinator re-emits
  them into the job.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.exec.telemetry import default_clock
from repro.fabric import queue as fq
from repro.fabric.queue import Lease, QuotaExceeded, WorkQueue
from repro.fabric.wire import ingest_bundle
from repro.faults.retry import default_sleep
from repro.service.scheduler import (
    CANCELLED,
    DONE,
    EVENT_CANCELLED,
    EVENT_DONE,
    EVENT_FAILED,
    EVENT_STARTED,
    FAILED,
    PENDING,
    RUNNING,
    CampaignJob,
    Scheduler,
)

#: Default lease time-to-live handed to workers; three missed heartbeats.
DEFAULT_LEASE_TTL_S = 30.0


class Coordinator(Scheduler):
    """A :class:`Scheduler` whose work runs on leased fabric workers.

    ``workers=0`` always: the coordinator never executes campaigns
    itself.  Worker processes drive the protocol methods
    (:meth:`lease_task`, :meth:`heartbeat_task`, :meth:`complete_task`,
    :meth:`fail_task`) through the HTTP layer.
    """

    def __init__(
        self,
        store_path: str,
        exec_jobs: int = 1,
        max_pending: int = 64,
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
        max_attempts: int = fq.DEFAULT_MAX_ATTEMPTS,
        clock: Callable[[], float] = default_clock,
        sleep: Callable[[float], None] = default_sleep,
    ):
        self.lease_ttl_s = float(lease_ttl_s)
        self.max_attempts = int(max_attempts)
        self._sleep = sleep
        super().__init__(
            store_path,
            workers=0,
            exec_jobs=exec_jobs,
            max_pending=max_pending,
            clock=clock,
        )

    # ------------------------------------------------------------ plumbing

    def _work_queue(self) -> WorkQueue:
        """A short-lived queue handle; SQLite connections are thread-bound
        and protocol calls arrive on arbitrary HTTP threads."""
        return WorkQueue(
            self.store_path, max_attempts=self.max_attempts, clock=self._clock
        )

    def ensure_tenant(
        self,
        name: str,
        weight: int = 1,
        max_pending: Optional[int] = None,
        max_active: Optional[int] = None,
    ) -> None:
        with self._work_queue() as q:
            q.ensure_tenant(
                name,
                weight=weight,
                max_pending=max_pending,
                max_active=max_active,
            )

    # ------------------------------------------------------------ dispatch

    def _dispatch(self, job: CampaignJob) -> None:
        # Called from submit() with the scheduler lock held.
        with self._work_queue() as q:
            try:
                task = q.enqueue(
                    job.id,
                    {"spec": job.spec.canonical(), "priority": job.priority},
                    tenant=job.tenant,
                    priority=job.priority,
                )
            except QuotaExceeded:
                # Unwind the journaled submit so the rejection is durable
                # and the job is not exposed as pending.
                self._journal(EVENT_CANCELLED, job, error="tenant quota")
                self._jobs.pop(job.id, None)
                raise
        # resume_pending() meeting a task that finished while the
        # coordinator was down: settle the job from the durable row.
        if task.state == fq.DONE:
            self._journal(EVENT_DONE, job, **task.result)
            with self._lock:
                job.cells = int(task.result.get("cells", 0) or 0)
            self._finish(job, DONE, None)
        elif task.state == fq.FAILED:
            self._journal(EVENT_FAILED, job, error=task.error or "failed")
            self._finish(job, FAILED, task.error)
        elif task.state == fq.CANCELLED:
            self._journal(EVENT_CANCELLED, job)
            self._finish(job, CANCELLED, None)

    def cancel(self, campaign_id: str) -> bool:
        ok = super().cancel(campaign_id)
        if ok:
            with self._work_queue() as q:
                try:
                    q.cancel(campaign_id)
                except fq.QueueError:
                    pass  # never dispatched (quota unwind raced)
        return ok

    # ------------------------------------------------- worker protocol

    def _reconcile_expired(self, campaigns: List[str]) -> None:
        """Reflect queue-side lease expiry into job state and journal."""
        for campaign in campaigns:
            job = self.job(campaign)
            if job is None:
                continue
            with self._work_queue() as q:
                task = q.task(campaign)
            if task is None:
                continue
            if task.state == fq.FAILED:
                if job.state not in (DONE, FAILED, CANCELLED):
                    self._journal(EVENT_FAILED, job, error=task.error or "")
                    self._finish(job, FAILED, task.error)
            elif task.state == fq.PENDING and job.state == RUNNING:
                with self._lock:
                    job.state = PENDING
                self._emit(
                    job,
                    {"event": "lease-expired", "attempt": task.attempts},
                )
                self._emit(job, {"event": "state", "state": PENDING})

    def lease_task(
        self, owner: str, ttl_s: Optional[float] = None, version: str = ""
    ) -> Optional[Lease]:
        """Claim the next task for a worker.

        Returns None when the queue is idle, or ``{"drain": True}``
        when the worker carries a durable drain directive — it gets the
        exit order instead of work.
        """
        ttl = float(ttl_s or self.lease_ttl_s)
        with self._work_queue() as q:
            expired = q.sweep()
            lease = q.lease(owner, ttl_s=ttl, version=version)
        if expired:
            self._reconcile_expired(expired)
        if lease is None or isinstance(lease, dict):
            return lease
        job = self.job(lease.campaign)
        if job is not None:
            with self._lock:
                job.state = RUNNING
                job.started_at = self._clock()
            self._journal(
                EVENT_STARTED, job, worker=owner, attempt=lease.attempt
            )
            self._emit(
                job,
                {
                    "event": "state",
                    "state": RUNNING,
                    "worker": owner,
                    "attempt": lease.attempt,
                },
            )
        return lease

    def heartbeat_task(
        self,
        campaign: str,
        lease_id: str,
        ttl_s: Optional[float] = None,
        progress: Optional[List[dict]] = None,
    ) -> dict:
        """Extend a lease and fold the worker's progress batch into the
        job's event stream (long-poll/SSE watchers see it live)."""
        ttl = float(ttl_s or self.lease_ttl_s)
        with self._work_queue() as q:
            beat = q.heartbeat(campaign, lease_id, ttl_s=ttl)
        job = self.job(campaign)
        if job is not None and beat.get("ok"):
            if job.state == PENDING:
                with self._lock:
                    job.state = RUNNING
            for event in progress or []:
                if event.get("event") == "trial":
                    with self._lock:
                        job.done = int(event.get("done", job.done) or 0)
                        job.total = int(event.get("total", job.total) or 0)
                        status = str(event.get("status", ""))
                        if status:
                            job.statuses[status] = (
                                job.statuses.get(status, 0) + 1
                            )
                self._emit(
                    job,
                    {
                        k: v
                        for k, v in event.items()
                        if k not in ("seq", "time")
                    },
                )
            if job.cancel_event.is_set():
                beat = dict(beat, cancel=True)
        return beat

    def complete_task(
        self,
        campaign: str,
        lease_id: str,
        summary: Optional[dict] = None,
        bundle: Optional[dict] = None,
    ) -> str:
        """Finish a task.  Remote workers attach a result bundle, which
        is ingested *before* the queue flips to done — a crash in between
        re-runs the task and the content-addressed rows dedupe."""
        summary = dict(summary or {})
        if bundle is not None:
            from repro.store.sharded import open_store

            with open_store(self.store_path) as store:
                summary["ingest"] = ingest_bundle(store, bundle)
        with self._work_queue() as q:
            outcome = q.complete(campaign, lease_id, summary)
        if outcome == "done":
            job = self.job(campaign)
            if job is not None:
                self._journal(EVENT_DONE, job, **summary)
                with self._lock:
                    job.cells = int(summary.get("cells", 0) or 0)
                self._finish(job, DONE, None)
        return outcome

    def fail_task(
        self,
        campaign: str,
        lease_id: str,
        error: str,
        retryable: bool = True,
    ) -> str:
        with self._work_queue() as q:
            task = q.task(campaign)
            cancelling = task is not None and task.cancel_requested
            outcome = q.fail(campaign, lease_id, error, retryable=retryable)
        job = self.job(campaign)
        if job is None or outcome == "duplicate":
            return outcome
        if cancelling or job.cancel_event.is_set():
            self._journal(EVENT_CANCELLED, job)
            self._finish(job, CANCELLED, None)
        elif outcome == "retried":
            with self._lock:
                job.state = PENDING
            self._emit(job, {"event": "retry", "error": error})
            self._emit(job, {"event": "state", "state": PENDING})
        elif outcome == "failed":
            self._journal(EVENT_FAILED, job, error=error)
            self._finish(job, FAILED, error)
        return outcome

    # ------------------------------------------------------ fleet registry

    def drain_worker(self, name: str) -> dict:
        """Set the durable drain directive for one worker; it observes
        it on its next heartbeat or lease request."""
        with self._work_queue() as q:
            return q.drain_worker(name)

    def deregister_worker(self, name: str) -> None:
        """A worker's clean exit (or the supervisor reaping a dead one)."""
        with self._work_queue() as q:
            q.deregister_worker(name)

    def workers(self, include_exited: bool = False) -> List[dict]:
        with self._work_queue() as q:
            return q.workers(include_exited=include_exited)

    # -------------------------------------------------------------- status

    def fabric_status(self) -> dict:
        """Queue + tenant snapshot feeding ``GET /fabric/status`` and the
        per-tenant Prometheus series."""
        with self._work_queue() as q:
            expired_check = q.status()
        return expired_check

    def metrics(self) -> dict:
        data = super().metrics()
        status = self.fabric_status()
        data["fabric"] = status
        registered = {w["name"] for w in status.get("workers", [])}
        leased = {
            lease["owner"] for lease in status["leases"] if lease["owner"]
        }
        data["workers"] = len(registered | leased)
        return data

    # ------------------------------------------------------------ shutdown

    def shutdown(
        self, drain: bool = True, timeout: Optional[float] = None
    ) -> None:
        """Stop accepting submits; ``drain=True`` waits for the queue to
        run dry (workers keep leasing and completing while we wait)."""
        with self._lock:
            already = self._stopping
        if drain and not already:
            deadline = (
                None if timeout is None else self._clock() + float(timeout)
            )
            while True:
                with self._work_queue() as q:
                    expired = q.sweep()
                    depth = q.depth()
                if expired:
                    self._reconcile_expired(expired)
                if depth == 0:
                    break
                if deadline is not None and self._clock() >= deadline:
                    break
                self._sleep(0.05)
        super().shutdown(drain=drain, timeout=timeout)


__all__ = ["Coordinator", "DEFAULT_LEASE_TTL_S"]
