"""The fabric's asyncio front door: one event loop, thousands of watchers.

The threaded server in :mod:`repro.service.server` spends a thread per
connection — fine for a laptop service, but a coordinator fronting a
worker fleet holds many long-lived connections open at once (every
worker long-polls for leases, every dashboard long-polls or streams
events).  :class:`FabricFrontDoor` serves the *same* REST surface —
routes come from the shared :class:`~repro.service.router.ServiceRouter`
— on a single asyncio event loop:

* **long-poll** and **SSE** wait on the loop, not on a thread.  The
  scheduler's event listener seam
  (:meth:`~repro.service.scheduler.Scheduler.add_event_listener`) is
  bridged into the loop with ``call_soon_threadsafe``, so a trial
  finishing on a worker heartbeat wakes exactly the coroutines watching
  that campaign;
* **blocking routes** (SQLite reads, scheduler mutations) run in the
  default executor so the loop never stalls;
* the HTTP/1.1 parsing is a deliberately small stdlib-only reader —
  request line, headers, ``Content-Length`` body, keep-alive.

The front door owns its scheduler the way :class:`ServiceApp` does;
pass a :class:`~repro.fabric.coordinator.Coordinator` to serve the
fabric worker protocol (``repro fabric serve`` does).
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Dict, Optional, Tuple

from repro.service.router import (
    MAX_BODY_BYTES,
    EventStream,
    LongPoll,
    Response,
    ServiceRouter,
    error_response,
    sse_chunk,
    sse_final,
)
from repro.service.scheduler import Scheduler, TERMINAL_STATES

_REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class _Notifier:
    """Bridge scheduler events (emitted on arbitrary threads) into the
    event loop: one waiter set per campaign, woken via
    ``call_soon_threadsafe``."""

    def __init__(self, loop: asyncio.AbstractEventLoop):
        self._loop = loop
        self._waiters: Dict[str, asyncio.Event] = {}

    def listener(self, campaign_id: str) -> None:
        """Scheduler-side callback; safe from any thread."""
        self._loop.call_soon_threadsafe(self._wake, campaign_id)

    def _wake(self, campaign_id: str) -> None:
        event = self._waiters.get(campaign_id)
        if event is not None:
            event.set()

    async def wait(self, campaign_id: str, timeout: float) -> None:
        """Park until the campaign emits an event or the timeout lapses."""
        event = self._waiters.get(campaign_id)
        if event is None or event.is_set():
            event = asyncio.Event()
            self._waiters[campaign_id] = event
        try:
            await asyncio.wait_for(event.wait(), timeout)
        except asyncio.TimeoutError:
            pass
        finally:
            if self._waiters.get(campaign_id) is event and event.is_set():
                del self._waiters[campaign_id]


class FabricFrontDoor:
    """Asyncio HTTP server over the shared service router."""

    def __init__(
        self,
        store_path: str,
        host: str = "127.0.0.1",
        port: int = 0,
        scheduler: Optional[Scheduler] = None,
        resume: bool = True,
    ):
        self.store_path = str(store_path)
        self.scheduler = scheduler or Scheduler(
            store_path=store_path, workers=1
        )
        self.resumed = self.scheduler.resume_pending() if resume else []
        self.router = ServiceRouter(self.store_path, self.scheduler)
        self._host = host
        self._port = port
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._notifier: Optional[_Notifier] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._stopping: Optional[asyncio.Event] = None
        self._stopped = threading.Event()
        self._bound: Tuple[str, int] = (host, port)

    # ----------------------------------------------------------- lifecycle

    @property
    def address(self) -> Tuple[str, int]:
        return self._bound

    @property
    def url(self) -> str:
        host, port = self._bound
        return f"http://{host}:{port}"

    def start(self) -> None:
        """Run the event loop on a background thread until :meth:`stop`."""
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-fabric-frontdoor", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=10.0)

    def _run_loop(self) -> None:
        asyncio.run(self._serve())

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._notifier = _Notifier(self._loop)
        self.scheduler.add_event_listener(self._notifier.listener)
        self._stopping = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle, self._host, self._port
        )
        sock = self._server.sockets[0].getsockname()
        self._bound = (sock[0], sock[1])
        self._ready.set()
        async with self._server:
            await self._stopping.wait()

    def stop(self, drain: bool = False) -> None:
        """Close the listener, stop the loop, then stop the scheduler."""
        if self._loop is not None and self._stopping is not None:
            self._loop.call_soon_threadsafe(self._stopping.set)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self.scheduler.shutdown(drain=drain)
        self._stopped.set()

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT => graceful stop (journal keeps queued work)."""
        import signal

        def _terminate(signum, frame):
            threading.Thread(
                target=self.stop, kwargs={"drain": False}, daemon=True
            ).start()

        signal.signal(signal.SIGTERM, _terminate)
        signal.signal(signal.SIGINT, _terminate)

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._stopped.wait(timeout)

    # ---------------------------------------------------------- connection

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, parts, query, accept, payload = request
                keep_alive = await self._dispatch(
                    writer, method, parts, query, accept, payload
                )
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        from urllib.parse import parse_qs, unquote, urlparse

        request_line = await reader.readline()
        if not request_line or not request_line.strip():
            return None
        try:
            method, target, _version = request_line.decode().split(None, 2)
        except ValueError:
            return None
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode().partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length") or 0)
        if length > MAX_BODY_BYTES:
            return method, ["__too_large__"], {}, "", None
        body = await reader.readexactly(length) if length else b""
        parsed = urlparse(target)
        query = {
            key: values[-1]
            for key, values in parse_qs(parsed.query).items()
        }
        parts = [unquote(p) for p in parsed.path.split("/") if p]
        payload = None
        if method == "POST":
            try:
                payload = json.loads(body.decode() or "{}")
            except (UnicodeDecodeError, json.JSONDecodeError):
                payload = ...  # sentinel: malformed JSON
        return method, parts, query, headers.get("accept", ""), payload

    async def _dispatch(
        self, writer, method, parts, query, accept, payload
    ) -> bool:
        if parts == ["__too_large__"]:
            await self._write(
                writer, error_response(413, "request body too large")
            )
            return False
        if method == "GET":
            result = await self._in_executor(
                self.router.handle_get, parts, query, accept
            )
            if isinstance(result, LongPoll):
                result = await self._long_poll(result)
            elif isinstance(result, EventStream):
                await self._sse(writer, result)
                return False  # SSE closes the connection
            await self._write(writer, result)
            return True
        if method == "POST":
            if payload is ...:
                await self._write(
                    writer,
                    error_response(400, "request body is not valid JSON"),
                )
                return True
            result = await self._in_executor(
                self.router.handle_post, parts, query, payload
            )
            await self._write(writer, result)
            return True
        await self._write(
            writer, error_response(404, f"unsupported method: {method}")
        )
        return False

    async def _in_executor(self, fn, *args):
        return await asyncio.get_running_loop().run_in_executor(
            None, lambda: fn(*args)
        )

    # ---------------------------------------------------------- long waits

    async def _events_since(self, campaign_id: str, after: int):
        return await self._in_executor(
            self.scheduler.events_since, campaign_id, after
        )

    async def _long_poll(self, poll: LongPoll) -> Response:
        """Async long-poll: park on the notifier instead of a thread."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + poll.timeout
        while True:
            events = await self._events_since(poll.campaign_id, poll.after)
            job = self.scheduler.job(poll.campaign_id)
            terminal = job is None or job.state in TERMINAL_STATES
            if events or terminal:
                return self.router.events_page(
                    poll.campaign_id, poll.after, events
                )
            remaining = deadline - loop.time()
            if remaining <= 0:
                return self.router.events_page(
                    poll.campaign_id, poll.after, events
                )
            await self._notifier.wait(poll.campaign_id, min(remaining, 15.0))

    async def _sse(self, writer, stream: EventStream) -> None:
        head = (
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n"
        )
        writer.write(head)
        await writer.drain()
        cursor = stream.after
        while True:
            events = await self._events_since(stream.campaign_id, cursor)
            if events:
                writer.write(sse_chunk(events))
                await writer.drain()
            cursor += len(events)
            job = self.scheduler.job(stream.campaign_id)
            if job is None:
                return
            if job.state in TERMINAL_STATES and len(job.events) <= cursor:
                writer.write(sse_final(job.snapshot()))
                await writer.drain()
                return
            if not events:
                writer.write(sse_chunk([]))  # keep-alive comment
                await writer.drain()
                await self._notifier.wait(stream.campaign_id, 15.0)

    # ------------------------------------------------------------ response

    async def _write(self, writer, response: Response) -> None:
        reason = _REASONS.get(response.status, "OK")
        lines = [
            f"HTTP/1.1 {response.status} {reason}",
            f"Content-Type: {response.content_type}",
            f"Content-Length: {len(response.body)}",
        ]
        for name, value in response.headers.items():
            lines.append(f"{name.replace('_', '-')}: {value}")
        lines.append("Connection: keep-alive")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode()
        writer.write(head + response.body)
        await writer.drain()


__all__ = ["FabricFrontDoor"]
