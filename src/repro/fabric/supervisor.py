"""The fleet supervisor: liveness, autoscaling, rolling drain/upgrade.

PR 8's fabric gave campaigns at-least-once execution over a durable
leased queue; this module gives the *fleet* a control loop.  Three
design rules keep it honest under the chaos matrix:

* **The registry is the only truth.**  Liveness is a heartbeat *age*
  read from the durable worker registry (via
  :meth:`repro.fabric.queue.WorkQueue.workers`), never a process
  handle.  Drain directives are durable registry state.  A supervisor
  that is SIGKILLed therefore loses nothing — a replacement adopts the
  same fleet by reading the same warehouse, mid-decision.
* **Decisions are deterministic.**  :meth:`FleetSupervisor.tick` is a
  pure function of (registry, backlog, streak counters) under the
  injectable clock: same inputs, same spawns/drains, which is what lets
  the fake-clock tests assert exact scaling behaviour.
* **Scale-down is drain, not kill.**  Shrinking the fleet or rolling a
  new code version never revokes a lease: the victim gets a durable
  drain directive, observes it on its next heartbeat or lease request,
  finishes (or hands back) its work, deregisters, and exits.  Combined
  with content-addressed trial identity, an upgrade mid-campaign loses
  nothing and doubles nothing.

Autoscaling keys off the same per-tenant backlog (pending + leased)
the ``repro_fabric_tenant_backlog`` Prometheus gauges export, so what
the operator's dashboard shows is literally what the supervisor acted
on.  Hysteresis (``scale_up_after`` / ``scale_down_after`` consecutive
ticks) stops a bursty queue from flapping the fleet.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.exec.telemetry import default_clock
from repro.fabric.queue import (
    WORKER_ACTIVE,
    WORKER_DRAINING,
    WORKER_EXITED,
    WorkQueue,
)


@dataclass(frozen=True)
class SupervisorConfig:
    """Fleet policy knobs; every decision in :meth:`FleetSupervisor.tick`
    derives from these plus the registry."""

    #: Fleet size bounds.  ``min_workers`` is kept warm even with an
    #: empty queue; ``max_workers`` caps a backlog spike.
    min_workers: int = 1
    max_workers: int = 4
    #: Target backlog (pending + leased tasks) each worker absorbs.
    backlog_per_worker: int = 2
    #: Consecutive over/under-demand ticks before acting (hysteresis).
    scale_up_after: int = 2
    scale_down_after: int = 3
    #: A worker whose heartbeat age exceeds this is declared dead and
    #: deregistered; its leases recover through normal lease expiry.
    heartbeat_timeout_s: float = 60.0
    #: Code version stamped on workers this supervisor spawns.
    version: str = ""
    #: Prefix for deterministic spawned-worker names.
    name_prefix: str = "fleet"


@dataclass
class FleetDecision:
    """What one :meth:`FleetSupervisor.tick` saw and did."""

    backlog: int = 0
    desired: int = 0
    live: int = 0
    draining: int = 0
    spawned: List[str] = field(default_factory=list)
    drained: List[str] = field(default_factory=list)
    dead: List[str] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "backlog": self.backlog,
            "desired": self.desired,
            "live": self.live,
            "draining": self.draining,
            "spawned": list(self.spawned),
            "drained": list(self.drained),
            "dead": list(self.dead),
        }


class FleetSupervisor:
    """Drives a worker fleet against one fabric queue.

    ``spawn(name, version)`` is the only side-effect channel into the
    world: in production it forks a ``repro fabric worker`` process, in
    tests it can register a fake worker row — the supervisor never
    assumes it can reach the process again.  Everything else goes
    through the durable registry.
    """

    def __init__(
        self,
        queue: WorkQueue,
        config: Optional[SupervisorConfig] = None,
        spawn: Optional[Callable[[str, str], object]] = None,
        clock: Callable[[], float] = default_clock,
    ):
        self.queue = queue
        self.config = config or SupervisorConfig()
        self._spawn = spawn
        self._clock = clock
        #: Consecutive ticks demanding more / fewer workers.
        self.up_streak = 0
        self.down_streak = 0
        #: Best-effort handles for processes *this* supervisor spawned.
        #: Never consulted for liveness — a replacement supervisor has
        #: an empty dict and exactly the same authority.
        self.handles: Dict[str, object] = {}

    # ------------------------------------------------------------ inputs

    def backlog(self) -> int:
        """Pending + leased tasks across tenants — the same number the
        ``repro_fabric_tenant_backlog`` gauges export, summed."""
        tenants = self.queue.status()["tenants"]
        return sum(
            int(t.get("pending", 0)) + int(t.get("leased", 0))
            for t in tenants.values()
        )

    def fleet(self) -> List[dict]:
        return self.queue.workers()

    # ---------------------------------------------------------- decisions

    def _next_name(self, taken: List[str]) -> str:
        """Deterministic fresh worker name: lowest free index under the
        prefix, derived from the registry so a replacement supervisor
        continues the same sequence."""
        used = set(taken)
        index = 0
        while f"{self.config.name_prefix}-{index:03d}" in used:
            index += 1
        return f"{self.config.name_prefix}-{index:03d}"

    def tick(self) -> FleetDecision:
        """One deterministic supervision step.

        Reap dead workers, compute desired fleet size from backlog,
        then act only once the demand signal has persisted past the
        hysteresis streaks.  Scale-down picks the drain victims
        deterministically: fewest held leases first, then name order,
        so the cheapest worker to release leaves first.
        """
        cfg = self.config
        decision = FleetDecision(backlog=self.backlog())
        workers = self.fleet()

        live: List[dict] = []
        for worker in workers:
            if worker["state"] != WORKER_ACTIVE:
                continue
            if worker["heartbeat_age_s"] > cfg.heartbeat_timeout_s:
                # Dead by heartbeat age: deregister so it stops counting
                # toward capacity.  Its leases expire on their own — the
                # queue's at-least-once contract, not the supervisor,
                # recovers the work.
                self.queue.deregister_worker(worker["name"])
                decision.dead.append(worker["name"])
                self.handles.pop(worker["name"], None)
                continue
            live.append(worker)
        decision.live = len(live)
        decision.draining = sum(
            1 for w in workers if w["state"] == WORKER_DRAINING
        )

        decision.desired = max(
            cfg.min_workers,
            min(
                cfg.max_workers,
                math.ceil(decision.backlog / max(1, cfg.backlog_per_worker)),
            ),
        )

        if decision.desired > decision.live:
            self.up_streak += 1
            self.down_streak = 0
            if self.up_streak >= cfg.scale_up_after:
                taken = [w["name"] for w in workers]
                for _ in range(decision.desired - decision.live):
                    name = self._next_name(taken)
                    taken.append(name)
                    self._launch(name)
                    decision.spawned.append(name)
                self.up_streak = 0
        elif decision.desired < decision.live:
            self.down_streak += 1
            self.up_streak = 0
            if self.down_streak >= cfg.scale_down_after:
                victims = sorted(
                    live, key=lambda w: (w["leases"], w["name"])
                )[: decision.live - decision.desired]
                for worker in victims:
                    self.queue.drain_worker(worker["name"])
                    decision.drained.append(worker["name"])
                self.down_streak = 0
        else:
            self.up_streak = 0
            self.down_streak = 0
        return decision

    def _launch(self, name: str) -> None:
        if self._spawn is None:
            return
        handle = self._spawn(name, self.config.version)
        if handle is not None:
            self.handles[name] = handle

    # ------------------------------------------------------------- rolling

    def roll(
        self,
        version: str,
        timeout_s: float = 120.0,
        poll_s: float = 0.25,
        sleep: Callable[[float], None] = time.sleep,
    ) -> dict:
        """Lease-safe rolling upgrade to ``version``, one worker at a
        time: spawn the replacement, wait for its first heartbeat, then
        drain the old worker and wait for it to finish its lease and
        exit.  At every instant the fleet holds at least its pre-roll
        capacity, and no lease is ever revoked — a drained worker
        completes (or hands back) before leaving.

        Returns ``{"replaced": [...], "spawned": [...]}``.  Raises
        ``TimeoutError`` if a replacement never heartbeats or a victim
        never drains within ``timeout_s`` — the roll stops between
        workers, never mid-handoff, so a failed roll leaves a healthy
        mixed-version fleet.
        """
        self.config = SupervisorConfig(
            **{**self.config.__dict__, "version": version}
        )
        stale = sorted(
            w["name"]
            for w in self.fleet()
            if w["state"] == WORKER_ACTIVE and w["version"] != version
        )
        replaced: List[str] = []
        spawned: List[str] = []
        for old in stale:
            taken = [w["name"] for w in self.queue.workers(include_exited=True)]
            fresh = self._next_name(taken + spawned)
            self._launch(fresh)
            spawned.append(fresh)
            self._await(
                lambda: self._is_live(fresh),
                timeout_s,
                poll_s,
                sleep,
                f"replacement worker {fresh} never heartbeat",
            )
            self.queue.drain_worker(old)
            self._await(
                lambda: self._has_left(old),
                timeout_s,
                poll_s,
                sleep,
                f"drained worker {old} never exited",
            )
            replaced.append(old)
            self.handles.pop(old, None)
        return {"replaced": replaced, "spawned": spawned}

    def _is_live(self, name: str) -> bool:
        info = self.queue.worker_info(name)
        return (
            info is not None
            and info["state"] == WORKER_ACTIVE
            and info["heartbeat_age_s"] <= self.config.heartbeat_timeout_s
        )

    def _has_left(self, name: str) -> bool:
        """The worker exited cleanly: its row is gone or marked exited
        with no lease.  Merely ``draining`` is not gone — it may still
        be finishing the lease the roll promised never to revoke."""
        info = self.queue.worker_info(name)
        return info is None or (
            info["state"] == WORKER_EXITED and info["leases"] == 0
        )

    def _await(self, done, timeout_s, poll_s, sleep, what: str) -> None:
        deadline = self._clock() + timeout_s
        while not done():
            if self._clock() >= deadline:
                raise TimeoutError(what)
            sleep(poll_s)

    # ---------------------------------------------------------------- loop

    def run(
        self,
        poll_s: float = 2.0,
        max_ticks: Optional[int] = None,
        should_stop: Callable[[], bool] = lambda: False,
        sleep: Callable[[float], None] = time.sleep,
    ) -> List[FleetDecision]:
        """Supervision loop: tick, sleep, repeat.  ``max_ticks`` bounds
        it for tests and smoke runs; ``should_stop`` lets a caller wire
        a shutdown flag."""
        decisions: List[FleetDecision] = []
        ticks = 0
        while not should_stop():
            decisions.append(self.tick())
            ticks += 1
            if max_ticks is not None and ticks >= max_ticks:
                break
            sleep(poll_s)
        return decisions


__all__ = ["FleetSupervisor", "SupervisorConfig", "FleetDecision"]
