"""repro.fabric — the distributed campaign fabric.

Layers (each importable on its own):

* :mod:`repro.fabric.queue` — durable leased work queue in the
  warehouse (at-least-once leases, heartbeats, deficit round-robin
  tenant scheduling, idempotent completion).
* :mod:`repro.fabric.wire` — content-addressed result bundles for
  remote workers without a shared filesystem.
* :mod:`repro.fabric.coordinator` — the service scheduler dispatching
  into the queue instead of in-process threads.
* :mod:`repro.fabric.worker` — the lease → execute → report agent.
* :mod:`repro.fabric.supervisor` — fleet liveness, autoscaling off the
  tenant-backlog gauges, and lease-safe rolling drain/upgrade.
* :mod:`repro.fabric.frontdoor` — asyncio HTTP front end over the
  shared service router.

Exports resolve lazily: the coordinator imports the service layer and
the service router imports the queue, so eager re-exports here would
create an import cycle.
"""

from __future__ import annotations

import importlib

_EXPORTS = {
    "WorkQueue": "repro.fabric.queue",
    "Task": "repro.fabric.queue",
    "Lease": "repro.fabric.queue",
    "QueueError": "repro.fabric.queue",
    "QuotaExceeded": "repro.fabric.queue",
    "DEFAULT_MAX_ATTEMPTS": "repro.fabric.queue",
    "export_bundle": "repro.fabric.wire",
    "export_bundles": "repro.fabric.wire",
    "ingest_bundle": "repro.fabric.wire",
    "encode_bundle": "repro.fabric.wire",
    "decode_bundle": "repro.fabric.wire",
    "Coordinator": "repro.fabric.coordinator",
    "DEFAULT_LEASE_TTL_S": "repro.fabric.coordinator",
    "FabricWorker": "repro.fabric.worker",
    "LocalTransport": "repro.fabric.worker",
    "HttpTransport": "repro.fabric.worker",
    "lease_to_wire": "repro.fabric.worker",
    "FleetSupervisor": "repro.fabric.supervisor",
    "SupervisorConfig": "repro.fabric.supervisor",
    "FleetDecision": "repro.fabric.supervisor",
    "FabricFrontDoor": "repro.fabric.frontdoor",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module 'repro.fabric' has no attribute {name!r}")
    return getattr(importlib.import_module(module), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
