"""The fabric worker agent: lease → execute → report, survivably.

A worker is a separate process (``repro fabric worker``), optionally on
a different machine, that pulls campaign leases from the coordinator
and runs them through the same :class:`repro.exec.Executor` +
:class:`repro.store.StoreCache` pipeline the single-process scheduler
uses — so results are bit-identical by construction.

Two store modes:

* **shared** (``store_path`` given): the worker opens the coordinator's
  warehouse file directly (same host / shared filesystem).  Trials
  write through as they complete; ``complete`` ships only the summary.
* **remote** (no ``store_path``): the worker runs against a scratch
  store and ships a :mod:`repro.fabric.wire` result bundle back on
  ``complete``; the coordinator ingests it into the shared warehouse.

Crash-safety is lease-based, not protocol-based: a worker that is
SIGKILLed mid-campaign simply stops heartbeating, its lease expires,
and the task returns to the queue for the next worker.  Completed
trials are already durable (shared mode) or recomputed deterministically
(remote mode), and content-addressed keys dedupe either way.  All HTTP
calls ride the unified :class:`repro.faults.RetryPolicy`.

Drain is the *graceful* exit the supervisor uses for scale-down and
rolling upgrades: a ``{"drain": true}`` lease response or a heartbeat
carrying ``drain`` tells the worker to stop taking work.  Under the
default ``finish`` policy it completes the lease it holds first; under
``handback`` it fails the lease retryable immediately.  Either way it
deregisters and exits, so nothing is lost (the queue keeps the task)
and nothing doubles (content-addressed trials dedupe).
"""

from __future__ import annotations

import tempfile
import threading
from pathlib import Path
from typing import Callable, List, Optional

from repro.exec.telemetry import default_clock
from repro.faults import inject
from repro.faults.retry import RetryPolicy, default_sleep
from repro.service.client import ServiceClient, ServiceError
from repro.service.specs import execute_campaign, parse_campaign_spec


class _LeaseLost(Exception):
    """The coordinator re-leased our task; abandon it quietly."""


class _CancelRequested(Exception):
    """The campaign was cancelled; abort at the trial boundary."""


class _DrainHandback(Exception):
    """Drain directive under the handback policy: return the lease."""


def lease_to_wire(lease) -> dict:
    """Flatten a :class:`repro.fabric.queue.Lease` for JSON transport."""
    payload = lease.spec if isinstance(lease.spec, dict) else {}
    return {
        "campaign": lease.campaign,
        "lease_id": lease.lease_id,
        "tenant": lease.tenant,
        "attempt": lease.attempt,
        "expires_at": lease.expires_at,
        "spec": payload.get("spec", payload),
    }


class LocalTransport:
    """Drive a :class:`~repro.fabric.coordinator.Coordinator` in-process
    (tests, benchmarks, chaos harnesses — no HTTP hop)."""

    def __init__(self, coordinator):
        self._coordinator = coordinator

    def lease(
        self, worker: str, ttl_s: float, version: str = ""
    ) -> Optional[dict]:
        lease = self._coordinator.lease_task(
            worker, ttl_s=ttl_s, version=version
        )
        if lease is None or isinstance(lease, dict):
            return lease  # idle, or a {"drain": True} directive
        return lease_to_wire(lease)

    def heartbeat(
        self,
        campaign: str,
        lease_id: str,
        ttl_s: float,
        progress: List[dict],
    ) -> dict:
        return self._coordinator.heartbeat_task(
            campaign, lease_id, ttl_s=ttl_s, progress=progress
        )

    def complete(
        self,
        campaign: str,
        lease_id: str,
        summary: dict,
        bundle: Optional[dict],
    ) -> dict:
        outcome = self._coordinator.complete_task(
            campaign, lease_id, summary=summary, bundle=bundle
        )
        return {"outcome": outcome}

    def fail(
        self, campaign: str, lease_id: str, error: str, retryable: bool
    ) -> dict:
        outcome = self._coordinator.fail_task(
            campaign, lease_id, error, retryable=retryable
        )
        return {"outcome": outcome}

    def deregister(self, worker: str) -> dict:
        self._coordinator.deregister_worker(worker)
        return {"ok": True}


class HttpTransport:
    """The production transport: the coordinator's HTTP fabric endpoints
    via :class:`ServiceClient`, with transient failures (connection drops
    and backpressure) retried through one :class:`RetryPolicy`."""

    RETRYABLE_STATUSES = (0, 429, 503)

    def __init__(
        self,
        base_url: str,
        retry: Optional[RetryPolicy] = None,
        timeout_s: float = 30.0,
    ):
        self.client = ServiceClient(base_url, timeout_s=timeout_s)
        if retry is None:
            retry = RetryPolicy(
                max_attempts=None,
                backoff_s=0.2,
                backoff_cap_s=5.0,
                deadline_s=60.0,
                jitter=0.5,
            )
        self._retry = retry

    def _call(self, fn):
        def retryable(exc: BaseException) -> bool:
            return (
                isinstance(exc, ServiceError)
                and exc.status in self.RETRYABLE_STATUSES
            )

        return self._retry.call(fn, retryable=retryable)

    def lease(
        self, worker: str, ttl_s: float, version: str = ""
    ) -> Optional[dict]:
        return self._call(
            lambda: self.client.fabric_lease(
                worker, ttl_s=ttl_s, version=version
            )
        )

    def heartbeat(
        self,
        campaign: str,
        lease_id: str,
        ttl_s: float,
        progress: List[dict],
    ) -> dict:
        # Heartbeats are deliberately *not* retried: a missed beat is
        # recoverable (the next one extends the lease) and retries would
        # delay noticing a lost lease.
        return self.client.fabric_heartbeat(
            campaign, lease_id, ttl_s=ttl_s, progress=progress
        )

    def complete(
        self,
        campaign: str,
        lease_id: str,
        summary: dict,
        bundle: Optional[dict],
    ) -> dict:
        return self._call(
            lambda: self.client.fabric_complete(
                campaign, lease_id, summary=summary, bundle=bundle
            )
        )

    def fail(
        self, campaign: str, lease_id: str, error: str, retryable: bool
    ) -> dict:
        return self._call(
            lambda: self.client.fabric_fail(
                campaign, lease_id, error, retryable=retryable
            )
        )

    def deregister(self, worker: str) -> dict:
        return self._call(lambda: self.client.fabric_deregister(worker))


class FabricWorker:
    """Lease loop: claim a campaign, execute it, report, repeat."""

    def __init__(
        self,
        transport,
        name: str = "fabric-worker",
        store_path: Optional[str] = None,
        scratch_dir: Optional[str] = None,
        jobs: int = 1,
        poll_s: float = 0.5,
        ttl_s: float = 30.0,
        version: str = "",
        drain_policy: str = "finish",
        sleep: Callable[[float], None] = default_sleep,
        clock: Callable[[], float] = default_clock,
        log: Optional[Callable[[str], None]] = None,
    ):
        if drain_policy not in ("finish", "handback"):
            raise ValueError(
                f"drain_policy must be 'finish' or 'handback', "
                f"got {drain_policy!r}"
            )
        self.transport = transport
        self.name = name
        self.store_path = str(store_path) if store_path else None
        self.scratch_dir = scratch_dir
        self.jobs = max(1, int(jobs))
        self.poll_s = float(poll_s)
        self.ttl_s = float(ttl_s)
        #: Code version reported on every lease request; the supervisor
        #: uses it to pick rolling-upgrade victims.
        self.version = str(version)
        #: What a drain directive does to a held lease: ``finish`` runs
        #: it to completion before exiting (nothing recomputed),
        #: ``handback`` fails it retryable immediately (fastest exit,
        #: the next worker re-runs it — content addressing dedupes).
        self.drain_policy = drain_policy
        #: True once a drain directive has been observed; the lease loop
        #: exits and the worker deregisters.
        self.drained = False
        self._sleep = sleep
        self._clock = clock
        self._log = log or (lambda msg: None)
        self._stop = threading.Event()

    def stop(self) -> None:
        """Finish the current campaign, then exit the lease loop."""
        self._stop.set()

    # ------------------------------------------------------------- the loop

    def run(self, once: bool = False, max_tasks: Optional[int] = None) -> int:
        """Pull and execute leases; returns how many tasks were handled.

        ``once=True`` exits at the first empty poll (smoke tests drain
        the queue and stop); otherwise the loop polls until
        :meth:`stop`.
        """
        handled = 0
        while not self._stop.is_set():
            try:
                lease = self.transport.lease(
                    self.name, self.ttl_s, self.version
                )
            except ServiceError as exc:
                self._log(f"{self.name}: lease failed ({exc}); backing off")
                if once:
                    break
                self._sleep(self.poll_s)
                continue
            if isinstance(lease, dict) and lease.get("drain"):
                # Durable drain directive instead of work: we hold no
                # lease right now, so exit immediately.
                self._log(f"{self.name}: drain directive; exiting")
                self.drained = True
                break
            if lease is None:
                if once:
                    break
                self._sleep(self.poll_s)
                continue
            self._run_lease(lease)
            handled += 1
            if self.drained:
                self._log(
                    f"{self.name}: drained after finishing "
                    f"{lease['campaign']}; exiting"
                )
                break
            if max_tasks is not None and handled >= max_tasks:
                break
        if self.drained:
            # Hand the registry slot back so the supervisor's roll can
            # proceed; best-effort — an unreachable coordinator just
            # leaves the row to age out by heartbeat timeout.
            try:
                self.transport.deregister(self.name)
            except (ServiceError, OSError) as exc:
                self._log(f"{self.name}: deregister lost: {exc}")
        return handled

    # ------------------------------------------------------------ one lease

    def _run_lease(self, lease: dict) -> None:
        campaign = lease["campaign"]
        lease_id = lease["lease_id"]
        self._log(
            f"{self.name}: leased {campaign} "
            f"(attempt {lease.get('attempt')})"
        )
        state = {"abort": False, "cancel": False, "drain": False}
        pending: List[dict] = []
        lock = threading.Lock()
        stop_beat = threading.Event()

        def send_beat() -> None:
            with lock:
                batch, pending[:] = list(pending), []
            try:
                inject.fault_point(
                    "fabric.heartbeat",
                    campaign=campaign,
                    attempt=lease.get("attempt"),
                )
                beat = self.transport.heartbeat(
                    campaign, lease_id, self.ttl_s, batch
                )
            except Exception:  # noqa: BLE001 - a missed beat is recoverable
                with lock:
                    pending[:0] = batch  # don't lose the progress batch
                return
            if not beat.get("ok", False):
                state["abort"] = True
            if beat.get("cancel", False):
                state["cancel"] = True
            if beat.get("drain", False):
                state["drain"] = True

        def beat_loop() -> None:
            # Three beats per TTL: one lost heartbeat never kills a lease.
            while not stop_beat.wait(self.ttl_s / 3.0):
                send_beat()

        def progress(record, done, total) -> None:
            with lock:
                pending.append(
                    {
                        "event": "trial",
                        "label": record.label,
                        "status": record.status,
                        "done": done,
                        "total": total,
                    }
                )
            if state["abort"]:
                raise _LeaseLost()
            if state["cancel"]:
                raise _CancelRequested()
            if state["drain"] and self.drain_policy == "handback":
                raise _DrainHandback()

        beater = threading.Thread(
            target=beat_loop, name=f"{self.name}-heartbeat", daemon=True
        )
        beater.start()
        try:
            summary, bundle = self._execute(lease, progress)
        except _LeaseLost:
            self._log(f"{self.name}: lease lost for {campaign}; abandoning")
            return
        except _CancelRequested:
            self._report_fail(
                campaign, lease_id, "cancelled by request", retryable=False
            )
            return
        except _DrainHandback:
            # Hand the lease back retryable: the task requeues for a
            # surviving worker, and content-addressed trials mean the
            # partial work already done is never recomputed into
            # different bytes.
            self._log(f"{self.name}: draining; handing back {campaign}")
            self._report_fail(
                campaign, lease_id, "drained: lease handed back",
                retryable=True,
            )
            self.drained = True
            return
        except Exception as exc:  # noqa: BLE001 - report typed failure
            self._report_fail(
                campaign, lease_id, f"{type(exc).__name__}: {exc}",
                retryable=True,
            )
            return
        finally:
            stop_beat.set()
            beater.join(timeout=5.0)
        send_beat()  # final flush so watchers see the last trials
        if state["drain"]:
            # Finish-then-exit: the lease ran to completion below; the
            # run loop exits once this report lands.
            self.drained = True
        if state["abort"]:
            return  # completion would be stale; the new lease owns it
        try:
            self.transport.complete(campaign, lease_id, summary, bundle)
        except ServiceError as exc:
            self._log(f"{self.name}: complete failed for {campaign}: {exc}")
        else:
            self._log(f"{self.name}: completed {campaign}")

    def _report_fail(
        self, campaign: str, lease_id: str, error: str, retryable: bool
    ) -> None:
        try:
            self.transport.fail(campaign, lease_id, error, retryable)
        except ServiceError as exc:
            self._log(f"{self.name}: fail report for {campaign} lost: {exc}")

    # ------------------------------------------------------------- execute

    def _execute(self, lease: dict, progress):
        from repro.exec import Executor
        from repro.store import StoreCache, open_store

        spec = parse_campaign_spec(lease["spec"])
        if self.store_path is not None:
            store_file, bundle_runs = self.store_path, None
        else:
            scratch = Path(
                self.scratch_dir
                or tempfile.mkdtemp(prefix=f"repro-{self.name}-")
            )
            scratch.mkdir(parents=True, exist_ok=True)
            store_file = str(scratch / f"{lease['campaign']}.db")
            bundle_runs = spec.run_names()
        with open_store(store_file) as store:
            cache = StoreCache(store)
            with Executor(
                jobs=self.jobs,
                cache=cache,
                progress=progress,
                store=store,
                store_run=spec.run_name(),
            ) as executor:
                summary = execute_campaign(spec, store, executor)
                telemetry = executor.telemetry
                summary["exec"] = {
                    "jobs": telemetry.jobs,
                    "ok": telemetry.ok,
                    "cached": telemetry.cached,
                    "wall_s": round(telemetry.wall_s, 4),
                    "mode": telemetry.mode,
                }
            bundle = None
            if bundle_runs is not None:
                from repro.fabric.wire import export_bundle

                names = [n for n in bundle_runs if store.has_run(n)]
                bundle = export_bundle(store, names)
        summary["worker"] = self.name
        return summary, bundle


__all__ = [
    "FabricWorker",
    "LocalTransport",
    "HttpTransport",
    "lease_to_wire",
]
