"""The fabric's durable leased work queue.

One ``fabric_tasks`` row per submitted campaign lives in the same SQLite
warehouse as the results it will produce, so queue state, the events
journal and the content-addressed trial payloads commit through one WAL
file with one retry discipline.  Lease semantics are at-least-once:

* :meth:`WorkQueue.lease` atomically claims the best available task
  (deficit-round-robin across tenants, then priority, then FIFO) and
  stamps it with a lease id, owner and expiry.
* :meth:`WorkQueue.heartbeat` extends the lease while the worker is
  alive; a worker that is SIGKILLed simply stops heartbeating and the
  lease expires, returning the task to ``pending`` for the next worker.
* :meth:`WorkQueue.complete` is idempotent — results are keyed by the
  same content-addressed trial identity everywhere, so a task finished
  twice (stale lease + fresh lease) dedupes to identical rows and the
  second completion is acknowledged as a duplicate, never an error.

The queue also keeps the fleet's durable worker registry
(``fabric_workers``): every lease and heartbeat stamps the calling
worker's ``last_seen``, so heartbeat *ages* — not process handles — are
the fleet's liveness signal, and the ``draining`` state is a durable
drain directive the worker observes on its next heartbeat (finish or
hand back the lease, then exit).  A supervisor that crashes loses
nothing: the registry and directives live in the warehouse.

Every statement that touches ``fabric_tasks`` / ``fabric_tenants`` /
``fabric_workers`` lives in this module; the ``queue-sql-confinement``
lint rule keeps it that way so lease invariants can be audited in one
file.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Union

from repro.exec.telemetry import default_clock
from repro.store.warehouse import ResultStore

# Task states.  pending -> leased -> done|failed; cancelled can replace
# pending or leased.  A lease that expires moves leased -> pending.
PENDING = "pending"
LEASED = "leased"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

TERMINAL = (DONE, FAILED, CANCELLED)

# Worker registry states.  active -> draining -> exited; a worker that
# re-registers (new process, same name) returns to active.
WORKER_ACTIVE = "active"
WORKER_DRAINING = "draining"
WORKER_EXITED = "exited"

#: Default number of executions (including lease expiries) before a task
#: is declared failed rather than re-queued.
DEFAULT_MAX_ATTEMPTS = 3


class QueueError(RuntimeError):
    """A queue operation violated lease or quota invariants."""


class QuotaExceeded(QueueError):
    """The tenant's ``max_pending`` quota rejected a submit."""


@dataclass(frozen=True)
class Task:
    """Snapshot of one ``fabric_tasks`` row."""

    campaign: str
    tenant: str
    spec: dict
    priority: int
    state: str
    attempts: int
    lease_id: Optional[str]
    lease_owner: Optional[str]
    lease_expires_at: Optional[float]
    cancel_requested: bool
    result: dict
    error: Optional[str]


@dataclass(frozen=True)
class Lease:
    """What a worker holds after a successful :meth:`WorkQueue.lease`."""

    campaign: str
    lease_id: str
    tenant: str
    spec: dict
    attempt: int
    expires_at: float


def _row_task(row) -> Task:
    return Task(
        campaign=row["campaign"],
        tenant=row["tenant"],
        spec=json.loads(row["spec"]),
        priority=int(row["priority"]),
        state=row["state"],
        attempts=int(row["attempts"]),
        lease_id=row["lease_id"],
        lease_owner=row["lease_owner"],
        lease_expires_at=row["lease_expires_at"],
        cancel_requested=bool(row["cancel_requested"]),
        result=json.loads(row["result"] or "{}"),
        error=row["error"],
    )


class WorkQueue:
    """Lease-based task queue on a :class:`ResultStore` file.

    Like the store itself, open one instance per thread/process; all
    writes go through the store's retried single-transaction seam, so
    coordinator and N workers can share one path safely.
    """

    def __init__(
        self,
        store: Union[ResultStore, str],
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        clock: Callable[[], float] = default_clock,
    ):
        if isinstance(store, ResultStore) or hasattr(store, "write_transaction"):
            # A ResultStore, or anything mirroring its transaction seam
            # (a ShardedResultStore delegates to its meta shard).
            self._store = store
            self._owns_store = False
        else:
            from repro.store.sharded import open_store

            self._store = open_store(store)
            self._owns_store = True
        self.max_attempts = int(max_attempts)
        self._clock = clock

    def close(self) -> None:
        if self._owns_store:
            self._store.close()

    def __enter__(self) -> "WorkQueue":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------- tenants

    def ensure_tenant(
        self,
        name: str,
        weight: int = 1,
        max_pending: Optional[int] = None,
        max_active: Optional[int] = None,
    ) -> None:
        """Create or update a tenant row (weight drives DRR fairness)."""
        if weight < 1:
            raise QueueError(f"tenant weight must be >= 1, got {weight}")
        now = self._clock()

        def txn(conn):
            conn.execute(
                "INSERT INTO fabric_tenants (name, weight, max_pending,"
                " max_active, created_at) VALUES (?, ?, ?, ?, ?)"
                " ON CONFLICT(name) DO UPDATE SET weight = excluded.weight,"
                " max_pending = excluded.max_pending,"
                " max_active = excluded.max_active",
                (name, int(weight), max_pending, max_active, now),
            )

        self._store.write_transaction(txn)

    def _ensure_tenant_row(self, conn, name: str) -> None:
        conn.execute(
            "INSERT OR IGNORE INTO fabric_tenants (name, created_at)"
            " VALUES (?, ?)",
            (name, self._clock()),
        )

    # ------------------------------------------------------------- workers

    def _touch_worker(
        self, conn, name: str, now: float, version: Optional[str] = None
    ) -> str:
        """Upsert the worker's registry row and stamp ``last_seen``.

        Returns the worker's current state.  A worker whose row says
        ``exited`` and shows up again is a restarted process: it
        re-activates (fresh ``started_at``).  ``draining`` is sticky —
        only an explicit re-register clears it — so a drain directive
        can never be lost to a concurrently arriving heartbeat.
        """
        conn.execute(
            "INSERT INTO fabric_workers (name, version, state, started_at,"
            " last_seen) VALUES (?, ?, ?, ?, ?)"
            " ON CONFLICT(name) DO UPDATE SET last_seen = excluded.last_seen,"
            " version = CASE WHEN excluded.version != ''"
            "   THEN excluded.version ELSE fabric_workers.version END,"
            " state = CASE WHEN fabric_workers.state = ?"
            "   THEN ? ELSE fabric_workers.state END,"
            " started_at = CASE WHEN fabric_workers.state = ?"
            "   THEN excluded.started_at ELSE fabric_workers.started_at END",
            (
                name, version or "", WORKER_ACTIVE, now, now,
                WORKER_EXITED, WORKER_ACTIVE, WORKER_EXITED,
            ),
        )
        return conn.execute(
            "SELECT state FROM fabric_workers WHERE name = ?", (name,)
        ).fetchone()["state"]

    def register_worker(self, name: str, version: str = "") -> dict:
        """Explicitly (re-)register a worker as active.

        Unlike the lease/heartbeat touch this *clears* a drain directive
        — it is the "new code version taking over" half of a rolling
        upgrade, so the restarted process starts with a clean state.
        """
        now = self._clock()

        def txn(conn):
            conn.execute(
                "INSERT INTO fabric_workers (name, version, state,"
                " started_at, last_seen) VALUES (?, ?, ?, ?, ?)"
                " ON CONFLICT(name) DO UPDATE SET"
                " version = excluded.version, state = excluded.state,"
                " started_at = excluded.started_at,"
                " last_seen = excluded.last_seen",
                (name, version, WORKER_ACTIVE, now, now),
            )

        self._store.write_transaction(txn)
        info = self.worker_info(name)
        assert info is not None
        return info

    def deregister_worker(self, name: str) -> None:
        """Record a clean worker exit (keeps the row for fleet history)."""
        now = self._clock()
        self._store.write_transaction(
            lambda conn: conn.execute(
                "UPDATE fabric_workers SET state = ?, last_seen = ?"
                " WHERE name = ?",
                (WORKER_EXITED, now, name),
            )
        )

    def drain_worker(self, name: str) -> dict:
        """Set the durable drain directive for ``name``.

        The worker sees ``drain: true`` on its next heartbeat or lease
        poll, finishes (or hands back) its current lease, and exits.
        Draining a worker the registry has never seen creates the row,
        so a directive can be issued before the first heartbeat lands.
        """
        now = self._clock()

        def txn(conn):
            conn.execute(
                "INSERT INTO fabric_workers (name, state, started_at,"
                " last_seen) VALUES (?, ?, ?, ?)"
                " ON CONFLICT(name) DO UPDATE SET state = ?",
                (name, WORKER_DRAINING, now, now, WORKER_DRAINING),
            )

        self._store.write_transaction(txn)
        info = self.worker_info(name)
        assert info is not None
        return info

    def worker_info(self, name: str) -> Optional[dict]:
        workers = {w["name"]: w for w in self.workers(include_exited=True)}
        return workers.get(name)

    def workers(self, include_exited: bool = False) -> List[dict]:
        """The fleet registry with live heartbeat ages and lease counts."""
        now = self._clock()

        def txn(conn):
            sql = (
                "SELECT w.name, w.version, w.state, w.started_at,"
                " w.last_seen, w.leases_total,"
                " SUM(CASE WHEN k.state = ? THEN 1 ELSE 0 END) AS leases"
                " FROM fabric_workers w LEFT JOIN fabric_tasks k"
                " ON k.lease_owner = w.name GROUP BY w.name ORDER BY w.name"
            )
            out = []
            for row in conn.execute(sql, (LEASED,)):
                if row["state"] == WORKER_EXITED and not include_exited:
                    continue
                out.append(
                    {
                        "name": row["name"],
                        "version": row["version"],
                        "state": row["state"],
                        "started_at": row["started_at"],
                        "last_seen": row["last_seen"],
                        "heartbeat_age_s": round(now - row["last_seen"], 3),
                        "leases": int(row["leases"] or 0),
                        "leases_total": int(row["leases_total"] or 0),
                    }
                )
            return out

        return self._store.read_transaction(txn)

    # ------------------------------------------------------------- enqueue

    def enqueue(
        self,
        campaign: str,
        spec: dict,
        tenant: str = "default",
        priority: int = 0,
    ) -> Task:
        """Durably add a campaign to the queue (idempotent by campaign id).

        Raises :class:`QuotaExceeded` when the tenant's ``max_pending``
        quota is full — the front door turns that into a 429.
        """
        now = self._clock()
        payload = json.dumps(spec, sort_keys=True)

        def txn(conn):
            self._ensure_tenant_row(conn, tenant)
            row = conn.execute(
                "SELECT max_pending FROM fabric_tenants WHERE name = ?",
                (tenant,),
            ).fetchone()
            limit = row["max_pending"]
            exists = conn.execute(
                "SELECT campaign FROM fabric_tasks WHERE campaign = ?",
                (campaign,),
            ).fetchone()
            if exists is None and limit is not None:
                backlog = conn.execute(
                    "SELECT COUNT(*) AS n FROM fabric_tasks"
                    " WHERE tenant = ? AND state IN (?, ?)",
                    (tenant, PENDING, LEASED),
                ).fetchone()["n"]
                if backlog >= limit:
                    raise QuotaExceeded(
                        f"tenant {tenant!r} backlog {backlog} at quota "
                        f"max_pending={limit}"
                    )
            conn.execute(
                "INSERT OR IGNORE INTO fabric_tasks (campaign, tenant,"
                " spec, priority, state, created_at, updated_at)"
                " VALUES (?, ?, ?, ?, ?, ?, ?)",
                (campaign, tenant, payload, int(priority), PENDING, now, now),
            )
            return conn.execute(
                "SELECT * FROM fabric_tasks WHERE campaign = ?", (campaign,)
            ).fetchone()

        return _row_task(self._store.write_transaction(txn))

    # --------------------------------------------------------------- lease

    def _sweep_expired(self, conn, now: float) -> List[str]:
        """Return expired leases to pending (or fail them past the attempt
        cap).  Called inside every lease/status transaction — workers poll
        continuously, so lazy sweeping converges without a timer thread."""
        rows = conn.execute(
            "SELECT campaign, attempts FROM fabric_tasks"
            " WHERE state = ? AND lease_expires_at IS NOT NULL"
            " AND lease_expires_at <= ?",
            (LEASED, now),
        ).fetchall()
        expired = []
        for row in rows:
            campaign = row["campaign"]
            expired.append(campaign)
            if int(row["attempts"]) >= self.max_attempts:
                conn.execute(
                    "UPDATE fabric_tasks SET state = ?, lease_id = NULL,"
                    " lease_owner = NULL, lease_expires_at = NULL,"
                    " error = ?, updated_at = ? WHERE campaign = ?",
                    (
                        FAILED,
                        f"lease expired {row['attempts']} times"
                        f" (max_attempts={self.max_attempts})",
                        now,
                        campaign,
                    ),
                )
            else:
                conn.execute(
                    "UPDATE fabric_tasks SET state = ?, lease_id = NULL,"
                    " lease_owner = NULL, lease_expires_at = NULL,"
                    " updated_at = ? WHERE campaign = ?",
                    (PENDING, now, campaign),
                )
        return expired

    def sweep(self) -> List[str]:
        """Explicitly sweep expired leases; returns affected campaigns."""
        now = self._clock()
        return self._store.write_transaction(
            lambda conn: self._sweep_expired(conn, now)
        )

    def _pick_tenant(self, conn) -> Optional[str]:
        """Deficit round-robin: pick the backlogged tenant to serve next.

        Every eligible tenant (pending work, under its ``max_active``
        lease quota) accrues ``weight`` credits per replenish round; the
        richest deficit wins and pays one credit per lease.  Weight-2
        tenants therefore drain twice as fast as weight-1 tenants under
        contention, and an idle tenant's deficit is reset so it cannot
        hoard credits while absent (classic DRR behaviour).
        """
        rows = conn.execute(
            "SELECT t.name, t.weight, t.deficit, t.max_active, t.rowid AS rid,"
            " SUM(CASE WHEN k.state = ? THEN 1 ELSE 0 END) AS backlog,"
            " SUM(CASE WHEN k.state = ? THEN 1 ELSE 0 END) AS active"
            " FROM fabric_tenants t LEFT JOIN fabric_tasks k"
            " ON k.tenant = t.name GROUP BY t.name ORDER BY t.rowid",
            (PENDING, LEASED),
        ).fetchall()
        eligible = []
        for row in rows:
            backlog = int(row["backlog"] or 0)
            active = int(row["active"] or 0)
            if backlog == 0:
                if row["deficit"]:
                    conn.execute(
                        "UPDATE fabric_tenants SET deficit = 0 WHERE name = ?",
                        (row["name"],),
                    )
                continue
            if row["max_active"] is not None and active >= row["max_active"]:
                continue
            eligible.append(
                {
                    "name": row["name"],
                    "weight": int(row["weight"]),
                    "deficit": float(row["deficit"]),
                    "rid": int(row["rid"]),
                }
            )
        if not eligible:
            return None
        while all(t["deficit"] < 1.0 for t in eligible):
            for t in eligible:
                t["deficit"] += t["weight"]
        winner = max(eligible, key=lambda t: (t["deficit"], -t["rid"]))
        for t in eligible:
            deficit = t["deficit"] - 1.0 if t is winner else t["deficit"]
            conn.execute(
                "UPDATE fabric_tenants SET deficit = ? WHERE name = ?",
                (deficit, t["name"]),
            )
        return winner["name"]

    def lease(
        self,
        owner: str,
        ttl_s: float = 30.0,
        version: Optional[str] = None,
    ) -> Union[Lease, dict, None]:
        """Atomically claim the next task for ``owner``.

        Returns the :class:`Lease`, or ``None`` when the queue is idle,
        or the directive dict ``{"drain": True}`` when ``owner`` is
        under a drain directive — a draining worker gets no new work,
        only the instruction to finish up and exit.  The call also
        stamps the worker's registry row (liveness is heartbeat *age*,
        and an idle worker's polls count as heartbeats).
        """
        now = self._clock()

        def txn(conn):
            if self._touch_worker(conn, owner, now, version) == WORKER_DRAINING:
                return {"drain": True}
            self._sweep_expired(conn, now)
            tenant = self._pick_tenant(conn)
            if tenant is None:
                return None
            row = conn.execute(
                "SELECT * FROM fabric_tasks WHERE tenant = ? AND state = ?"
                " ORDER BY priority DESC, id ASC LIMIT 1",
                (tenant, PENDING),
            ).fetchone()
            if row is None:  # raced: backlog drained inside this txn
                return None
            # Unique per (task, attempt): attempts only ever increase, so
            # a stale lease id can never be minted twice.
            attempt = int(row["attempts"]) + 1
            lease_id = f"L{int(row['id']):06d}.{attempt}"
            conn.execute(
                "UPDATE fabric_tasks SET state = ?, attempts = ?,"
                " lease_id = ?, lease_owner = ?, lease_expires_at = ?,"
                " updated_at = ? WHERE id = ?",
                (LEASED, attempt, lease_id, owner, now + ttl_s, now, row["id"]),
            )
            conn.execute(
                "UPDATE fabric_workers SET leases_total = leases_total + 1"
                " WHERE name = ?",
                (owner,),
            )
            return Lease(
                campaign=row["campaign"],
                lease_id=lease_id,
                tenant=row["tenant"],
                spec=json.loads(row["spec"]),
                attempt=attempt,
                expires_at=now + ttl_s,
            )

        return self._store.write_transaction(txn)

    def heartbeat(
        self, campaign: str, lease_id: str, ttl_s: float = 30.0
    ) -> Dict[str, bool]:
        """Extend a live lease.  Returns ``{"ok", "cancel", "drain"}`` —
        ``ok`` is False when the lease was lost (expired and re-leased
        elsewhere), which tells the worker to abandon the campaign;
        ``drain`` is True when the worker is under a drain directive
        (finish this lease, then exit).

        The expiry sweep runs *first, inside this same transaction*: a
        heartbeat landing at or after the expiry instant observes its
        lease already returned to pending (lease_id cleared) and is
        rejected, so a late beat can neither extend a lease the sweep
        would have reclaimed nor resurrect one already re-leased — the
        two orderings of "sweep vs. heartbeat in the same window" are
        collapsed into one.
        """
        now = self._clock()

        def txn(conn):
            self._sweep_expired(conn, now)
            row = conn.execute(
                "SELECT state, lease_id, lease_owner, cancel_requested"
                " FROM fabric_tasks WHERE campaign = ?",
                (campaign,),
            ).fetchone()
            if row is None or row["state"] != LEASED or row["lease_id"] != lease_id:
                return {"ok": False, "cancel": True, "drain": False}
            drain = (
                self._touch_worker(conn, row["lease_owner"], now)
                == WORKER_DRAINING
            )
            conn.execute(
                "UPDATE fabric_tasks SET lease_expires_at = ?, updated_at = ?"
                " WHERE campaign = ?",
                (now + ttl_s, now, campaign),
            )
            return {
                "ok": True,
                "cancel": bool(row["cancel_requested"]),
                "drain": drain,
            }

        return self._store.write_transaction(txn)

    # ---------------------------------------------------------- completion

    def complete(
        self, campaign: str, lease_id: str, result: Optional[dict] = None
    ) -> str:
        """Mark a task done.  Returns ``"done"``, ``"duplicate"`` (already
        terminal — at-least-once delivery makes this normal, and the
        content-addressed store already deduped the rows), or
        ``"cancelled"``."""
        now = self._clock()
        payload = json.dumps(result or {}, sort_keys=True)

        def txn(conn):
            row = conn.execute(
                "SELECT state, lease_id FROM fabric_tasks WHERE campaign = ?",
                (campaign,),
            ).fetchone()
            if row is None:
                raise QueueError(f"unknown campaign {campaign!r}")
            if row["state"] == DONE:
                return "duplicate"
            if row["state"] == CANCELLED:
                return "cancelled"
            conn.execute(
                "UPDATE fabric_tasks SET state = ?, result = ?,"
                " lease_id = NULL, lease_owner = NULL,"
                " lease_expires_at = NULL, updated_at = ?"
                " WHERE campaign = ?",
                (DONE, payload, now, campaign),
            )
            return "done"

        return self._store.write_transaction(txn)

    def fail(
        self,
        campaign: str,
        lease_id: str,
        error: str,
        retryable: bool = True,
    ) -> str:
        """Report a failed execution.  Retryable failures under the
        attempt cap re-queue the task (``"retried"``); otherwise the task
        lands ``"failed"``.  Stale leases are acknowledged as
        ``"duplicate"`` without clobbering newer state."""
        now = self._clock()

        def txn(conn):
            row = conn.execute(
                "SELECT state, lease_id, attempts FROM fabric_tasks"
                " WHERE campaign = ?",
                (campaign,),
            ).fetchone()
            if row is None:
                raise QueueError(f"unknown campaign {campaign!r}")
            if row["state"] != LEASED or row["lease_id"] != lease_id:
                return "duplicate"
            if retryable and int(row["attempts"]) < self.max_attempts:
                conn.execute(
                    "UPDATE fabric_tasks SET state = ?, lease_id = NULL,"
                    " lease_owner = NULL, lease_expires_at = NULL,"
                    " error = ?, updated_at = ? WHERE campaign = ?",
                    (PENDING, error, now, campaign),
                )
                return "retried"
            conn.execute(
                "UPDATE fabric_tasks SET state = ?, lease_id = NULL,"
                " lease_owner = NULL, lease_expires_at = NULL,"
                " error = ?, updated_at = ? WHERE campaign = ?",
                (FAILED, error, now, campaign),
            )
            return "failed"

        return self._store.write_transaction(txn)

    def cancel(self, campaign: str) -> str:
        """Cancel a task: pending tasks flip to ``cancelled`` outright;
        leased tasks get ``cancel_requested`` set, which the worker sees
        on its next heartbeat and aborts at a trial boundary."""
        now = self._clock()

        def txn(conn):
            row = conn.execute(
                "SELECT state FROM fabric_tasks WHERE campaign = ?",
                (campaign,),
            ).fetchone()
            if row is None:
                raise QueueError(f"unknown campaign {campaign!r}")
            if row["state"] in TERMINAL:
                return row["state"]
            if row["state"] == LEASED:
                conn.execute(
                    "UPDATE fabric_tasks SET cancel_requested = 1,"
                    " updated_at = ? WHERE campaign = ?",
                    (now, campaign),
                )
                return "cancel-requested"
            conn.execute(
                "UPDATE fabric_tasks SET state = ?, lease_id = NULL,"
                " lease_owner = NULL, lease_expires_at = NULL,"
                " updated_at = ? WHERE campaign = ?",
                (CANCELLED, now, campaign),
            )
            return CANCELLED

        return self._store.write_transaction(txn)

    # ------------------------------------------------------------- queries

    def task(self, campaign: str) -> Optional[Task]:
        row = self._store.read_transaction(
            lambda conn: conn.execute(
                "SELECT * FROM fabric_tasks WHERE campaign = ?", (campaign,)
            ).fetchone()
        )
        return _row_task(row) if row is not None else None

    def depth(self) -> int:
        """Tasks waiting or running (pending + leased)."""
        return self._store.read_transaction(
            lambda conn: conn.execute(
                "SELECT COUNT(*) AS n FROM fabric_tasks WHERE state IN (?, ?)",
                (PENDING, LEASED),
            ).fetchone()["n"]
        )

    def status(self) -> dict:
        """Queue snapshot: per-state counts, per-tenant backlog and
        quota/deficit state, live leases with owner and expiry, and the
        fleet registry with per-worker heartbeat ages and lease counts."""
        now = self._clock()

        def txn(conn):
            self._sweep_expired(conn, now)
            states = {
                row["state"]: int(row["n"])
                for row in conn.execute(
                    "SELECT state, COUNT(*) AS n FROM fabric_tasks"
                    " GROUP BY state"
                )
            }
            tenants = {}
            for row in conn.execute(
                "SELECT t.name, t.weight, t.deficit, t.max_pending,"
                " t.max_active,"
                " SUM(CASE WHEN k.state = 'pending' THEN 1 ELSE 0 END)"
                "   AS pending,"
                " SUM(CASE WHEN k.state = 'leased' THEN 1 ELSE 0 END)"
                "   AS leased,"
                " SUM(CASE WHEN k.state = 'done' THEN 1 ELSE 0 END) AS done,"
                " SUM(CASE WHEN k.state = 'failed' THEN 1 ELSE 0 END)"
                "   AS failed"
                " FROM fabric_tenants t LEFT JOIN fabric_tasks k"
                " ON k.tenant = t.name GROUP BY t.name ORDER BY t.name"
            ):
                tenants[row["name"]] = {
                    "weight": int(row["weight"]),
                    "deficit": float(row["deficit"]),
                    "max_pending": row["max_pending"],
                    "max_active": row["max_active"],
                    "pending": int(row["pending"] or 0),
                    "leased": int(row["leased"] or 0),
                    "done": int(row["done"] or 0),
                    "failed": int(row["failed"] or 0),
                }
            leases = [
                {
                    "campaign": row["campaign"],
                    "tenant": row["tenant"],
                    "owner": row["lease_owner"],
                    "attempt": int(row["attempts"]),
                    "expires_in_s": round(row["lease_expires_at"] - now, 3),
                }
                for row in conn.execute(
                    "SELECT campaign, tenant, lease_owner, attempts,"
                    " lease_expires_at FROM fabric_tasks WHERE state = ?"
                    " ORDER BY id",
                    (LEASED,),
                )
            ]
            workers = []
            for row in conn.execute(
                "SELECT w.name, w.version, w.state, w.last_seen,"
                " w.leases_total,"
                " SUM(CASE WHEN k.state = ? THEN 1 ELSE 0 END) AS leases"
                " FROM fabric_workers w LEFT JOIN fabric_tasks k"
                " ON k.lease_owner = w.name WHERE w.state != ?"
                " GROUP BY w.name ORDER BY w.name",
                (LEASED, WORKER_EXITED),
            ):
                workers.append(
                    {
                        "name": row["name"],
                        "version": row["version"],
                        "state": row["state"],
                        "heartbeat_age_s": round(now - row["last_seen"], 3),
                        "leases": int(row["leases"] or 0),
                        "leases_total": int(row["leases_total"] or 0),
                    }
                )
            return {
                "depth": states.get(PENDING, 0) + states.get(LEASED, 0),
                "states": states,
                "tenants": tenants,
                "leases": leases,
                "workers": workers,
            }

        return self._store.write_transaction(txn)


__all__ = [
    "WorkQueue",
    "Task",
    "Lease",
    "QueueError",
    "QuotaExceeded",
    "PENDING",
    "LEASED",
    "DONE",
    "FAILED",
    "CANCELLED",
    "TERMINAL",
    "WORKER_ACTIVE",
    "WORKER_DRAINING",
    "WORKER_EXITED",
    "DEFAULT_MAX_ATTEMPTS",
]
