"""Result-bundle wire format for remote fabric workers.

A worker without filesystem access to the coordinator's warehouse runs
its campaign against a local scratch store, then ships everything the
campaign produced — runs, content-addressed trial payloads, measurement
rows — as one JSON bundle on the ``complete`` call.  The coordinator
replays the bundle into the shared warehouse.

Fidelity is the point: trial arrays travel as base64 raw bytes plus
dtype and shape (the same encoding the sideline spill files use), and
metric values as IEEE float64, so an ingested bundle is byte-identical
to having run the campaign against the shared store directly.  Trials
stay keyed by their content-addressed identity, so replaying a bundle
twice — or alongside another worker that computed the same trial —
dedupes instead of duplicating.
"""

from __future__ import annotations

import base64
import json
from typing import Dict, Iterable, List

import numpy as np

from repro.store.warehouse import ResultStore

#: Bundle format version, for forward compatibility on the wire.
BUNDLE_VERSION = 1


def _encode_trial(value: np.ndarray) -> dict:
    array = np.ascontiguousarray(value)
    return {
        "dtype": array.dtype.str,
        "shape": list(array.shape),
        "data": base64.b64encode(array.tobytes()).decode("ascii"),
    }


def _run_measurements(store: ResultStore, info) -> List[dict]:
    grouped: Dict[tuple, dict] = {}
    for row in store.query(run=info):
        ident = (
            row.stack,
            row.cca,
            row.variant,
            row.bandwidth_mbps,
            row.rtt_ms,
            row.buffer_bdp,
            row.condition,
        )
        slot = grouped.setdefault(
            ident,
            {
                "stack": row.stack,
                "cca": row.cca,
                "variant": row.variant,
                "bandwidth_mbps": row.bandwidth_mbps,
                "rtt_ms": row.rtt_ms,
                "buffer_bdp": row.buffer_bdp,
                "condition": row.condition,
                "metrics": {},
            },
        )
        slot["metrics"][row.metric] = row.value
    return list(grouped.values())


def export_bundle(store: ResultStore, runs: Iterable[str]) -> dict:
    """Package the named runs (trials + measurements) from ``store``."""
    run_records: List[dict] = []
    trials: Dict[str, dict] = {}
    for name in runs:
        info = store.run(name)
        keys = store.trial_keys(info)
        for key in keys:
            if key in trials:
                continue
            value = store.get_trial(key, strict=True)
            if value is None:
                continue
            trials[key] = _encode_trial(value)
        run_records.append(
            {
                "name": info.name,
                "note": info.note,
                "config": info.config or {},
                "trial_keys": keys,
                "measurements": _run_measurements(store, info),
            }
        )
    return {
        "version": BUNDLE_VERSION,
        "runs": run_records,
        "trials": trials,
    }


def export_bundles(
    store: ResultStore,
    runs: Iterable[str],
    max_trials_per_bundle: int = 256,
):
    """Stream the named runs as a sequence of bounded bundles.

    The sharded warehouse's merge path uses this to keep cross-shard
    compaction at O(bundle) memory regardless of campaign size: each
    yielded bundle carries at most ``max_trials_per_bundle`` payloads,
    the run's measurements ride only in its first bundle, and every
    bundle is independently replayable by :func:`ingest_bundle` — an
    interrupted stream re-run from the start lands idempotently.
    """
    limit = max(1, int(max_trials_per_bundle))
    for name in runs:
        info = store.run(name)
        keys = store.trial_keys(info)
        record = {
            "name": info.name,
            "note": info.note,
            "config": info.config or {},
            "measurements": _run_measurements(store, info),
        }
        # Even a run with no trials yields one bundle, so the run row
        # and its measurements always reach the destination.
        chunks = [keys[i : i + limit] for i in range(0, len(keys), limit)] or [[]]
        for chunk in chunks:
            trials: Dict[str, dict] = {}
            for key in chunk:
                value = store.get_trial(key, strict=True)
                if value is None:
                    continue
                trials[key] = _encode_trial(value)
            yield {
                "version": BUNDLE_VERSION,
                "runs": [dict(record, trial_keys=list(chunk))],
                "trials": trials,
            }
            # Measurements are idempotent upserts, but re-sending them
            # with every chunk would be pure overhead.
            record = dict(record, measurements=[])


def ingest_bundle(store: ResultStore, bundle: dict) -> Dict[str, int]:
    """Replay a bundle into ``store``; returns counters.

    Idempotent: trials are ``INSERT OR IGNORE`` by content-addressed
    key, measurements upsert by identity — a duplicate completion from a
    stale lease lands on rows that already hold identical values.
    """
    version = int(bundle.get("version", 0))
    if version != BUNDLE_VERSION:
        raise ValueError(
            f"unsupported bundle version {version} (expected {BUNDLE_VERSION})"
        )
    counters = {"runs": 0, "trials": 0, "trials_deduped": 0, "measurements": 0}
    payloads: Dict[str, np.ndarray] = {}
    for key, record in bundle.get("trials", {}).items():
        data = base64.b64decode(record["data"])
        payloads[key] = np.frombuffer(
            data, dtype=np.dtype(record["dtype"])
        ).reshape(tuple(record["shape"]))
    for record in bundle.get("runs", []):
        run = store.ensure_run(
            record["name"],
            note=record.get("note", ""),
            config=record.get("config") or {},
        )
        counters["runs"] += 1
        for key in record.get("trial_keys", []):
            value = payloads.get(key)
            if value is None:
                continue
            if store.put_trial(key, value, run=run):
                counters["trials"] += 1
            else:
                counters["trials_deduped"] += 1
                store.link_trial(run, key)
        for m in record.get("measurements", []):
            store.record_metrics_raw(
                run,
                stack=m["stack"],
                cca=m["cca"],
                variant=m.get("variant", "default"),
                bandwidth_mbps=m.get("bandwidth_mbps"),
                rtt_ms=m.get("rtt_ms"),
                buffer_bdp=m.get("buffer_bdp"),
                condition=m.get("condition", ""),
                metrics=m.get("metrics", {}),
            )
            counters["measurements"] += 1
    return counters


def encode_bundle(bundle: dict) -> str:
    """Canonical JSON text for HTTP transport."""
    return json.dumps(bundle, sort_keys=True, separators=(",", ":"))


def decode_bundle(text: str) -> dict:
    return json.loads(text)


__all__ = [
    "BUNDLE_VERSION",
    "export_bundle",
    "export_bundles",
    "ingest_bundle",
    "encode_bundle",
    "decode_bundle",
]
