"""Experiment configuration.

:class:`NetworkCondition` is the paper's network-parameter tuple
(bandwidth, RTT, buffer depth in BDP); :class:`ExperimentConfig` is the
measurement protocol (flow duration, number of trials, PE sampling).

The paper runs 120-second flows five times per condition on real
hardware.  The default configuration here is scaled to what a pure-Python
packet simulator sustains in a test/benchmark suite (100 s, 3 trials) —
long enough that each trial spans many BBR ProbeRTT cycles and CUBIC
epochs, which the Performance-Envelope methodology needs (short trials
leave run-to-run bimodality that the trial-intersection step punishes).
:func:`paper_experiment_config` restores the paper's full protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.sampling import SamplingConfig
from repro.core.envelope import EnvelopeConfig
from repro.netsim.network import LinkConfig


@dataclass(frozen=True)
class NetworkCondition:
    """One cell of the paper's network-condition matrix (§4)."""

    bandwidth_mbps: float = 20.0
    rtt_ms: float = 10.0
    buffer_bdp: float = 1.0
    label: str = ""

    def __post_init__(self):
        if self.bandwidth_mbps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.rtt_ms <= 0:
            raise ValueError("RTT must be positive")
        if self.buffer_bdp <= 0:
            raise ValueError("buffer must be positive")

    @property
    def bandwidth_bps(self) -> float:
        return self.bandwidth_mbps * 1e6

    @property
    def rtt_s(self) -> float:
        return self.rtt_ms / 1e3

    def link_config(self) -> LinkConfig:
        return LinkConfig(
            bandwidth_bps=self.bandwidth_bps,
            rtt_s=self.rtt_s,
            buffer_bdp=self.buffer_bdp,
        )

    def jitter_s(self, mss: int = 1448) -> float:
        """Phase-breaking forward jitter.

        Real testbeds decorrelate competing flows through hardware and OS
        noise; a deterministic simulator needs explicit jitter or droptail
        phase locking makes one flow absorb all the drops.  The jitter is
        capped below the packet serialization time so it cannot reorder
        packets beyond the loss-detection threshold.
        """
        serialization = mss * 8 / self.bandwidth_bps
        return min(0.25e-3, serialization / 2)

    def describe(self) -> str:
        if self.label:
            return self.label
        return (
            f"{self.bandwidth_mbps:g}mbps-{self.rtt_ms:g}ms-"
            f"{self.buffer_bdp:g}bdp"
        )

    def physical_key(self) -> tuple:
        """Identity of the *physical* condition, independent of `label`.

        Seeds and cache keys must derive from this, never from
        :meth:`describe`: two conditions with the same parameters but
        different display labels are the same experiment.
        """
        return (self.bandwidth_mbps, self.rtt_ms, self.buffer_bdp)


@dataclass(frozen=True)
class ExperimentConfig:
    """The measurement protocol around a single conformance number."""

    duration_s: float = 100.0
    trials: int = 3
    sampling: SamplingConfig = field(default_factory=SamplingConfig)
    envelope: EnvelopeConfig = field(default_factory=EnvelopeConfig)
    #: Base seed; trial i of a given experiment uses a derived seed.
    seed: int = 20231024  # the paper's first conference day

    def __post_init__(self):
        if self.duration_s <= 0:
            raise ValueError("duration must be positive")
        if self.trials < 1:
            raise ValueError("at least one trial is required")


def paper_experiment_config() -> ExperimentConfig:
    """The paper's full protocol: 120 s flows, 5 trials (§3.1, §4)."""
    return ExperimentConfig(duration_s=120.0, trials=5)


def quick_experiment_config() -> ExperimentConfig:
    """A fast protocol for unit tests and smoke runs."""
    return ExperimentConfig(duration_s=20.0, trials=2)
