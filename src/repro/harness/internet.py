"""Conformance "in the wild" (§4.2, Fig. 11).

The paper repeats the conformance experiments over the Internet: senders
on AWS instances, receivers in the lab, link speed locally limited to
100 Mbps, ping-calibrated delay padding pinning the RTT at 50 ms.

We substitute a synthetic wide-area path: the same bottleneck discipline
(the local 100 Mbps limiter is the bottleneck) with mild delay jitter,
sporadic random loss and unresponsive on/off cross traffic — the
uncontrolled variation a real WAN adds on top of a testbed.  The paper
itself found the in-the-wild numbers to track the 1-BDP testbed results,
which is the property this module's benchmark checks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.exec import Executor

from repro.core.conformance import evaluate_conformance
from repro.harness.cache import ResultCache
from repro.harness.config import ExperimentConfig, NetworkCondition
from repro.harness.conformance import ConformanceMeasurement, gather_trials
from repro.harness.runner import Impl, reference_impl
from repro.netsim.crosstraffic import CrossTrafficConfig
from repro.netsim.path import NetemConfig
from repro.stacks import registry


def internet_condition() -> NetworkCondition:
    """The §4.2 setup: 100 Mbps local limit, RTT pinned to 50 ms.

    The effective buffer at the local limiter is not published; Internet
    paths behaved like the 1-BDP testbed in the paper, so 1 BDP it is.
    """
    return NetworkCondition(
        bandwidth_mbps=100.0, rtt_ms=50.0, buffer_bdp=1.0, label="internet-aws"
    )


def wan_netem() -> NetemConfig:
    """Residual WAN impairments on top of the pinned RTT."""
    return NetemConfig(jitter_s=0.15e-3, loss_rate=2e-5)


def wan_cross_traffic() -> CrossTrafficConfig:
    """Sporadic unresponsive bursts sharing the local limiter."""
    return CrossTrafficConfig(
        rate_bps=8e6, mean_on_s=0.3, mean_off_s=3.0, packet_size=1200
    )


def measure_conformance_internet(
    stack: str,
    cca: str,
    config: ExperimentConfig = ExperimentConfig(),
    variant: str = "default",
    cache: Optional[ResultCache] = None,
    executor: Optional["Executor"] = None,
) -> ConformanceMeasurement:
    """One Fig. 11 cell: conformance over the synthetic WAN."""
    condition = internet_condition()
    impl = Impl(stack, cca, variant)
    reference = reference_impl(cca)
    if executor is not None:
        from repro.exec.jobs import measurement_trial_jobs

        executor.run(
            measurement_trial_jobs(
                stack,
                cca,
                condition,
                config,
                variant,
                cross_traffic=wan_cross_traffic(),
                wan_netem=wan_netem(),
            ),
            campaign=f"internet:{stack}/{cca}",
        )
        cache = executor.cache
    kwargs = dict(
        cache=cache,
        cross_traffic=wan_cross_traffic(),
        wan_netem=wan_netem(),
    )
    test_trials = gather_trials(impl, reference, condition, config, **kwargs)
    ref_trials = gather_trials(reference, reference, condition, config, **kwargs)
    result = evaluate_conformance(test_trials, ref_trials, config.envelope)
    return ConformanceMeasurement(impl=impl, condition=condition, result=result)


def internet_heatmap(
    config: ExperimentConfig = ExperimentConfig(),
    stacks: Optional[Sequence[str]] = None,
    ccas: Sequence[str] = registry.CCAS,
    cache: Optional[ResultCache] = None,
    executor: Optional["Executor"] = None,
) -> Dict[Tuple[str, str], ConformanceMeasurement]:
    """The full Fig. 11 heatmap over the synthetic WAN.

    With an ``executor`` every cell's trials run as one parallel
    campaign first; evaluation then replays from the shared cache.
    """
    measurements: Dict[Tuple[str, str], ConformanceMeasurement] = {}
    names = (
        list(stacks)
        if stacks is not None
        else [p.name for p in registry.quic_stacks()]
    )
    cells = [
        (name, cca)
        for name in names
        for cca in ccas
        if registry.get_stack(name).supports(cca)
    ]
    if executor is not None:
        from repro.exec.jobs import measurement_trial_jobs

        jobs = []
        for name, cca in cells:
            jobs += measurement_trial_jobs(
                name,
                cca,
                internet_condition(),
                config,
                cross_traffic=wan_cross_traffic(),
                wan_netem=wan_netem(),
            )
        executor.run(jobs, campaign="internet-heatmap")
        cache = executor.cache
    for name, cca in cells:
        measurements[(name, cca)] = measure_conformance_internet(
            name, cca, config, cache=cache
        )
    return measurements
