"""Low-level experiment runner: one 2-flow trial, sampled.

Every measurement in the paper reduces to the same primitive: run
implementation A against implementation B through a shared bottleneck for
T seconds, capture traces, and post-process.  :func:`run_pair` is that
primitive; :func:`sampled_points` adds PE sampling and caching.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.sampling import sample_points
from repro.harness.cache import DEFAULT_CACHE, ResultCache, cache_key
from repro.harness.config import ExperimentConfig, NetworkCondition
from repro.netsim.crosstraffic import CrossTrafficConfig
from repro.netsim.network import FlowResult, Network
from repro.netsim.path import NetemConfig
from repro.stacks import registry


@dataclass(frozen=True)
class Impl:
    """A (stack, cca, variant) triple naming one implementation."""

    stack: str
    cca: str
    variant: str = "default"

    def __str__(self) -> str:
        suffix = "" if self.variant == "default" else f"+{self.variant}"
        return f"{self.stack}/{self.cca}{suffix}"

    def key(self) -> Tuple[str, str, str]:
        return (self.stack, self.cca, self.variant)


@dataclass
class PairResult:
    """Both flows' outcomes for one trial."""

    first: FlowResult
    second: FlowResult
    condition: NetworkCondition
    seed: int

    @property
    def throughputs_mbps(self) -> Tuple[float, float]:
        return (
            self.first.mean_throughput_bps / 1e6,
            self.second.mean_throughput_bps / 1e6,
        )


def _trial_seed(base: int, *parts) -> int:
    """Deterministic per-trial seed derived from experiment identity."""
    digest = cache_key(base=base, parts=[str(p) for p in parts])
    return int(digest[:8], 16)


def run_pair(
    first: Impl,
    second: Impl,
    condition: NetworkCondition,
    duration_s: float,
    seed: int,
    cross_traffic: Optional[CrossTrafficConfig] = None,
    wan_netem: Optional[NetemConfig] = None,
) -> PairResult:
    """Run one trial of ``first`` vs ``second`` and return both results."""
    spec_a = registry.get_stack(first.stack).flow_spec(
        first.cca, first.variant, label=str(first)
    )
    spec_b = registry.get_stack(second.stack).flow_spec(
        second.cca, second.variant, label=str(second)
    )
    if wan_netem is not None:
        spec_a.forward_netem = wan_netem
        spec_b.forward_netem = wan_netem
    network = Network(
        condition.link_config(),
        [spec_a, spec_b],
        seed=seed,
        cross_traffic=cross_traffic,
        base_jitter_s=condition.jitter_s(),
        start_spread_s=0.5,
    )
    results = network.run(duration_s)
    return PairResult(
        first=results[0], second=results[1], condition=condition, seed=seed
    )


def trial_identity(
    test: Impl,
    competitor: Impl,
    condition: NetworkCondition,
    config: ExperimentConfig,
    trial: int,
    cross_traffic: Optional[CrossTrafficConfig] = None,
    wan_netem: Optional[NetemConfig] = None,
) -> Tuple[int, str]:
    """The (seed, cache key) pair identifying one trial.

    This is the single source of truth for trial identity: the serial
    path (:func:`sampled_points`) and the parallel job layer
    (``repro.exec``) both derive seeds and cache keys here, which is what
    makes parallel results bit-identical to serial ones.
    """
    seed = _trial_seed(config.seed, test, competitor, condition.physical_key(), trial)
    key = cache_key(
        kind="sampled_points",
        test=test.key(),
        competitor=competitor.key(),
        condition=(
            condition.bandwidth_mbps,
            condition.rtt_ms,
            condition.buffer_bdp,
        ),
        duration=config.duration_s,
        sampling=(
            config.sampling.sample_rtts,
            config.sampling.truncate_fraction,
        ),
        cross=None if cross_traffic is None else vars(cross_traffic),
        wan=None if wan_netem is None else vars(wan_netem),
        seed=seed,
    )
    return seed, key


def sampled_points(
    test: Impl,
    competitor: Impl,
    condition: NetworkCondition,
    config: ExperimentConfig,
    trial: int,
    cache: Optional[ResultCache] = None,
    cross_traffic: Optional[CrossTrafficConfig] = None,
    wan_netem: Optional[NetemConfig] = None,
) -> np.ndarray:
    """The test flow's (delay, throughput) cloud for one trial, cached."""
    cache = cache or DEFAULT_CACHE
    seed, key = trial_identity(
        test, competitor, condition, config, trial, cross_traffic, wan_netem
    )

    def compute() -> np.ndarray:
        result = run_pair(
            test,
            competitor,
            condition,
            duration_s=config.duration_s,
            seed=seed,
            cross_traffic=cross_traffic,
            wan_netem=wan_netem,
        )
        return sample_points(
            result.first.trace,
            base_rtt_s=condition.rtt_s,
            config=config.sampling,
        )

    return cache.get_or_compute(key, compute)


def reference_impl(cca: str) -> Impl:
    """The kernel implementation a QUIC CCA is measured against."""
    return Impl(registry.REFERENCE_STACK, cca)
