"""Bandwidth-share fairness analysis (§4.3, §4.4).

The paper complements conformance with a sanity check: pairwise
bandwidth shares of all implementation combinations at 20 Mbps / 50 ms /
1 BDP.  ``share > 0.5`` means the row implementation takes more than its
fair share.  §4.4 applies the same machinery across CCAs (every CUBIC vs
every BBR) in shallow and deep buffers to show low-conformance
implementations subverting the expected CUBIC/BBR dynamics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.exec import Executor

from repro.harness.cache import DEFAULT_CACHE, ResultCache, cache_key
from repro.harness.config import ExperimentConfig, NetworkCondition
from repro.harness.runner import Impl, run_pair, _trial_seed
from repro.stacks import registry


def share_cache_key(
    first: Impl,
    second: Impl,
    condition: NetworkCondition,
    config: ExperimentConfig,
) -> str:
    """Cache key of one pair's per-trial share array."""
    return cache_key(
        kind="bandwidth_share",
        first=first.key(),
        second=second.key(),
        condition=(
            condition.bandwidth_mbps,
            condition.rtt_ms,
            condition.buffer_bdp,
        ),
        duration=config.duration_s,
        trials=config.trials,
        seed=config.seed,
    )


def compute_share_array(
    first: Impl,
    second: Impl,
    condition: NetworkCondition,
    config: ExperimentConfig = ExperimentConfig(),
    cache: Optional[ResultCache] = None,
) -> np.ndarray:
    """Per-trial shares T_first / (T_first + T_second), cached.

    Module-level (picklable) so a fairness pair can run as one
    ``repro.exec`` job; the serial path and the job layer share this
    exact function, keeping parallel matrices bit-identical.
    """
    cache = cache or DEFAULT_CACHE
    key = share_cache_key(first, second, condition, config)

    def compute() -> np.ndarray:
        shares = []
        for trial in range(config.trials):
            seed = _trial_seed(
                config.seed, "fair", first, second, condition.physical_key(), trial
            )
            result = run_pair(
                first, second, condition, duration_s=config.duration_s, seed=seed
            )
            t1, t2 = result.throughputs_mbps
            total = t1 + t2
            shares.append(0.5 if total <= 0 else t1 / total)
        return np.array(shares)

    return cache.get_or_compute(key, compute)


def bandwidth_share(
    first: Impl,
    second: Impl,
    condition: NetworkCondition,
    config: ExperimentConfig = ExperimentConfig(),
    cache: Optional[ResultCache] = None,
) -> float:
    """Mean share T_first / (T_first + T_second) over the trials."""
    return float(np.mean(compute_share_array(first, second, condition, config, cache)))


@dataclass
class FairnessMatrix:
    """A labelled share matrix: entry [i][j] = share of row i vs col j."""

    rows: List[str]
    cols: List[str]
    shares: np.ndarray

    def share(self, row: str, col: str) -> float:
        return float(self.shares[self.rows.index(row), self.cols.index(col)])

    def unfair_rows(self, threshold: float = 0.6) -> List[str]:
        """Row implementations whose *median* share against the other
        implementations exceeds ``threshold`` (overly aggressive)."""
        out = []
        for i, row in enumerate(self.rows):
            others = [
                self.shares[i, j]
                for j, col in enumerate(self.cols)
                if col != row and not np.isnan(self.shares[i, j])
            ]
            if others and float(np.median(others)) > threshold:
                out.append(row)
        return out


def _impl_label(impl: Impl) -> str:
    return f"{impl.stack}-{impl.cca}"


def intra_cca_matrix(
    cca: str,
    condition: NetworkCondition,
    config: ExperimentConfig = ExperimentConfig(),
    include_reference: bool = True,
    stacks: Optional[Sequence[str]] = None,
    cache: Optional[ResultCache] = None,
    executor: Optional["Executor"] = None,
) -> FairnessMatrix:
    """Pairwise shares between all implementations of one CCA (Fig. 12).

    With an ``executor`` every pair runs as one parallel job up front;
    the matrix is then filled from the shared cache.
    """
    impls = _implementations(cca, include_reference, stacks)
    labels = [_impl_label(i) for i in impls]
    n = len(impls)
    if executor is not None:
        from repro.exec.jobs import share_job

        jobs = [
            share_job(a, impls[j], condition, config)
            for i, a in enumerate(impls)
            for j in range(i + 1, n)
        ]
        executor.run(jobs, campaign=f"fairness:{cca}@{condition.describe()}")
        cache = executor.cache
    shares = np.full((n, n), np.nan)
    for i, a in enumerate(impls):
        shares[i, i] = 0.5
        for j in range(i + 1, n):
            # One experiment yields both directions, exactly as the paper
            # computes T_x/(T_x+T_y) and T_y/(T_x+T_y) from a single run.
            share = bandwidth_share(a, impls[j], condition, config, cache=cache)
            shares[i, j] = share
            shares[j, i] = 1.0 - share
    return FairnessMatrix(rows=labels, cols=labels, shares=shares)


def inter_cca_matrix(
    row_cca: str,
    col_cca: str,
    condition: NetworkCondition,
    config: ExperimentConfig = ExperimentConfig(),
    include_reference: bool = True,
    row_stacks: Optional[Sequence[str]] = None,
    col_stacks: Optional[Sequence[str]] = None,
    cache: Optional[ResultCache] = None,
    executor: Optional["Executor"] = None,
) -> FairnessMatrix:
    """Shares of every ``row_cca`` impl vs every ``col_cca`` impl (Fig. 13)."""
    rows = _implementations(row_cca, include_reference, row_stacks)
    cols = _implementations(col_cca, include_reference, col_stacks)
    if executor is not None:
        from repro.exec.jobs import share_job

        jobs = [
            share_job(a, b, condition, config) for a in rows for b in cols
        ]
        executor.run(
            jobs,
            campaign=f"intercca:{row_cca}x{col_cca}@{condition.describe()}",
        )
        cache = executor.cache
    shares = np.full((len(rows), len(cols)), np.nan)
    for i, a in enumerate(rows):
        for j, b in enumerate(cols):
            shares[i, j] = bandwidth_share(a, b, condition, config, cache=cache)
    return FairnessMatrix(
        rows=[_impl_label(i) for i in rows],
        cols=[_impl_label(i) for i in cols],
        shares=shares,
    )


def _implementations(
    cca: str, include_reference: bool, stacks: Optional[Sequence[str]]
) -> List[Impl]:
    if stacks is not None:
        names = list(stacks)
    else:
        names = [p.name for p in registry.implementations(cca)]
        if include_reference:
            names.insert(0, registry.REFERENCE_STACK)
    return [Impl(name, cca) for name in names]
