"""Caching of sampled point clouds.

A full paper-scale sweep re-runs the same (stack, CCA, network, seed)
simulation many times — most obviously the kernel-vs-kernel reference
runs shared by every conformance measurement.  The cache stores the
*sampled PE points* (the only thing downstream analysis needs) in memory
and optionally on disk as ``.npy`` files.

Disk caching is keyed by a content hash of every parameter that affects
the result plus a schema-version salt; bump :data:`CACHE_SCHEMA_VERSION`
whenever simulator or sampling semantics change.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Callable, Dict, Optional

import numpy as np

#: Bump to invalidate disk caches after behavioural changes.
CACHE_SCHEMA_VERSION = 6

#: Environment variable overriding the disk-cache directory.
CACHE_DIR_ENV = "QUICBENCH_CACHE_DIR"


def cache_key(**params) -> str:
    """Stable content hash of keyword parameters."""
    payload = json.dumps(
        {"schema": CACHE_SCHEMA_VERSION, **params},
        sort_keys=True,
        default=str,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:32]


class ResultCache:
    """Two-level (memory, disk) cache of numpy arrays."""

    def __init__(self, directory: Optional[Path] = None, enabled: bool = True):
        self.enabled = enabled
        env_dir = os.environ.get(CACHE_DIR_ENV)
        if directory is None and env_dir:
            directory = Path(env_dir)
        self.directory = directory
        self._memory: Dict[str, np.ndarray] = {}
        self.hits = 0
        self.misses = 0

    def get_or_compute(
        self, key: str, compute: Callable[[], np.ndarray]
    ) -> np.ndarray:
        if not self.enabled:
            return compute()
        if key in self._memory:
            self.hits += 1
            return self._memory[key]
        path = self._path(key)
        if path is not None and path.exists():
            try:
                value = np.load(path)
                self._memory[key] = value
                self.hits += 1
                return value
            except (OSError, ValueError):
                path.unlink(missing_ok=True)
        self.misses += 1
        value = np.asarray(compute())
        self._memory[key] = value
        if path is not None:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(".tmp.npy")
            np.save(tmp, value)
            os.replace(tmp, path)
        return value

    def _path(self, key: str) -> Optional[Path]:
        if self.directory is None:
            return None
        return self.directory / f"{key}.npy"

    def clear_memory(self) -> None:
        self._memory.clear()


#: Process-wide default cache (memory-only unless QUICBENCH_CACHE_DIR set).
DEFAULT_CACHE = ResultCache()
