"""Caching of sampled point clouds.

A full paper-scale sweep re-runs the same (stack, CCA, network, seed)
simulation many times — most obviously the kernel-vs-kernel reference
runs shared by every conformance measurement.  The cache stores the
*sampled PE points* (the only thing downstream analysis needs) in memory
and optionally on disk as ``.npy`` files.

Disk caching is keyed by a content hash of every parameter that affects
the result plus a schema-version salt; bump :data:`CACHE_SCHEMA_VERSION`
whenever simulator or sampling semantics change.

The cache is safe to share between the worker processes of
``repro.exec``: disk writes go through a per-process unique temp file
followed by an atomic ``os.replace``, so concurrent writers of the same
key cannot clobber each other mid-write.  The in-memory tier is bounded
by an LRU entry cap so full-matrix campaigns cannot grow memory without
bound; hit/miss/eviction counters feed the executor's telemetry.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
from collections import OrderedDict
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Optional, Union

import numpy as np

from repro.faults import inject

#: Bump to invalidate disk caches after behavioural changes.
CACHE_SCHEMA_VERSION = 6

#: Environment variable overriding the disk-cache directory.
CACHE_DIR_ENV = "QUICBENCH_CACHE_DIR"

#: Environment variable overriding the in-memory LRU entry cap.
CACHE_MAX_ENTRIES_ENV = "QUICBENCH_CACHE_MAX_ENTRIES"

#: Default in-memory entry cap: a full 22-impl x 16-condition campaign at
#: the paper protocol is ~2k distinct trials, so 4096 keeps every working
#: set of interest while bounding degenerate sweeps.
DEFAULT_MAX_ENTRIES = 4096

#: Monotonic per-process counter making temp-file names unique even when
#: one process writes the same key twice (e.g. retry after a crash).
_TMP_COUNTER = itertools.count()


def cache_key(**params) -> str:
    """Stable content hash of keyword parameters."""
    payload = json.dumps(
        {"schema": CACHE_SCHEMA_VERSION, **params},
        sort_keys=True,
        default=str,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:32]


@contextmanager
def cache_dir_override(directory: Union[str, Path]):
    """Temporarily pin :data:`CACHE_DIR_ENV` to ``directory``.

    The hermeticity seam for chaos runs and tests: campaigns inside the
    block cache under ``directory`` regardless of the user's
    environment, and the previous value is restored on exit.
    """
    before = os.environ.get(CACHE_DIR_ENV)
    os.environ[CACHE_DIR_ENV] = str(directory)
    try:
        yield
    finally:
        if before is None:
            os.environ.pop(CACHE_DIR_ENV, None)
        else:
            os.environ[CACHE_DIR_ENV] = before


def _tmp_path(path: Path) -> Path:
    """A collision-free sibling temp name for an atomic write of ``path``.

    The name embeds the PID and a per-process counter: two worker
    processes (or two attempts in one process) computing the same key
    write distinct temp files before the atomic ``os.replace``.
    """
    return path.with_name(f"{path.stem}.{os.getpid()}-{next(_TMP_COUNTER)}.tmp.npy")


class ResultCache:
    """Two-level (memory, disk) cache of numpy arrays.

    The memory tier is a bounded LRU (``max_entries``); the disk tier is
    unbounded and shared between processes.  ``QUICBENCH_CACHE_DIR`` is
    resolved *lazily* at lookup time, so setting the environment variable
    after ``import repro`` takes effect on the process-wide default cache.
    """

    def __init__(
        self,
        directory: Optional[Union[str, Path]] = None,
        enabled: bool = True,
        max_entries: Optional[int] = None,
    ):
        self.enabled = enabled
        self._explicit_directory = Path(directory) if directory is not None else None
        if max_entries is None:
            max_entries = int(
                os.environ.get(CACHE_MAX_ENTRIES_ENV, DEFAULT_MAX_ENTRIES)
            )
        #: LRU entry cap for the memory tier; ``0`` or negative = unbounded.
        self.max_entries = max_entries
        self._memory: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Disk-tier I/O failures absorbed (cache degrades to memory-only).
        self.disk_errors = 0

    @property
    def directory(self) -> Optional[Path]:
        """Disk-cache directory; env var resolved at access time."""
        if self._explicit_directory is not None:
            return self._explicit_directory
        env_dir = os.environ.get(CACHE_DIR_ENV)
        return Path(env_dir) if env_dir else None

    @directory.setter
    def directory(self, value: Optional[Union[str, Path]]) -> None:
        self._explicit_directory = Path(value) if value is not None else None

    def get(self, key: str) -> Optional[np.ndarray]:
        """Look ``key`` up in memory then disk; counts one hit or miss."""
        if not self.enabled:
            return None
        if key in self._memory:
            self._memory.move_to_end(key)
            self.hits += 1
            return self._memory[key]
        path = self._path(key)
        if path is not None and path.exists():
            try:
                inject.fault_point("cache.load", key=key)
                value = np.load(path)
            except (OSError, ValueError):
                self.disk_errors += 1
                try:
                    path.unlink(missing_ok=True)
                except OSError:
                    pass  # unreadable *and* undeletable: recompute anyway
            else:
                self._remember(key, value)
                self.hits += 1
                return value
        self.misses += 1
        return None

    def put(self, key: str, value: np.ndarray) -> np.ndarray:
        """Insert a computed value into both tiers (atomic disk write)."""
        value = np.asarray(value)
        if not self.enabled:
            return value
        self._remember(key, value)
        path = self._path(key)
        if path is not None and not path.exists():
            # Disk-tier writes are best-effort: a full or failing disk
            # costs future cross-process reuse, never the computed value.
            try:
                inject.fault_point("cache.write", key=key)
                path.parent.mkdir(parents=True, exist_ok=True)
                tmp = _tmp_path(path)
                try:
                    np.save(tmp, value)
                    os.replace(tmp, path)
                finally:
                    tmp.unlink(missing_ok=True)
            except OSError:
                self.disk_errors += 1
        return value

    def get_or_compute(
        self, key: str, compute: Callable[[], np.ndarray]
    ) -> np.ndarray:
        if not self.enabled:
            return compute()
        value = self.get(key)
        if value is not None:
            return value
        return self.put(key, np.asarray(compute()))

    def _remember(self, key: str, value: np.ndarray) -> None:
        self._memory[key] = value
        self._memory.move_to_end(key)
        if self.max_entries > 0:
            while len(self._memory) > self.max_entries:
                self._memory.popitem(last=False)
                self.evictions += 1

    def _path(self, key: str) -> Optional[Path]:
        directory = self.directory
        if directory is None:
            return None
        return directory / f"{key}.npy"

    def clear_memory(self) -> None:
        self._memory.clear()

    def counters(self) -> dict:
        """Snapshot of the cache counters (for run telemetry)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "disk_errors": self.disk_errors,
            "entries": len(self._memory),
        }


#: Process-wide default cache (memory-only unless QUICBENCH_CACHE_DIR set).
DEFAULT_CACHE = ResultCache()
