"""Full-matrix experiment driver: the complete §4 protocol.

The paper evaluates every implementation under all 16 combinations of
RTT x bandwidth x buffer depth.  This module sweeps any set of
implementations over any set of conditions, collects the full metric set
per cell, and exports the dataset as CSV — the raw material for every
aggregate view in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.exec import Executor
    from repro.store.warehouse import ResultStore

from repro.harness import scenarios
from repro.harness.cache import ResultCache
from repro.harness.config import ExperimentConfig, NetworkCondition
from repro.harness.conformance import ConformanceMeasurement, measure_conformance
from repro.harness.reporting import to_csv
from repro.stacks import registry

CSV_HEADERS = [
    "stack",
    "cca",
    "variant",
    "bandwidth_mbps",
    "rtt_ms",
    "buffer_bdp",
    "conformance",
    "conformance_t",
    "conformance_legacy",
    "delta_tput_mbps",
    "delta_delay_ms",
    "k_test",
    "k_ref",
]


@dataclass
class MatrixResult:
    """All measurements of one sweep, with export helpers."""

    measurements: List[ConformanceMeasurement]

    def rows(self) -> List[List]:
        out = []
        for m in self.measurements:
            r = m.result
            out.append(
                [
                    m.impl.stack,
                    m.impl.cca,
                    m.impl.variant,
                    m.condition.bandwidth_mbps,
                    m.condition.rtt_ms,
                    m.condition.buffer_bdp,
                    round(r.conformance, 4),
                    round(r.conformance_t, 4),
                    round(r.conformance_legacy, 4),
                    round(r.delta_throughput_mbps, 3),
                    round(r.delta_delay_ms, 3),
                    r.test_envelope.k,
                    r.reference_envelope.k,
                ]
            )
        return out

    def csv(self) -> str:
        return to_csv(CSV_HEADERS, self.rows())

    def save_csv(self, path: str) -> None:
        with open(path, "w") as f:
            f.write(self.csv())

    def cell(
        self, stack: str, cca: str, condition: NetworkCondition
    ) -> Optional[ConformanceMeasurement]:
        for m in self.measurements:
            if (
                m.impl.stack == stack
                and m.impl.cca == cca
                and m.condition.physical_key() == condition.physical_key()
            ):
                return m
        return None

    def worst_cells(self, count: int = 10) -> List[ConformanceMeasurement]:
        return sorted(self.measurements, key=lambda m: m.conformance)[:count]

    def save_store(self, store: "ResultStore", run: str = "matrix") -> int:
        """Record every measurement into a results warehouse run."""
        run_info = store.ensure_run(run)
        for measurement in self.measurements:
            store.record_measurement(run_info, measurement)
        return len(self.measurements)


def run_matrix(
    conditions: Optional[Sequence[NetworkCondition]] = None,
    implementations: Optional[Sequence[Tuple[str, str]]] = None,
    config: ExperimentConfig = ExperimentConfig(),
    cache: Optional[ResultCache] = None,
    progress: Optional[Callable[[str], None]] = None,
    executor: Optional["Executor"] = None,
    store: Optional["ResultStore"] = None,
    store_run: str = "matrix",
) -> MatrixResult:
    """Measure every implementation at every condition.

    Defaults to the paper's 16-condition matrix over all 22
    implementations — at the bench protocol that is several hours of
    simulation, so pass a narrowed set (or a persistent cache, or the
    ``quick_experiment_config``) for interactive use.  An ``executor``
    runs every trial of the sweep as one parallel campaign first; the
    cells are then evaluated from the shared cache, with results
    numerically identical to the serial sweep.  A ``store`` records the
    finished dataset into the results warehouse under ``store_run``.
    """
    if conditions is None:
        conditions = scenarios.full_matrix()
    if implementations is None:
        implementations = [
            (profile.name, cca) for profile, cca in registry.iter_implementations()
        ]
    if executor is not None:
        from repro.exec.jobs import measurement_trial_jobs

        jobs = []
        for condition in conditions:
            for stack, cca in implementations:
                jobs += measurement_trial_jobs(stack, cca, condition, config)
        executor.run(jobs, campaign="matrix")
        cache = executor.cache
    measurements: List[ConformanceMeasurement] = []
    for condition in conditions:
        for stack, cca in implementations:
            if progress is not None:
                progress(f"{stack}/{cca} @ {condition.describe()}")
            measurements.append(
                measure_conformance(stack, cca, condition, config, cache=cache)
            )
    result = MatrixResult(measurements=measurements)
    if store is not None:
        result.save_store(store, run=store_run)
    return result
