"""The paper's network-condition matrix (§4).

All evaluations vary: RTT ∈ {10, 50} ms, bottleneck bandwidth ∈ {20,
100} Mbps, buffer ∈ {0.5, 1, 3, 5} BDP.  The representative conditions
used for the headline results are also named individually.
"""

from __future__ import annotations

from typing import List

from repro.harness.config import NetworkCondition

RTTS_MS = (10.0, 50.0)
BANDWIDTHS_MBPS = (20.0, 100.0)
BUFFER_BDPS = (0.5, 1.0, 3.0, 5.0)


def full_matrix() -> List[NetworkCondition]:
    """All 16 combinations evaluated in §4."""
    return [
        NetworkCondition(bandwidth_mbps=bw, rtt_ms=rtt, buffer_bdp=buf)
        for bw in BANDWIDTHS_MBPS
        for rtt in RTTS_MS
        for buf in BUFFER_BDPS
    ]


def buffer_sweep(
    bandwidth_mbps: float = 20.0, rtt_ms: float = 10.0
) -> List[NetworkCondition]:
    """The buffer axis at one (bw, rtt) — the axis Figs. 7-10 vary."""
    return [
        NetworkCondition(bandwidth_mbps=bandwidth_mbps, rtt_ms=rtt_ms, buffer_bdp=buf)
        for buf in BUFFER_BDPS
    ]


def shallow_buffer() -> NetworkCondition:
    """Fig. 6b / Table 3: 1 BDP, 10 ms RTT, 20 Mbps."""
    return NetworkCondition(
        bandwidth_mbps=20.0, rtt_ms=10.0, buffer_bdp=1.0, label="shallow-1bdp"
    )


def deep_buffer() -> NetworkCondition:
    """Fig. 6a: 5 BDP, 10 ms RTT, 20 Mbps."""
    return NetworkCondition(
        bandwidth_mbps=20.0, rtt_ms=10.0, buffer_bdp=5.0, label="deep-5bdp"
    )


def fairness_condition() -> NetworkCondition:
    """§4.3 / Fig. 12: 20 Mbps, 50 ms RTT, 1 BDP."""
    return NetworkCondition(
        bandwidth_mbps=20.0, rtt_ms=50.0, buffer_bdp=1.0, label="fairness"
    )


def inter_cca_shallow() -> NetworkCondition:
    """Fig. 13a: CUBIC vs BBR in a shallow (1 BDP) buffer."""
    return NetworkCondition(
        bandwidth_mbps=20.0, rtt_ms=50.0, buffer_bdp=1.0, label="intercca-shallow"
    )


def inter_cca_deep() -> NetworkCondition:
    """Fig. 13b: CUBIC vs BBR in a deep (5 BDP) buffer."""
    return NetworkCondition(
        bandwidth_mbps=20.0, rtt_ms=50.0, buffer_bdp=5.0, label="intercca-deep"
    )
