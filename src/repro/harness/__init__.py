"""The measurement harness (the reproduction's "QUICBench").

Orchestrates simulator runs into the paper's experiments: conformance
measurements against the kernel reference (§4.1), the in-the-wild
variant (§4.2), pairwise fairness matrices (§4.3) and the CUBIC/BBR
interaction matrices (§4.4).
"""

from repro.harness.config import (
    ExperimentConfig,
    NetworkCondition,
    paper_experiment_config,
)
from repro.harness.cache import ResultCache, cache_key
from repro.harness.runner import run_pair, sampled_points, PairResult
from repro.harness.conformance import (
    ConformanceMeasurement,
    measure_conformance,
    conformance_heatmap,
)
from repro.harness.fairness import (
    bandwidth_share,
    intra_cca_matrix,
    inter_cca_matrix,
    FairnessMatrix,
)
from repro.harness.internet import (
    internet_condition,
    internet_heatmap,
    measure_conformance_internet,
)
from repro.harness.shortflows import (
    CompletionResult,
    fct_sweep,
    flow_completion_time,
    staggered_fairness,
)
from repro.harness.matrix import MatrixResult, run_matrix
from repro.harness import regression, reporting, scenarios

__all__ = [
    "ExperimentConfig",
    "NetworkCondition",
    "paper_experiment_config",
    "ResultCache",
    "cache_key",
    "run_pair",
    "sampled_points",
    "PairResult",
    "ConformanceMeasurement",
    "measure_conformance",
    "conformance_heatmap",
    "bandwidth_share",
    "intra_cca_matrix",
    "inter_cca_matrix",
    "FairnessMatrix",
    "internet_condition",
    "internet_heatmap",
    "measure_conformance_internet",
    "CompletionResult",
    "fct_sweep",
    "flow_completion_time",
    "staggered_fairness",
    "MatrixResult",
    "run_matrix",
    "regression",
    "reporting",
    "scenarios",
]
