"""Short-flow / flow-completion-time experiments.

§6 ("Refining bandwidth-share analysis") asks for different start times,
flow durations and application-level metrics beyond steady-state shares.
This module provides both:

* :func:`flow_completion_time` — how long a finite transfer (e.g. a web
  object) takes for a given implementation, optionally competing with a
  long-running background flow;
* :func:`staggered_fairness` — the share a late-starting flow converges
  to against an established one, the classic late-comer fairness probe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.harness.cache import DEFAULT_CACHE, ResultCache, cache_key
from repro.harness.config import ExperimentConfig, NetworkCondition
from repro.harness.runner import Impl, _trial_seed
from repro.netsim.network import Network
from repro.stacks import registry


@dataclass
class CompletionResult:
    """Outcome of one finite transfer."""

    impl: Impl
    transfer_bytes: int
    #: Seconds from flow start to the last byte acked; None = incomplete
    #: within the simulation horizon.
    fct_s: Optional[float]
    competing: Optional[Impl]

    @property
    def completed(self) -> bool:
        return self.fct_s is not None

    def goodput_mbps(self) -> Optional[float]:
        if self.fct_s is None or self.fct_s <= 0:
            return None
        return self.transfer_bytes * 8 / self.fct_s / 1e6


def flow_completion_time(
    impl: Impl,
    transfer_bytes: int,
    condition: NetworkCondition,
    competing: Optional[Impl] = None,
    seed: int = 1,
    horizon_s: float = 60.0,
) -> CompletionResult:
    """FCT of one finite transfer, optionally against a background flow.

    The background flow (when given) starts first and runs for the whole
    horizon; the finite flow starts once the background flow has had two
    seconds to reach steady state, as a web request arriving at a busy
    bottleneck would.
    """
    if transfer_bytes <= 0:
        raise ValueError("transfer size must be positive")
    specs = []
    start = 0.0
    if competing is not None:
        specs.append(
            registry.get_stack(competing.stack).flow_spec(
                competing.cca, competing.variant, label="background"
            )
        )
        start = 2.0
    spec = registry.get_stack(impl.stack).flow_spec(
        impl.cca, impl.variant, label="transfer", start_time=start
    )
    spec.sender_config.total_bytes = transfer_bytes
    specs.append(spec)
    network = Network(
        condition.link_config(),
        specs,
        seed=seed,
        base_jitter_s=condition.jitter_s(),
    )
    network.run(horizon_s)
    sender = network.senders[-1]
    fct = None
    if sender.completion_time is not None and sender._start_time is not None:
        fct = sender.completion_time - sender._start_time
    return CompletionResult(
        impl=impl,
        transfer_bytes=transfer_bytes,
        fct_s=fct,
        competing=competing,
    )


def staggered_fairness(
    first: Impl,
    late: Impl,
    condition: NetworkCondition,
    config: ExperimentConfig = ExperimentConfig(),
    stagger_s: float = 5.0,
    cache: Optional[ResultCache] = None,
) -> float:
    """Share the late flow obtains over the overlap period, averaged over
    trials.  0.5 = the late-comer converges to a fair share."""
    cache = cache or DEFAULT_CACHE
    key = cache_key(
        kind="staggered",
        first=first.key(),
        late=late.key(),
        condition=(condition.bandwidth_mbps, condition.rtt_ms, condition.buffer_bdp),
        duration=config.duration_s,
        trials=config.trials,
        stagger=stagger_s,
        seed=config.seed,
    )

    def compute() -> np.ndarray:
        shares = []
        for trial in range(config.trials):
            seed = _trial_seed(config.seed, "stagger", first, late, condition.physical_key(), trial)
            spec_a = registry.get_stack(first.stack).flow_spec(
                first.cca, first.variant, label="first"
            )
            spec_b = registry.get_stack(late.stack).flow_spec(
                late.cca, late.variant, label="late", start_time=stagger_s
            )
            network = Network(
                condition.link_config(),
                [spec_a, spec_b],
                seed=seed,
                base_jitter_s=condition.jitter_s(),
            )
            results = network.run(config.duration_s)
            # Shares over the overlap period only.
            overlap_bytes = [
                sum(
                    r.payload_bytes
                    for r in res.trace.records
                    if r.arrival_time >= stagger_s
                )
                for res in results
            ]
            total = sum(overlap_bytes)
            shares.append(0.5 if total == 0 else overlap_bytes[1] / total)
        return np.array(shares)

    return float(np.mean(cache.get_or_compute(key, compute)))


def fct_sweep(
    impl: Impl,
    sizes: List[int],
    condition: NetworkCondition,
    competing: Optional[Impl] = None,
    seed: int = 1,
) -> List[CompletionResult]:
    """FCT across transfer sizes (short flows to multi-megabyte objects)."""
    return [
        flow_completion_time(
            impl, size, condition, competing=competing, seed=seed + i
        )
        for i, size in enumerate(sizes)
    ]
