"""Conformance measurements (§4.1): the harness's main entry point.

``measure_conformance(stack, cca, condition)`` reproduces one cell of the
paper's heatmaps: the QUIC implementation runs against the kernel
reference, the reference runs against itself, and the two Performance
Envelopes are compared with the full metric set (Conformance,
Conformance-T, Conf-old, Δ-throughput, Δ-delay).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.exec import Executor
    from repro.store.warehouse import ResultStore

from repro.core.conformance import ConformanceResult, evaluate_conformance
from repro.harness.cache import ResultCache
from repro.harness.config import ExperimentConfig, NetworkCondition
from repro.harness.runner import Impl, reference_impl, sampled_points
from repro.netsim.crosstraffic import CrossTrafficConfig
from repro.netsim.path import NetemConfig
from repro.stacks import registry


@dataclass
class ConformanceMeasurement:
    """One (implementation, network condition) conformance record."""

    impl: Impl
    condition: NetworkCondition
    result: ConformanceResult

    @property
    def conformance(self) -> float:
        return self.result.conformance

    @property
    def conformance_t(self) -> float:
        return self.result.conformance_t

    def row(self) -> dict:
        return {
            "stack": self.impl.stack,
            "cca": self.impl.cca,
            "variant": self.impl.variant,
            "condition": self.condition.describe(),
            **self.result.summary_row(),
        }


def gather_trials(
    test: Impl,
    competitor: Impl,
    condition: NetworkCondition,
    config: ExperimentConfig,
    cache: Optional[ResultCache] = None,
    cross_traffic: Optional[CrossTrafficConfig] = None,
    wan_netem: Optional[NetemConfig] = None,
    executor: Optional["Executor"] = None,
) -> List[np.ndarray]:
    """Sampled point clouds of the test flow, one per trial.

    With an ``executor`` the trials are submitted as parallel jobs; the
    seeds and cache keys are identical to the serial path, so the arrays
    are bit-identical either way.
    """
    if executor is not None:
        from repro.exec.jobs import pair_trial_jobs

        return executor.run(
            pair_trial_jobs(
                test, competitor, condition, config, cross_traffic, wan_netem
            ),
            campaign=f"trials:{test}-vs-{competitor}@{condition.describe()}",
        )
    return [
        sampled_points(
            test,
            competitor,
            condition,
            config,
            trial,
            cache=cache,
            cross_traffic=cross_traffic,
            wan_netem=wan_netem,
        )
        for trial in range(config.trials)
    ]


def reference_trials(
    cca: str,
    condition: NetworkCondition,
    config: ExperimentConfig,
    cache: Optional[ResultCache] = None,
    cross_traffic: Optional[CrossTrafficConfig] = None,
    wan_netem: Optional[NetemConfig] = None,
    executor: Optional["Executor"] = None,
) -> List[np.ndarray]:
    """Kernel-vs-kernel trials defining the reference PE for a CCA."""
    ref = reference_impl(cca)
    return gather_trials(
        ref,
        ref,
        condition,
        config,
        cache=cache,
        cross_traffic=cross_traffic,
        wan_netem=wan_netem,
        executor=executor,
    )


def measure_conformance(
    stack: str,
    cca: str,
    condition: NetworkCondition,
    config: ExperimentConfig = ExperimentConfig(),
    variant: str = "default",
    cache: Optional[ResultCache] = None,
    reference_variant: str = "default",
    executor: Optional["Executor"] = None,
    store: Optional["ResultStore"] = None,
    store_run: Optional[str] = None,
) -> ConformanceMeasurement:
    """Full conformance measurement for one implementation.

    ``reference_variant`` selects a non-default kernel reference, e.g.
    ``"nohystart"`` for the paper's Table 4 comparison of xquic CUBIC
    against TCP CUBIC with HyStart disabled.

    With an ``executor``, the test and reference trials of the cell are
    first run as one parallel campaign (into the executor's cache); the
    evaluation then replays them from cache, so the measurement is
    numerically identical to the serial one.

    With a ``store`` the finished measurement is recorded (at full
    precision) into the results warehouse under the run named
    ``store_run`` (default ``"conformance"``), ready for later
    ``repro.store`` queries and diffs.
    """
    if executor is not None:
        from repro.exec.jobs import measurement_trial_jobs

        executor.run(
            measurement_trial_jobs(
                stack, cca, condition, config, variant, reference_variant
            ),
            campaign=f"conformance:{stack}/{cca}@{condition.describe()}",
        )
        cache = executor.cache
    impl = Impl(stack, cca, variant)
    reference = Impl(registry.REFERENCE_STACK, cca, reference_variant)
    test_trials = gather_trials(impl, reference, condition, config, cache=cache)
    ref_trials = gather_trials(reference, reference, condition, config, cache=cache)
    result = evaluate_conformance(test_trials, ref_trials, config.envelope)
    measurement = ConformanceMeasurement(
        impl=impl, condition=condition, result=result
    )
    if store is not None:
        store.record_measurement(
            store.ensure_run(store_run or "conformance"), measurement
        )
    return measurement


def conformance_heatmap(
    condition: NetworkCondition,
    config: ExperimentConfig = ExperimentConfig(),
    ccas: Sequence[str] = registry.CCAS,
    stacks: Optional[Sequence[str]] = None,
    cache: Optional[ResultCache] = None,
    executor: Optional["Executor"] = None,
    store: Optional["ResultStore"] = None,
    store_run: Optional[str] = None,
) -> Dict[Tuple[str, str], ConformanceMeasurement]:
    """One full heatmap (paper Fig. 6): every stack x CCA at a condition.

    With an ``executor``, every trial of every cell is submitted as one
    parallel campaign up front; the cells are then evaluated from the
    shared cache.  Results are numerically identical to the serial run.

    With a ``store`` every cell is recorded into the warehouse under one
    run (default ``heatmap:<condition>``), so the heatmap can later be
    re-rendered, queried, or diffed without recomputation.
    """
    measurements: Dict[Tuple[str, str], ConformanceMeasurement] = {}
    stack_names = (
        list(stacks)
        if stacks is not None
        else [p.name for p in registry.quic_stacks()]
    )
    cells = [
        (stack_name, cca)
        for stack_name in stack_names
        for cca in ccas
        if registry.get_stack(stack_name).supports(cca)
    ]
    if executor is not None:
        from repro.exec.jobs import measurement_trial_jobs

        jobs = []
        for stack_name, cca in cells:
            jobs += measurement_trial_jobs(stack_name, cca, condition, config)
        executor.run(jobs, campaign=f"heatmap:{condition.describe()}")
        cache = executor.cache
    run_name = store_run or f"heatmap:{condition.describe()}"
    for stack_name, cca in cells:
        measurements[(stack_name, cca)] = measure_conformance(
            stack_name, cca, condition, config, cache=cache,
            store=store, store_run=run_name,
        )
    return measurements
