"""Plain-text rendering of the paper's tables and heatmaps.

Everything the benchmark harness prints goes through these helpers so
that table/figure reproductions share one consistent look: aligned
columns, shaded unicode heatmaps, and CSV export for downstream tooling.
"""

from __future__ import annotations

import csv
import io
from typing import TYPE_CHECKING, Mapping, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.store.diff import RunDiff
    from repro.store.warehouse import MetricRow

#: Unicode shade ramp for heat cells (low -> high).
_SHADES = " ░▒▓█"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: Optional[str] = None,
) -> str:
    """Fixed-width table with right-aligned numeric columns."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in str_rows)) if str_rows else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(
            "  ".join(
                cell.rjust(w) if _numeric(cell) else cell.ljust(w)
                for cell, w in zip(row, widths)
            )
        )
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def _numeric(cell: str) -> bool:
    try:
        float(cell.replace("+", ""))
        return True
    except ValueError:
        return False


def format_heatmap(
    rows: Sequence[str],
    cols: Sequence[str],
    values: np.ndarray,
    title: Optional[str] = None,
    vmin: float = 0.0,
    vmax: float = 1.0,
    fmt: str = "{:.2f}",
) -> str:
    """Numeric heatmap with a unicode shade per cell (NaN renders as '.')."""
    values = np.asarray(values, dtype=float)
    cell_width = max(
        max((len(c) for c in cols), default=4), len(fmt.format(vmax)) + 2
    )
    row_width = max((len(r) for r in rows), default=4)
    lines = []
    if title:
        lines.append(title)
    header = " " * (row_width + 2) + " ".join(c.rjust(cell_width) for c in cols)
    lines.append(header)
    span = max(vmax - vmin, 1e-9)
    for i, row in enumerate(rows):
        cells = []
        for j in range(len(cols)):
            v = values[i, j]
            if np.isnan(v):
                cells.append(".".rjust(cell_width))
                continue
            level = int(np.clip((v - vmin) / span, 0, 1) * (len(_SHADES) - 1))
            cells.append((fmt.format(v) + _SHADES[level]).rjust(cell_width))
        lines.append(row.ljust(row_width + 2) + " ".join(cells))
    return "\n".join(lines)


def format_conformance_bars(
    items: Mapping[Tuple[str, str], float],
    title: Optional[str] = None,
    low_threshold: float = 0.5,
    width: int = 40,
) -> str:
    """Fig.-6-style bar list, sorted ascending, low-conformance flagged."""
    lines = []
    if title:
        lines.append(title)
    entries = sorted(items.items(), key=lambda kv: kv[1])
    label_width = max((len(f"{s}/{c}") for (s, c) in items), default=8)
    for (stack, cca), value in entries:
        bar = "#" * int(round(np.clip(value, 0, 1) * width))
        flag = "  << low conformance" if value < low_threshold else ""
        lines.append(
            f"{(stack + '/' + cca).ljust(label_width)}  {value:5.2f} |{bar.ljust(width)}|{flag}"
        )
    return "\n".join(lines)


def to_csv(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Rows as a CSV string (header first), for downstream tooling."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(headers)
    writer.writerows(rows)
    return buffer.getvalue()


def format_metric_rows(
    rows: Sequence["MetricRow"], title: Optional[str] = None
) -> str:
    """Warehouse query results as an aligned table (full precision)."""
    return format_table(
        ["run", "subject", "condition", "metric", "value"],
        [
            [r.run, r.subject(), r.condition or "-", r.metric,
             "-" if r.value is None else f"{r.value:.6g}"]
            for r in rows
        ],
        title=title,
    )


def format_run_diff(diff: "RunDiff") -> str:
    """Human-readable release-over-release diff of two stored runs.

    Verdict flips lead (they are the §6 signal), followed by metric
    moves sorted by magnitude, then coverage changes.
    """
    lines = [
        f"store diff: {diff.run_a} -> {diff.run_b} "
        f"({diff.metric}, verdict threshold {diff.threshold:g})",
        f"  compared {diff.compared} subjects: "
        f"{len(diff.flips)} verdict flips, {len(diff.changed)} value changes, "
        f"+{len(diff.added)} new, -{len(diff.removed)} gone",
    ]
    for flip in diff.flips:
        before = "conformant" if flip.before_verdict else "non-conformant"
        after = "conformant" if flip.after_verdict else "non-conformant"
        lines.append(
            f"  FLIP {flip.label()}: {before} ({flip.before:.3f}) -> "
            f"{after} ({flip.after:.3f})"
        )
    for change in sorted(diff.changed, key=lambda c: -abs(c.delta)):
        lines.append(
            f"  move {change.label()}: {change.before:.3f} -> "
            f"{change.after:.3f} ({change.delta:+.3f})"
        )
    def subject_label(subject) -> str:
        stack, cca, variant, condition = subject
        label = f"{stack}/{cca}" + ("" if variant == "default" else f"+{variant}")
        return label + (f" @ {condition}" if condition else "")

    for subject in diff.added:
        lines.append("  new  " + subject_label(subject))
    for subject in diff.removed:
        lines.append("  gone " + subject_label(subject))
    if diff.clean:
        lines.append("  no differences")
    return "\n".join(lines)


def format_envelope_ascii(
    hulls: Sequence[np.ndarray],
    points: np.ndarray,
    width: int = 60,
    height: int = 18,
    title: Optional[str] = None,
) -> str:
    """ASCII scatter of a PE: points as '.', hull vertices as 'o'.

    A rough textual stand-in for the paper's delay-throughput scatter
    plots (Figs. 1-3, 7-10), good enough to eyeball cluster structure.
    """
    pts = np.asarray(points, dtype=float)
    if pts.size == 0:
        return "(empty envelope)"
    all_xy = [pts] + [h for h in hulls if len(h)]
    stacked = np.vstack(all_xy)
    lo = stacked.min(axis=0)
    hi = stacked.max(axis=0)
    span = np.where(hi - lo < 1e-9, 1.0, hi - lo)

    grid = [[" "] * width for _ in range(height)]

    def plot(xy: np.ndarray, char: str) -> None:
        for x, y in xy:
            col = int((x - lo[0]) / span[0] * (width - 1))
            row = int((y - lo[1]) / span[1] * (height - 1))
            grid[height - 1 - row][col] = char

    plot(pts, ".")
    for hull in hulls:
        if len(hull):
            plot(hull, "o")

    lines = []
    if title:
        lines.append(title)
    lines.append(f"throughput {lo[1]:.1f}..{hi[1]:.1f} Mbps (y), delay {lo[0]:.1f}..{hi[0]:.1f} ms (x)")
    lines.extend("|" + "".join(row) + "|" for row in grid)
    return "\n".join(lines)
