"""Kernel-regression testing: "Keeping up with the kernel" (§6).

The kernel reference is itself a moving target: HyStart landed, RFC8312bis
is scheduled, algorithms get retuned.  The paper recommends re-running
conformance tests "every time a new milestone kernel version with
significant changes to the TCP stack is released".

This module implements that workflow: a :class:`KernelMilestone` describes
a reference variant (e.g. CUBIC without HyStart for pre-2.6.29 kernels, or
CUBIC *with* the RFC8312bis undo for the scheduled future kernel), and
:func:`regression_matrix` measures every QUIC implementation against each
milestone, flagging implementations whose conformance verdict flips.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.harness.cache import ResultCache
from repro.harness.config import ExperimentConfig, NetworkCondition
from repro.harness.conformance import measure_conformance
from repro.harness import scenarios
from repro.stacks import registry


@dataclass(frozen=True)
class KernelMilestone:
    """One kernel reference flavour to regress against."""

    name: str
    #: CCA -> kernel variant name to use as the reference implementation.
    reference_variants: Dict[str, str] = field(default_factory=dict)
    note: str = ""

    def variant_for(self, cca: str) -> str:
        return self.reference_variants.get(cca, "default")


#: The milestones the paper's narrative mentions.
MILESTONES: List[KernelMilestone] = [
    KernelMilestone(
        name="5.13-stock",
        note="the paper's reference kernel (HyStart on, no RFC8312bis undo)",
    ),
    KernelMilestone(
        name="pre-hystart",
        reference_variants={"cubic": "nohystart"},
        note="CUBIC before HyStart (the mechanism xquic is missing)",
    ),
]


@dataclass
class RegressionRow:
    """One implementation's conformance across kernel milestones."""

    stack: str
    cca: str
    #: milestone name -> conformance.
    conformance: Dict[str, float]

    def verdicts(self, threshold: float = 0.5) -> Dict[str, bool]:
        return {k: v >= threshold for k, v in self.conformance.items()}

    @property
    def verdict_flips(self) -> bool:
        verdicts = set(self.verdicts().values())
        return len(verdicts) > 1


def regression_matrix(
    milestones: Sequence[KernelMilestone] = tuple(MILESTONES),
    implementations: Optional[Sequence[Tuple[str, str]]] = None,
    condition: Optional[NetworkCondition] = None,
    config: ExperimentConfig = ExperimentConfig(),
    cache: Optional[ResultCache] = None,
) -> List[RegressionRow]:
    """Conformance of each implementation against each kernel milestone."""
    condition = condition or scenarios.shallow_buffer()
    if implementations is None:
        implementations = [
            (profile.name, cca) for profile, cca in registry.iter_implementations()
        ]
    rows: List[RegressionRow] = []
    for stack, cca in implementations:
        values: Dict[str, float] = {}
        for milestone in milestones:
            measurement = measure_conformance(
                stack,
                cca,
                condition,
                config,
                cache=cache,
                reference_variant=milestone.variant_for(cca),
            )
            values[milestone.name] = measurement.conformance
        rows.append(RegressionRow(stack=stack, cca=cca, conformance=values))
    return rows


def flipped_verdicts(rows: Sequence[RegressionRow]) -> List[RegressionRow]:
    """Implementations whose conformant/non-conformant verdict depends on
    the kernel milestone — the cases §6 warns about."""
    return [row for row in rows if row.verdict_flips]
