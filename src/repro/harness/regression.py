"""Kernel-regression testing: "Keeping up with the kernel" (§6).

The kernel reference is itself a moving target: HyStart landed, RFC8312bis
is scheduled, algorithms get retuned.  The paper recommends re-running
conformance tests "every time a new milestone kernel version with
significant changes to the TCP stack is released".

This module implements that workflow: a :class:`KernelMilestone` describes
a reference variant (e.g. CUBIC without HyStart for pre-2.6.29 kernels, or
CUBIC *with* the RFC8312bis undo for the scheduled future kernel), and
:func:`regression_matrix` measures every QUIC implementation against each
milestone, flagging implementations whose conformance verdict flips.

With a ``repro.store`` warehouse attached, each milestone's measurements
land in their own named run; :func:`regression_matrix_from_store` then
rebuilds the matrix from storage, and ``repro.store.diff_runs`` between
milestone runs reproduces the same verdict flips without recomputation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.harness.cache import ResultCache
from repro.harness.config import ExperimentConfig, NetworkCondition
from repro.harness.conformance import measure_conformance
from repro.harness import scenarios
from repro.stacks import registry

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.exec import Executor
    from repro.store.warehouse import ResultStore


@dataclass(frozen=True)
class KernelMilestone:
    """One kernel reference flavour to regress against."""

    name: str
    #: CCA -> kernel variant name to use as the reference implementation.
    reference_variants: Dict[str, str] = field(default_factory=dict)
    note: str = ""

    def variant_for(self, cca: str) -> str:
        return self.reference_variants.get(cca, "default")


#: The milestones the paper's narrative mentions.
MILESTONES: List[KernelMilestone] = [
    KernelMilestone(
        name="5.13-stock",
        note="the paper's reference kernel (HyStart on, no RFC8312bis undo)",
    ),
    KernelMilestone(
        name="pre-hystart",
        reference_variants={"cubic": "nohystart"},
        note="CUBIC before HyStart (the mechanism xquic is missing)",
    ),
]


@dataclass
class RegressionRow:
    """One implementation's conformance across kernel milestones."""

    stack: str
    cca: str
    #: milestone name -> conformance.
    conformance: Dict[str, float]

    def verdicts(self, threshold: float = 0.5) -> Dict[str, bool]:
        return {k: v >= threshold for k, v in self.conformance.items()}

    @property
    def verdict_flips(self) -> bool:
        verdicts = set(self.verdicts().values())
        return len(verdicts) > 1


#: Store runs recording regression campaigns are named
#: ``<prefix>:<milestone name>``.
REGRESSION_RUN_PREFIX = "regression"


def milestone_run_name(
    milestone: KernelMilestone, prefix: str = REGRESSION_RUN_PREFIX
) -> str:
    """The warehouse run name holding one milestone's measurements."""
    name = milestone.name if isinstance(milestone, KernelMilestone) else milestone
    return f"{prefix}:{name}"


def regression_matrix(
    milestones: Sequence[KernelMilestone] = tuple(MILESTONES),
    implementations: Optional[Sequence[Tuple[str, str]]] = None,
    condition: Optional[NetworkCondition] = None,
    config: ExperimentConfig = ExperimentConfig(),
    cache: Optional[ResultCache] = None,
    executor: Optional["Executor"] = None,
    store: Optional["ResultStore"] = None,
    run_prefix: str = REGRESSION_RUN_PREFIX,
) -> List[RegressionRow]:
    """Conformance of each implementation against each kernel milestone.

    With a ``store``, every milestone's measurements are recorded into
    their own warehouse run (``<run_prefix>:<milestone>``), so that
    ``repro.store.diff_runs`` between two milestone runs reports exactly
    the verdict flips :func:`flipped_verdicts` computes in memory — and
    future releases can be diffed without re-running anything.
    """
    condition = condition or scenarios.shallow_buffer()
    if implementations is None:
        implementations = [
            (profile.name, cca) for profile, cca in registry.iter_implementations()
        ]
    milestone_runs = {}
    if store is not None:
        for milestone in milestones:
            milestone_runs[milestone.name] = store.ensure_run(
                milestone_run_name(milestone, run_prefix), note=milestone.note
            )
    rows: List[RegressionRow] = []
    for stack, cca in implementations:
        values: Dict[str, float] = {}
        for milestone in milestones:
            measurement = measure_conformance(
                stack,
                cca,
                condition,
                config,
                cache=cache,
                reference_variant=milestone.variant_for(cca),
                executor=executor,
            )
            values[milestone.name] = measurement.conformance
            if store is not None:
                store.record_measurement(milestone_runs[milestone.name], measurement)
        rows.append(RegressionRow(stack=stack, cca=cca, conformance=values))
    return rows


def regression_matrix_from_store(
    store: "ResultStore",
    milestones: Sequence[KernelMilestone] = tuple(MILESTONES),
    run_prefix: str = REGRESSION_RUN_PREFIX,
) -> List[RegressionRow]:
    """Rebuild the regression matrix from stored milestone runs.

    The read-side counterpart of :func:`regression_matrix`: conformance
    values come out of the warehouse instead of being recomputed, so
    reports over paper-scale campaigns are instant.  Implementations
    present in only some milestone runs are skipped (a partial campaign
    cannot yield a verdict across milestones).
    """
    per_milestone = {
        milestone.name: store.metric_table(
            milestone_run_name(milestone, run_prefix), "conf"
        )
        for milestone in milestones
    }
    subjects = None
    for table in per_milestone.values():
        keys = {(stack, cca) for stack, cca, _variant, _cond in table}
        subjects = keys if subjects is None else subjects & keys
    rows: List[RegressionRow] = []
    for stack, cca in sorted(subjects or ()):
        values = {}
        for name, table in per_milestone.items():
            cells = [v for (s, c, _v, _cond), v in table.items()
                     if s == stack and c == cca]
            values[name] = cells[0]
        rows.append(RegressionRow(stack=stack, cca=cca, conformance=values))
    return rows


def flipped_verdicts(rows: Sequence[RegressionRow]) -> List[RegressionRow]:
    """Implementations whose conformant/non-conformant verdict depends on
    the kernel milestone — the cases §6 warns about."""
    return [row for row in rows if row.verdict_flips]
