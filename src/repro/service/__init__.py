"""repro.service — the long-running campaign service.

The paper's §6 vision is conformance testing as an *ongoing service*:
every QUIC stack re-measured against every kernel milestone, release
after release.  ``repro.exec`` supplies the parallel engine and
``repro.store`` the durable warehouse; this package is the front end
that accepts work, schedules it, and serves results:

* Campaign specs (``repro.service.specs``) — validated JSON documents
  describing a conformance / matrix / regression campaign, canonicalised
  for journaling and resume.
* Scheduler (``repro.service.scheduler``) — a bounded priority queue
  journaled into the warehouse's events table: campaigns survive
  restarts, dedupe through content-addressed trial keys, support
  cancellation, and drain gracefully on SIGTERM.
* HTTP API (``repro.service.server``) — a stdlib ``ThreadingHTTPServer``
  speaking JSON REST: submit campaigns, follow live progress (long-poll
  or SSE), fetch stored metrics/diffs/heatmaps, scrape Prometheus
  metrics.
* Client (``repro.service.client``) — :class:`ServiceClient` wrapping
  the API (submit / wait / stream / fetch), used by the ``repro submit``
  and ``repro watch`` CLI subcommands.

Quick start::

    from repro.service import ServiceApp, ServiceClient

    app = ServiceApp("results.db", port=8437, workers=2)
    app.start()
    client = ServiceClient(app.url)
    campaign = client.submit({"kind": "conformance", "stacks": ["quiche"],
                              "ccas": ["cubic"], "duration_s": 6,
                              "trials": 2})
    final = client.wait(campaign["id"])
    rows = client.metrics(final["runs"][0], metric="conf")
"""

from repro.service.client import CampaignFailed, ServiceClient, ServiceError
from repro.service.scheduler import CampaignJob, QueueFull, Scheduler
from repro.service.server import ServiceApp
from repro.service.specs import (
    KINDS,
    CampaignSpec,
    SpecError,
    execute_campaign,
    parse_campaign_spec,
)

__all__ = [
    "ServiceApp",
    "ServiceClient",
    "ServiceError",
    "CampaignFailed",
    "Scheduler",
    "CampaignJob",
    "QueueFull",
    "CampaignSpec",
    "SpecError",
    "KINDS",
    "parse_campaign_spec",
    "execute_campaign",
]
