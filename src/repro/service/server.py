"""The campaign service's HTTP front end (stdlib-only).

A :class:`ServiceApp` bundles a :class:`~repro.service.scheduler.Scheduler`
with a ``ThreadingHTTPServer`` serving a small JSON REST API:

====================================  =========================================
``POST /campaigns``                   submit a campaign spec (429 when full)
``GET  /campaigns``                   list campaigns
``GET  /campaigns/{id}``              one campaign's status
``POST /campaigns/{id}/cancel``       request cancellation
``GET  /campaigns/{id}/events``       live progress: long-poll JSON
                                      (``?after=N&timeout=S``) or SSE
                                      (``?stream=1`` / Accept:
                                      ``text/event-stream``)
``POST /fabric/lease``                worker claims a task (coordinator only)
``POST /fabric/tasks/{id}/heartbeat`` extend a lease + ship progress
``POST /fabric/tasks/{id}/complete``  finish a task (optional result bundle)
``POST /fabric/tasks/{id}/fail``      report a failure (retryable or not)
``GET  /fabric/status``               queue depth, tenants, live leases
``GET  /runs``                        stored runs with row counts
``GET  /runs/{name}/metrics.json``    one run's metric rows (also ``.csv``)
``GET  /runs/{a}/diff/{b}``           run diff (moves + verdict flips)
``GET  /runs/{name}/heatmap.svg``     SVG heatmap straight from the store
``GET  /runs/{name}/peer-matrix.svg`` SVG peer-conformance matrix panel
``GET  /healthz``                     liveness + store integrity
``GET  /metrics``                     Prometheus text exposition
====================================  =========================================

Route handlers live in :class:`~repro.service.router.ServiceRouter`,
shared with the asyncio front door in :mod:`repro.fabric.frontdoor`;
this module is only the threaded transport.  The fabric endpoints are
served when the app's scheduler is a
:class:`~repro.fabric.coordinator.Coordinator` (pass one via the
``scheduler`` argument, or use ``repro fabric serve``); a plain
single-process scheduler 404s them.

Run names may contain ``:`` and other URL-hostile characters; path
segments are percent-decoded, so clients should quote them.

Read endpoints open a fresh :class:`~repro.store.ResultStore` per
request — SQLite connections are thread-bound and ``ThreadingHTTPServer``
handles each request on its own thread; WAL mode makes the concurrent
readers cheap and safe.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, unquote, urlparse

from repro.service.router import (
    MAX_BODY_BYTES,
    EventStream,
    LongPoll,
    Response,
    ServiceRouter,
    sse_chunk,
    sse_final,
)
from repro.service.scheduler import Scheduler, TERMINAL_STATES
from repro.service.specs import SpecError


class ServiceApp:
    """The long-running campaign service: scheduler + HTTP server."""

    def __init__(
        self,
        store_path: str,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 1,
        exec_jobs: int = 1,
        max_pending: int = 64,
        resume: bool = True,
        scheduler: Optional[Scheduler] = None,
    ):
        self.store_path = str(store_path)
        self.scheduler = scheduler or Scheduler(
            store_path=store_path,
            workers=workers,
            exec_jobs=exec_jobs,
            max_pending=max_pending,
        )
        self.resumed = self.scheduler.resume_pending() if resume else []
        self.router = ServiceRouter(self.store_path, self.scheduler)
        handler = type("_BoundHandler", (_Handler,), {"app": self})
        self.server = ThreadingHTTPServer((host, port), handler)
        self.server.daemon_threads = True
        self._thread: Optional[threading.Thread] = None
        self._stopped = threading.Event()

    # ----------------------------------------------------------- lifecycle

    @property
    def address(self) -> Tuple[str, int]:
        return self.server.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> None:
        """Serve requests on a background thread (returns immediately)."""
        self._thread = threading.Thread(
            target=self.server.serve_forever,
            name="repro-service-http",
            daemon=True,
        )
        self._thread.start()

    def stop(self, drain: bool = False) -> None:
        """Shut down: stop accepting, then stop the scheduler.

        ``drain=True`` finishes every queued campaign first; ``False``
        (the SIGTERM path) finishes only in-flight campaigns and leaves
        the rest journaled for the next instance to resume.
        """
        if self._thread is not None:
            # shutdown() handshakes with serve_forever; calling it on a
            # server that never started would block forever.
            self.server.shutdown()
        self.server.server_close()
        self.scheduler.shutdown(drain=drain)
        self._stopped.set()

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT => graceful drain (finish in-flight, keep queue)."""
        import signal

        def _terminate(signum, frame):
            # Stop on a helper thread: SIGTERM may arrive on the thread
            # blocked in serve_forever (or wait()), and server.shutdown()
            # deadlocks when called from the serving thread itself.
            threading.Thread(
                target=self.stop, kwargs={"drain": False}, daemon=True
            ).start()

        signal.signal(signal.SIGTERM, _terminate)
        signal.signal(signal.SIGINT, _terminate)

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until :meth:`stop` completes (True) or timeout (False)."""
        return self._stopped.wait(timeout)


class _Handler(BaseHTTPRequestHandler):
    """Threaded transport: parse, delegate to the router, write bytes."""

    app: ServiceApp
    protocol_version = "HTTP/1.1"
    server_version = "repro-service"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # quiet by default; telemetry flows through /metrics

    # ------------------------------------------------------------- plumbing

    def _segments(self):
        parsed = urlparse(self.path)
        self.query = {
            key: values[-1] for key, values in parse_qs(parsed.query).items()
        }
        return [unquote(part) for part in parsed.path.split("/") if part]

    def _respond(self, response: Response):
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(response.body)))
        for name, value in response.headers.items():
            self.send_header(name.replace("_", "-"), str(value))
        self.end_headers()
        try:
            self.wfile.write(response.body)
        except (BrokenPipeError, ConnectionResetError):
            pass

    def _body_json(self):
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise SpecError("request body too large")
        raw = self.rfile.read(length) if length else b"{}"
        try:
            return json.loads(raw.decode() or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SpecError(f"request body is not valid JSON: {exc}")

    # ------------------------------------------------------------- routing

    def do_GET(self):  # noqa: N802 - stdlib naming
        router = self.app.router
        result = router.handle_get(
            self._segments(), self.query, self.headers.get("Accept") or ""
        )
        if isinstance(result, LongPoll):
            # Block this request thread until events arrive or timeout.
            events = self.app.scheduler.wait_events(
                result.campaign_id, after=result.after, timeout=result.timeout
            )
            result = router.events_page(result.campaign_id, result.after, events)
        elif isinstance(result, EventStream):
            return self._sse(result.campaign_id, result.after)
        self._respond(result)

    def do_POST(self):  # noqa: N802 - stdlib naming
        router = self.app.router
        parts = self._segments()
        try:
            payload = self._body_json()
        except SpecError as exc:
            return self._respond(
                Response(400, (json.dumps({"error": str(exc)}) + "\n").encode())
            )
        self._respond(router.handle_post(parts, self.query, payload))

    # ------------------------------------------------------------------ SSE

    def _sse(self, campaign_id: str, after: int):
        """Server-sent events until the campaign reaches a terminal state."""
        scheduler = self.app.scheduler
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        cursor = after
        try:
            while True:
                events = scheduler.wait_events(
                    campaign_id, after=cursor, timeout=15.0
                )
                if events:
                    self.wfile.write(sse_chunk(events))
                cursor += len(events)
                self.wfile.flush()
                job = scheduler.job(campaign_id)
                if job is None:
                    return
                if job.state in TERMINAL_STATES and len(job.events) <= cursor:
                    self.wfile.write(sse_final(job.snapshot()))
                    self.wfile.flush()
                    return
                if not events:
                    self.wfile.write(sse_chunk([]))
                    self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            return  # client went away mid-stream


__all__ = ["ServiceApp"]
