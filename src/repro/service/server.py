"""The campaign service's HTTP front end (stdlib-only).

A :class:`ServiceApp` bundles a :class:`~repro.service.scheduler.Scheduler`
with a ``ThreadingHTTPServer`` serving a small JSON REST API:

====================================  =========================================
``POST /campaigns``                   submit a campaign spec (429 when full)
``GET  /campaigns``                   list campaigns
``GET  /campaigns/{id}``              one campaign's status
``POST /campaigns/{id}/cancel``       request cancellation
``GET  /campaigns/{id}/events``       live progress: long-poll JSON
                                      (``?after=N&timeout=S``) or SSE
                                      (``?stream=1`` / Accept:
                                      ``text/event-stream``)
``GET  /runs``                        stored runs with row counts
``GET  /runs/{name}/metrics.json``    one run's metric rows (also ``.csv``)
``GET  /runs/{a}/diff/{b}``           run diff (moves + verdict flips)
``GET  /runs/{name}/heatmap.svg``     SVG heatmap straight from the store
``GET  /runs/{name}/peer-matrix.svg`` SVG peer-conformance matrix panel
``GET  /healthz``                     liveness + store integrity
``GET  /metrics``                     Prometheus text exposition
====================================  =========================================

Run names may contain ``:`` and other URL-hostile characters; path
segments are percent-decoded, so clients should quote them.

Read endpoints open a fresh :class:`~repro.store.ResultStore` per
request — SQLite connections are thread-bound and ``ThreadingHTTPServer``
handles each request on its own thread; WAL mode makes the concurrent
readers cheap and safe.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, unquote, urlparse

from repro.service.scheduler import QueueFull, Scheduler, TERMINAL_STATES
from repro.service.specs import SpecError, parse_campaign_spec

#: Cap on request bodies; campaign specs are tiny.
_MAX_BODY_BYTES = 1 << 20


class ServiceApp:
    """The long-running campaign service: scheduler + HTTP server."""

    def __init__(
        self,
        store_path: str,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 1,
        exec_jobs: int = 1,
        max_pending: int = 64,
        resume: bool = True,
    ):
        self.store_path = str(store_path)
        self.scheduler = Scheduler(
            store_path=store_path,
            workers=workers,
            exec_jobs=exec_jobs,
            max_pending=max_pending,
        )
        self.resumed = self.scheduler.resume_pending() if resume else []
        handler = type("_BoundHandler", (_Handler,), {"app": self})
        self.server = ThreadingHTTPServer((host, port), handler)
        self.server.daemon_threads = True
        self._thread: Optional[threading.Thread] = None
        self._stopped = threading.Event()

    # ----------------------------------------------------------- lifecycle

    @property
    def address(self) -> Tuple[str, int]:
        return self.server.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> None:
        """Serve requests on a background thread (returns immediately)."""
        self._thread = threading.Thread(
            target=self.server.serve_forever,
            name="repro-service-http",
            daemon=True,
        )
        self._thread.start()

    def stop(self, drain: bool = False) -> None:
        """Shut down: stop accepting, then stop the scheduler.

        ``drain=True`` finishes every queued campaign first; ``False``
        (the SIGTERM path) finishes only in-flight campaigns and leaves
        the rest journaled for the next instance to resume.
        """
        if self._thread is not None:
            # shutdown() handshakes with serve_forever; calling it on a
            # server that never started would block forever.
            self.server.shutdown()
        self.server.server_close()
        self.scheduler.shutdown(drain=drain)
        self._stopped.set()

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT => graceful drain (finish in-flight, keep queue)."""
        import signal

        def _terminate(signum, frame):
            # Stop on a helper thread: SIGTERM may arrive on the thread
            # blocked in serve_forever (or wait()), and server.shutdown()
            # deadlocks when called from the serving thread itself.
            threading.Thread(
                target=self.stop, kwargs={"drain": False}, daemon=True
            ).start()

        signal.signal(signal.SIGTERM, _terminate)
        signal.signal(signal.SIGINT, _terminate)

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until :meth:`stop` completes (True) or timeout (False)."""
        return self._stopped.wait(timeout)


class _Handler(BaseHTTPRequestHandler):
    """Request handler; the class is subclassed per app with ``app`` set."""

    app: ServiceApp
    protocol_version = "HTTP/1.1"
    server_version = "repro-service"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # quiet by default; telemetry flows through /metrics

    # ------------------------------------------------------------- plumbing

    def _segments(self):
        parsed = urlparse(self.path)
        self.query = {
            key: values[-1] for key, values in parse_qs(parsed.query).items()
        }
        return [unquote(part) for part in parsed.path.split("/") if part]

    def _send(self, code: int, body: bytes, content_type: str, **headers):
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers.items():
            self.send_header(name.replace("_", "-"), str(value))
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass

    def _json(self, code: int, payload, **headers):
        body = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode()
        self._send(code, body, "application/json", **headers)

    def _text(self, code: int, text: str, content_type: str = "text/plain"):
        self._send(code, text.encode(), f"{content_type}; charset=utf-8")

    def _error(self, code: int, message: str, **headers):
        self._json(code, {"error": message}, **headers)

    def _body_json(self):
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY_BYTES:
            raise SpecError("request body too large")
        raw = self.rfile.read(length) if length else b"{}"
        try:
            return json.loads(raw.decode() or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SpecError(f"request body is not valid JSON: {exc}")

    def _store(self):
        from repro.store import ResultStore

        return ResultStore(self.app.store_path)

    # ------------------------------------------------------------- routing

    def do_GET(self):  # noqa: N802 - stdlib naming
        try:
            self._route_get(self._segments())
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            try:
                self._error(500, f"{type(exc).__name__}: {exc}")
            except Exception:
                pass

    def do_POST(self):  # noqa: N802 - stdlib naming
        try:
            self._route_post(self._segments())
        except QueueFull as exc:
            self._error(429, str(exc), Retry_After=exc.retry_after_s)
        except SpecError as exc:
            self._error(400, str(exc))
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            try:
                self._error(500, f"{type(exc).__name__}: {exc}")
            except Exception:
                pass

    def _route_get(self, parts):
        if parts == ["healthz"]:
            return self._healthz()
        if parts == ["metrics"]:
            return self._prometheus()
        if parts == ["campaigns"]:
            return self._json(
                200,
                {"campaigns": [j.snapshot() for j in self.app.scheduler.jobs()]},
            )
        if len(parts) == 2 and parts[0] == "campaigns":
            job = self.app.scheduler.job(parts[1])
            if job is None:
                return self._error(404, f"unknown campaign: {parts[1]!r}")
            return self._json(200, job.snapshot())
        if len(parts) == 3 and parts[0] == "campaigns" and parts[2] == "events":
            return self._campaign_events(parts[1])
        if parts == ["runs"]:
            return self._runs()
        if len(parts) == 3 and parts[0] == "runs" and parts[2].startswith("metrics"):
            return self._run_metrics(parts[1], parts[2])
        if len(parts) == 4 and parts[0] == "runs" and parts[2] == "diff":
            return self._run_diff(parts[1], parts[3])
        if len(parts) == 3 and parts[0] == "runs" and parts[2] == "heatmap.svg":
            return self._run_heatmap(parts[1])
        if len(parts) == 3 and parts[0] == "runs" and parts[2] == "peer-matrix.svg":
            return self._run_peer_matrix(parts[1])
        return self._error(404, f"no such resource: GET {self.path}")

    def _route_post(self, parts):
        if parts == ["campaigns"]:
            return self._submit()
        if len(parts) == 3 and parts[0] == "campaigns" and parts[2] == "cancel":
            if self.app.scheduler.cancel(parts[1]):
                return self._json(200, self.app.scheduler.job(parts[1]).snapshot())
            job = self.app.scheduler.job(parts[1])
            if job is None:
                return self._error(404, f"unknown campaign: {parts[1]!r}")
            return self._error(409, f"campaign {parts[1]} is already {job.state}")
        return self._error(404, f"no such resource: POST {self.path}")

    # ------------------------------------------------------------ handlers

    def _submit(self):
        payload = self._body_json()
        if not isinstance(payload, dict):
            raise SpecError("campaign submission must be a JSON object")
        priority = payload.pop("priority", 0)
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise SpecError("priority must be an integer")
        spec = parse_campaign_spec(payload)
        job = self.app.scheduler.submit(spec, priority=priority)
        self._json(202, job.snapshot(), Location=f"/campaigns/{job.id}")

    def _campaign_events(self, campaign_id: str):
        scheduler = self.app.scheduler
        if scheduler.job(campaign_id) is None:
            return self._error(404, f"unknown campaign: {campaign_id!r}")
        after = int(self.query.get("after", 0))
        wants_sse = self.query.get("stream") == "1" or "text/event-stream" in (
            self.headers.get("Accept") or ""
        )
        if wants_sse:
            return self._sse(campaign_id, after)
        timeout = min(60.0, float(self.query.get("timeout", 10.0)))
        events = scheduler.wait_events(campaign_id, after=after, timeout=timeout)
        job = scheduler.job(campaign_id)
        self._json(
            200,
            {
                "events": events,
                "next": after + len(events),
                "state": job.state if job else "unknown",
            },
        )

    def _sse(self, campaign_id: str, after: int):
        """Server-sent events until the campaign reaches a terminal state."""
        scheduler = self.app.scheduler
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        cursor = after
        try:
            while True:
                events = scheduler.wait_events(campaign_id, after=cursor, timeout=15.0)
                for event in events:
                    data = json.dumps(event, sort_keys=True)
                    self.wfile.write(f"data: {data}\n\n".encode())
                cursor += len(events)
                self.wfile.flush()
                job = scheduler.job(campaign_id)
                if job is None:
                    return
                if job.state in TERMINAL_STATES and len(job.events) <= cursor:
                    final = json.dumps(job.snapshot(), sort_keys=True)
                    self.wfile.write(f"event: end\ndata: {final}\n\n".encode())
                    self.wfile.flush()
                    return
                if not events:
                    self.wfile.write(b": keep-alive\n\n")
                    self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            return  # client went away mid-stream

    def _healthz(self):
        from repro.faults.breaker import degraded

        with self._store() as store:
            ok = store.integrity_ok()
        open_breakers = degraded()
        if not ok:
            status = "store-corrupt"
        elif open_breakers:
            # Open circuit breakers (store sink spilling, journal down):
            # the service is up and serving, but running in a reduced
            # mode — callers see why, probes still get a 200.
            status = "degraded"
        else:
            status = "ok"
        metrics = self.app.scheduler.metrics()
        self._json(
            500 if not ok else 200,
            {
                "status": status,
                "degraded": open_breakers,
                "store": self.app.store_path,
                "queue_depth": metrics["queue_depth"],
                "running": metrics["running"],
                "uptime_s": round(metrics["uptime_s"], 3),
            },
        )

    def _prometheus(self):
        m = self.app.scheduler.metrics()
        with self._store() as store:
            counts = store.counts()
        lines = [
            "# HELP repro_queue_depth Campaigns waiting to run.",
            "# TYPE repro_queue_depth gauge",
            f"repro_queue_depth {m['queue_depth']}",
            "# HELP repro_campaigns_running Campaigns currently executing.",
            "# TYPE repro_campaigns_running gauge",
            f"repro_campaigns_running {m['running']}",
            "# HELP repro_campaigns_total Campaigns by lifecycle state.",
            "# TYPE repro_campaigns_total gauge",
        ]
        for state in sorted(m["campaign_states"]):
            lines.append(
                f'repro_campaigns_total{{state="{state}"}} '
                f"{m['campaign_states'][state]}"
            )
        lines += [
            "# HELP repro_trials_total Trials finished, by executor status.",
            "# TYPE repro_trials_total counter",
        ]
        for status in sorted(m["trial_statuses"]):
            lines.append(
                f'repro_trials_total{{status="{status}"}} '
                f"{m['trial_statuses'][status]}"
            )
        lines += [
            "# HELP repro_trials_per_second Finished trials per uptime second.",
            "# TYPE repro_trials_per_second gauge",
            f"repro_trials_per_second {m['trials_per_second']:.6f}",
            "# HELP repro_cache_hit_rate Fraction of trials served from cache.",
            "# TYPE repro_cache_hit_rate gauge",
            f"repro_cache_hit_rate {m['cache_hit_rate']:.6f}",
            "# HELP repro_service_uptime_seconds Service uptime.",
            "# TYPE repro_service_uptime_seconds gauge",
            f"repro_service_uptime_seconds {m['uptime_s']:.3f}",
            "# HELP repro_store_rows Warehouse row counts by table.",
            "# TYPE repro_store_rows gauge",
        ]
        for table in ("runs", "trials", "measurements", "metrics", "events"):
            lines.append(f'repro_store_rows{{table="{table}"}} {counts[table]}')
        self._text(200, "\n".join(lines) + "\n", "text/plain; version=0.0.4")

    def _runs(self):
        with self._store() as store:
            runs = []
            for info in store.runs():
                runs.append(
                    {
                        "id": info.id,
                        "name": info.name,
                        "created_at": info.created_at,
                        "note": info.note,
                        "metrics": len(store.query(run=info.id)),
                        "trials": len(store.trial_keys(info.id)),
                    }
                )
        self._json(200, {"runs": runs})

    def _run_metrics(self, run_name: str, resource: str):
        from repro.store import ResultStore, StoreError

        fmt = resource[len("metrics"):].lstrip(".") or "json"
        if fmt not in ("json", "csv"):
            return self._error(404, f"unknown metrics format: {fmt!r}")
        try:
            with self._store() as store:
                rows = store.query(
                    run=run_name,
                    metric=self.query.get("metric"),
                    stack=self.query.get("stack"),
                    cca=self.query.get("cca"),
                )
        except StoreError as exc:
            return self._error(404, str(exc))
        if fmt == "csv":
            return self._text(200, ResultStore.export_csv(rows), "text/csv")
        self._send(
            200, (ResultStore.export_json(rows) + "\n").encode(), "application/json"
        )

    def _run_diff(self, run_a: str, run_b: str):
        from repro.store import StoreError, diff_runs

        try:
            with self._store() as store:
                diff = diff_runs(
                    store,
                    run_a,
                    run_b,
                    metric=self.query.get("metric", "conf"),
                    threshold=float(self.query.get("threshold", 0.5)),
                    atol=float(self.query.get("atol", 0.0)),
                )
        except StoreError as exc:
            return self._error(404, str(exc))
        self._json(
            200,
            {
                "run_a": diff.run_a,
                "run_b": diff.run_b,
                "metric": diff.metric,
                "threshold": diff.threshold,
                "clean": diff.clean,
                "compared": diff.compared,
                "added": [list(s) for s in diff.added],
                "removed": [list(s) for s in diff.removed],
                "changed": [
                    {
                        "subject": list(d.subject),
                        "before": d.before,
                        "after": d.after,
                        "delta": d.delta,
                    }
                    for d in diff.changed
                ],
                "flips": [
                    {
                        "subject": list(f.subject),
                        "before": f.before,
                        "after": f.after,
                        "label": f.label(),
                    }
                    for f in diff.flips
                ],
            },
        )

    def _run_heatmap(self, run_name: str):
        from repro.store import StoreError
        from repro.viz.store import stored_heatmap_figure

        try:
            with self._store() as store:
                figure = stored_heatmap_figure(
                    store, run_name, metric=self.query.get("metric", "conf")
                )
        except StoreError as exc:
            return self._error(404, str(exc))
        except ValueError as exc:
            return self._error(404, str(exc))
        self._send(200, figure.to_svg().encode(), "image/svg+xml")

    def _run_peer_matrix(self, run_name: str):
        from repro.store import StoreError
        from repro.viz.store import stored_peer_matrix_figure

        try:
            with self._store() as store:
                figure = stored_peer_matrix_figure(
                    store, run_name, metric=self.query.get("metric", "peer_conf")
                )
        except StoreError as exc:
            return self._error(404, str(exc))
        except ValueError as exc:
            return self._error(404, str(exc))
        self._send(200, figure.to_svg().encode(), "image/svg+xml")


__all__ = ["ServiceApp"]
