"""Transport-agnostic routing for the campaign service HTTP API.

The same JSON REST surface is served by two transports — the stdlib
``ThreadingHTTPServer`` in :mod:`repro.service.server` (single-process
deployments) and the asyncio front door in
:mod:`repro.fabric.frontdoor` (fabric deployments with thousands of
concurrent watchers).  :class:`ServiceRouter` holds every handler once:
transports parse the request, call :meth:`handle_get` /
:meth:`handle_post`, and write the returned :class:`Response` bytes.

Two route results need transport cooperation and are returned as
descriptors instead of responses:

* :class:`LongPoll` — the transport blocks (thread) or awaits (event
  loop) for events past the cursor, then renders
  :meth:`ServiceRouter.events_page`.
* :class:`EventStream` — the transport runs its SSE loop with
  :func:`sse_chunk` / :func:`sse_final`.

Fabric worker-protocol endpoints (``/fabric/...``) are served when the
scheduler is a :class:`~repro.fabric.coordinator.Coordinator`; a plain
single-process scheduler 404s them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.service.scheduler import QueueFull, TERMINAL_STATES
from repro.service.specs import SpecError, parse_campaign_spec

#: Cap on request bodies; campaign specs are tiny, result bundles are
#: bounded by campaign size (a full conformance campaign's sampled
#: point clouds are a few MB).
MAX_BODY_BYTES = 64 << 20


@dataclass
class Response:
    """One rendered HTTP response, ready for any transport to write."""

    status: int
    body: bytes
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class LongPoll:
    """Descriptor: block for events past ``after``, then render the page."""

    campaign_id: str
    after: int
    timeout: float


@dataclass(frozen=True)
class EventStream:
    """Descriptor: stream SSE frames until the campaign is terminal."""

    campaign_id: str
    after: int


RouteResult = Union[Response, LongPoll, EventStream]


def json_response(status: int, payload, **headers) -> Response:
    body = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode()
    return Response(status, body, "application/json", dict(headers))


def text_response(
    status: int, text: str, content_type: str = "text/plain"
) -> Response:
    return Response(
        status, text.encode(), f"{content_type}; charset=utf-8", {}
    )


def error_response(status: int, message: str, **headers) -> Response:
    return json_response(status, {"error": message}, **headers)


def no_content() -> Response:
    return Response(204, b"", "application/json", {})


def sse_chunk(events: List[dict]) -> bytes:
    """SSE frames for a batch of events (empty batch => keep-alive)."""
    if not events:
        return b": keep-alive\n\n"
    out = []
    for event in events:
        data = json.dumps(event, sort_keys=True)
        out.append(f"data: {data}\n\n".encode())
    return b"".join(out)


def sse_final(snapshot: dict) -> bytes:
    final = json.dumps(snapshot, sort_keys=True)
    return f"event: end\ndata: {final}\n\n".encode()


class ServiceRouter:
    """Every service endpoint, rendered transport-independently."""

    def __init__(self, store_path: str, scheduler):
        self.store_path = str(store_path)
        self.scheduler = scheduler

    # ------------------------------------------------------------ plumbing

    def _store(self):
        from repro.store import open_store

        # Autodetects sharded layouts (shards.json directory) as well
        # as classic single-file warehouses.
        return open_store(self.store_path)

    def _fabric(self):
        """The scheduler's fabric protocol surface, or None when this is
        a single-process deployment."""
        scheduler = self.scheduler
        return scheduler if hasattr(scheduler, "lease_task") else None

    # ------------------------------------------------------------- routing

    def handle_get(
        self, parts: List[str], query: Dict[str, str], accept: str = ""
    ) -> RouteResult:
        try:
            return self._route_get(parts, query, accept)
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            return error_response(500, f"{type(exc).__name__}: {exc}")

    def handle_post(
        self, parts: List[str], query: Dict[str, str], payload
    ) -> Response:
        from repro.fabric.queue import QueueError, QuotaExceeded

        try:
            return self._route_post(parts, query, payload)
        except QuotaExceeded as exc:
            return error_response(429, str(exc), Retry_After=5)
        except QueueFull as exc:
            return error_response(
                429, str(exc), Retry_After=exc.retry_after_s
            )
        except SpecError as exc:
            return error_response(400, str(exc))
        except QueueError as exc:
            return error_response(409, str(exc))
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            return error_response(500, f"{type(exc).__name__}: {exc}")

    def _route_get(
        self, parts: List[str], query: Dict[str, str], accept: str
    ) -> RouteResult:
        if parts == ["healthz"]:
            return self._healthz()
        if parts == ["metrics"]:
            return self._prometheus()
        if parts == ["campaigns"]:
            return json_response(
                200,
                {"campaigns": [j.snapshot() for j in self.scheduler.jobs()]},
            )
        if len(parts) == 2 and parts[0] == "campaigns":
            job = self.scheduler.job(parts[1])
            if job is None:
                return error_response(404, f"unknown campaign: {parts[1]!r}")
            return json_response(200, job.snapshot())
        if len(parts) == 3 and parts[0] == "campaigns" and parts[2] == "events":
            return self._campaign_events(parts[1], query, accept)
        if parts == ["fabric", "status"]:
            return self._fabric_status()
        if parts == ["fabric", "workers"]:
            return self._fabric_workers(query)
        if parts == ["runs"]:
            return self._runs()
        if len(parts) == 3 and parts[0] == "runs" and parts[2].startswith("metrics"):
            return self._run_metrics(parts[1], parts[2], query)
        if len(parts) == 4 and parts[0] == "runs" and parts[2] == "diff":
            return self._run_diff(parts[1], parts[3], query)
        if len(parts) == 3 and parts[0] == "runs" and parts[2] == "heatmap.svg":
            return self._run_heatmap(parts[1], query)
        if len(parts) == 3 and parts[0] == "runs" and parts[2] == "peer-matrix.svg":
            return self._run_peer_matrix(parts[1], query)
        return error_response(
            404, f"no such resource: GET /{'/'.join(parts)}"
        )

    def _route_post(
        self, parts: List[str], query: Dict[str, str], payload
    ) -> Response:
        if parts == ["campaigns"]:
            return self._submit(payload)
        if len(parts) == 3 and parts[0] == "campaigns" and parts[2] == "cancel":
            return self._cancel(parts[1])
        if parts == ["fabric", "lease"]:
            return self._fabric_lease(payload)
        if (
            len(parts) == 4
            and parts[0] == "fabric"
            and parts[1] == "tasks"
            and parts[3] in ("heartbeat", "complete", "fail")
        ):
            return self._fabric_task_call(parts[2], parts[3], payload)
        if (
            len(parts) == 4
            and parts[0] == "fabric"
            and parts[1] == "workers"
            and parts[3] in ("drain", "deregister")
        ):
            return self._fabric_worker_call(parts[2], parts[3])
        return error_response(
            404, f"no such resource: POST /{'/'.join(parts)}"
        )

    # ----------------------------------------------------------- campaigns

    def _submit(self, payload) -> Response:
        if not isinstance(payload, dict):
            raise SpecError("campaign submission must be a JSON object")
        payload = dict(payload)
        priority = payload.pop("priority", 0)
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise SpecError("priority must be an integer")
        tenant = payload.pop("tenant", "default")
        if not isinstance(tenant, str) or not tenant:
            raise SpecError("tenant must be a non-empty string")
        spec = parse_campaign_spec(payload)
        job = self.scheduler.submit(spec, priority=priority, tenant=tenant)
        return json_response(
            202, job.snapshot(), Location=f"/campaigns/{job.id}"
        )

    def _cancel(self, campaign_id: str) -> Response:
        if self.scheduler.cancel(campaign_id):
            return json_response(
                200, self.scheduler.job(campaign_id).snapshot()
            )
        job = self.scheduler.job(campaign_id)
        if job is None:
            return error_response(404, f"unknown campaign: {campaign_id!r}")
        return error_response(
            409, f"campaign {campaign_id} is already {job.state}"
        )

    def _campaign_events(
        self, campaign_id: str, query: Dict[str, str], accept: str
    ) -> RouteResult:
        if self.scheduler.job(campaign_id) is None:
            return error_response(404, f"unknown campaign: {campaign_id!r}")
        after = int(query.get("after", 0))
        wants_sse = query.get("stream") == "1" or "text/event-stream" in accept
        if wants_sse:
            return EventStream(campaign_id, after)
        timeout = min(60.0, float(query.get("timeout", 10.0)))
        return LongPoll(campaign_id, after, timeout)

    def events_page(
        self, campaign_id: str, after: int, events: Optional[List[dict]] = None
    ) -> Response:
        """Render a long-poll page (the transport already waited)."""
        if events is None:
            events = self.scheduler.events_since(campaign_id, after)
        job = self.scheduler.job(campaign_id)
        return json_response(
            200,
            {
                "events": events,
                "next": after + len(events),
                "state": job.state if job else "unknown",
            },
        )

    # -------------------------------------------------------------- fabric

    def _fabric_status(self) -> Response:
        fabric = self._fabric()
        if fabric is None:
            return error_response(
                404, "fabric endpoints need a coordinator-backed service"
            )
        status = fabric.fabric_status()
        metrics = fabric.metrics()
        # ``workers`` is the fleet registry list from the queue snapshot;
        # the scalar count (registered + leasing) goes out separately so
        # it cannot shadow the per-worker rows.
        return json_response(
            200,
            {
                **status,
                "workers_total": metrics.get("workers", 0),
                "campaign_states": metrics.get("campaign_states", {}),
            },
        )

    def _fabric_lease(self, payload) -> Response:
        from repro.fabric.worker import lease_to_wire

        fabric = self._fabric()
        if fabric is None:
            return error_response(
                404, "fabric endpoints need a coordinator-backed service"
            )
        if not isinstance(payload, dict):
            raise SpecError("lease request must be a JSON object")
        worker = str(payload.get("worker") or "anonymous")
        ttl_s = payload.get("ttl_s")
        lease = fabric.lease_task(
            worker,
            ttl_s=float(ttl_s) if ttl_s else None,
            version=str(payload.get("version") or ""),
        )
        if lease is None:
            return no_content()
        if isinstance(lease, dict):
            # A durable drain directive instead of work.
            return json_response(200, lease)
        return json_response(200, lease_to_wire(lease))

    def _fabric_task_call(
        self, campaign: str, action: str, payload
    ) -> Response:
        fabric = self._fabric()
        if fabric is None:
            return error_response(
                404, "fabric endpoints need a coordinator-backed service"
            )
        if not isinstance(payload, dict):
            raise SpecError(f"{action} request must be a JSON object")
        lease_id = str(payload.get("lease_id") or "")
        if not lease_id:
            raise SpecError("lease_id is required")
        if action == "heartbeat":
            ttl_s = payload.get("ttl_s")
            beat = fabric.heartbeat_task(
                campaign,
                lease_id,
                ttl_s=float(ttl_s) if ttl_s else None,
                progress=payload.get("progress") or [],
            )
            return json_response(200, beat)
        if action == "complete":
            outcome = fabric.complete_task(
                campaign,
                lease_id,
                summary=payload.get("summary") or {},
                bundle=payload.get("bundle"),
            )
            return json_response(200, {"outcome": outcome})
        outcome = fabric.fail_task(
            campaign,
            lease_id,
            str(payload.get("error") or "unknown error"),
            retryable=bool(payload.get("retryable", True)),
        )
        return json_response(200, {"outcome": outcome})

    def _fabric_workers(self, query: Dict[str, str]) -> Response:
        fabric = self._fabric()
        if fabric is None or not hasattr(fabric, "workers"):
            return error_response(
                404, "fabric endpoints need a coordinator-backed service"
            )
        include_exited = query.get("all") == "1"
        return json_response(
            200, {"workers": fabric.workers(include_exited=include_exited)}
        )

    def _fabric_worker_call(self, worker: str, action: str) -> Response:
        fabric = self._fabric()
        if fabric is None or not hasattr(fabric, "drain_worker"):
            return error_response(
                404, "fabric endpoints need a coordinator-backed service"
            )
        if action == "drain":
            return json_response(200, fabric.drain_worker(worker))
        fabric.deregister_worker(worker)
        return json_response(200, {"ok": True, "worker": worker})

    # ------------------------------------------------------------- healthz

    def _healthz(self) -> Response:
        from repro.faults.breaker import degraded

        shard_report = None
        with self._store() as store:
            if hasattr(store, "check_shards"):
                store.check_shards()
                shard_report = store.shard_report()
            ok = store.integrity_ok()
        open_breakers = degraded()
        if not ok and shard_report and shard_report["lost"]:
            # Lost shard files: reads fail typed and runs are flagged
            # partial, but the service keeps answering for every other
            # shard — distinct from single-file corruption.
            status = "store-degraded"
        elif not ok:
            status = "store-corrupt"
        elif open_breakers:
            # Open circuit breakers (store sink spilling, journal down):
            # the service is up and serving, but running in a reduced
            # mode — callers see why, probes still get a 200.
            status = "degraded"
        else:
            status = "ok"
        metrics = self.scheduler.metrics()
        body = {
            "status": status,
            "degraded": open_breakers,
            "store": self.store_path,
            "queue_depth": metrics["queue_depth"],
            "running": metrics["running"],
            "uptime_s": round(metrics["uptime_s"], 3),
        }
        if shard_report is not None:
            body["shards"] = shard_report
        fabric = self._fabric()
        if fabric is not None and hasattr(fabric, "workers"):
            body["fleet"] = fabric.workers()
        return json_response(500 if not ok else 200, body)

    def _prometheus(self) -> Response:
        m = self.scheduler.metrics()
        shard_report = None
        with self._store() as store:
            counts = store.counts()
            if hasattr(store, "shard_report"):
                shard_report = store.shard_report()
        lines = [
            "# HELP repro_queue_depth Campaigns waiting to run.",
            "# TYPE repro_queue_depth gauge",
            f"repro_queue_depth {m['queue_depth']}",
            "# HELP repro_campaigns_running Campaigns currently executing.",
            "# TYPE repro_campaigns_running gauge",
            f"repro_campaigns_running {m['running']}",
            "# HELP repro_campaigns_total Campaigns by lifecycle state.",
            "# TYPE repro_campaigns_total gauge",
        ]
        for state in sorted(m["campaign_states"]):
            lines.append(
                f'repro_campaigns_total{{state="{state}"}} '
                f"{m['campaign_states'][state]}"
            )
        lines += [
            "# HELP repro_trials_total Trials finished, by executor status.",
            "# TYPE repro_trials_total counter",
        ]
        for status in sorted(m["trial_statuses"]):
            lines.append(
                f'repro_trials_total{{status="{status}"}} '
                f"{m['trial_statuses'][status]}"
            )
        lines += [
            "# HELP repro_trials_per_second Finished trials per uptime second.",
            "# TYPE repro_trials_per_second gauge",
            f"repro_trials_per_second {m['trials_per_second']:.6f}",
            "# HELP repro_cache_hit_rate Fraction of trials served from cache.",
            "# TYPE repro_cache_hit_rate gauge",
            f"repro_cache_hit_rate {m['cache_hit_rate']:.6f}",
            "# HELP repro_service_uptime_seconds Service uptime.",
            "# TYPE repro_service_uptime_seconds gauge",
            f"repro_service_uptime_seconds {m['uptime_s']:.3f}",
            "# HELP repro_store_rows Warehouse row counts by table.",
            "# TYPE repro_store_rows gauge",
        ]
        for table in ("runs", "trials", "measurements", "metrics", "events"):
            lines.append(f'repro_store_rows{{table="{table}"}} {counts[table]}')
        fabric = m.get("fabric")
        if fabric:
            lines += [
                "# HELP repro_fabric_queue_depth Fabric tasks pending or leased.",
                "# TYPE repro_fabric_queue_depth gauge",
                f"repro_fabric_queue_depth {fabric['depth']}",
                "# HELP repro_fabric_leases Live fabric leases.",
                "# TYPE repro_fabric_leases gauge",
                f"repro_fabric_leases {len(fabric['leases'])}",
                "# HELP repro_fabric_tenant_backlog Pending+leased tasks per tenant.",
                "# TYPE repro_fabric_tenant_backlog gauge",
            ]
            for tenant in sorted(fabric["tenants"]):
                t = fabric["tenants"][tenant]
                lines.append(
                    f'repro_fabric_tenant_backlog{{tenant="{tenant}"}} '
                    f"{t['pending'] + t['leased']}"
                )
            lines += [
                "# HELP repro_fabric_tenant_done Completed tasks per tenant.",
                "# TYPE repro_fabric_tenant_done counter",
            ]
            for tenant in sorted(fabric["tenants"]):
                lines.append(
                    f'repro_fabric_tenant_done{{tenant="{tenant}"}} '
                    f"{fabric['tenants'][tenant]['done']}"
                )
            fleet = fabric.get("workers") or []
            lines += [
                "# HELP repro_fabric_fleet_workers Registered non-exited"
                " workers by state.",
                "# TYPE repro_fabric_fleet_workers gauge",
            ]
            by_state: Dict[str, int] = {}
            for worker in fleet:
                by_state[worker["state"]] = by_state.get(worker["state"], 0) + 1
            for state in sorted(by_state):
                lines.append(
                    f'repro_fabric_fleet_workers{{state="{state}"}} '
                    f"{by_state[state]}"
                )
            lines += [
                "# HELP repro_fabric_worker_heartbeat_age_seconds Seconds"
                " since each worker's last queue contact.",
                "# TYPE repro_fabric_worker_heartbeat_age_seconds gauge",
                "# HELP repro_fabric_worker_leases Leases currently held"
                " per worker.",
                "# TYPE repro_fabric_worker_leases gauge",
            ]
            for worker in fleet:
                name = worker["name"]
                lines.append(
                    "repro_fabric_worker_heartbeat_age_seconds"
                    f'{{worker="{name}"}} {worker["heartbeat_age_s"]:.3f}'
                )
                lines.append(
                    f'repro_fabric_worker_leases{{worker="{name}"}} '
                    f"{worker['leases']}"
                )
        if shard_report is not None:
            lines += [
                "# HELP repro_store_shards Configured warehouse shards.",
                "# TYPE repro_store_shards gauge",
                f"repro_store_shards {shard_report['shards']}",
                "# HELP repro_store_shards_lost Shards whose database"
                " file is missing.",
                "# TYPE repro_store_shards_lost gauge",
                f"repro_store_shards_lost {len(shard_report['lost'])}",
            ]
        return text_response(
            200, "\n".join(lines) + "\n", "text/plain; version=0.0.4"
        )

    # ---------------------------------------------------------------- runs

    def _runs(self) -> Response:
        with self._store() as store:
            runs = []
            for info in store.runs():
                runs.append(
                    {
                        "id": info.id,
                        "name": info.name,
                        "created_at": info.created_at,
                        "note": info.note,
                        "metrics": len(store.query(run=info.id)),
                        "trials": len(store.trial_keys(info.id)),
                    }
                )
        return json_response(200, {"runs": runs})

    def _run_metrics(
        self, run_name: str, resource: str, query: Dict[str, str]
    ) -> Response:
        from repro.store import ResultStore, StoreError

        fmt = resource[len("metrics"):].lstrip(".") or "json"
        if fmt not in ("json", "csv"):
            return error_response(404, f"unknown metrics format: {fmt!r}")
        try:
            with self._store() as store:
                rows = store.query(
                    run=run_name,
                    metric=query.get("metric"),
                    stack=query.get("stack"),
                    cca=query.get("cca"),
                )
        except StoreError as exc:
            return error_response(404, str(exc))
        if fmt == "csv":
            return text_response(200, ResultStore.export_csv(rows), "text/csv")
        return Response(
            200,
            (ResultStore.export_json(rows) + "\n").encode(),
            "application/json",
        )

    def _run_diff(
        self, run_a: str, run_b: str, query: Dict[str, str]
    ) -> Response:
        from repro.store import StoreError, diff_runs

        try:
            with self._store() as store:
                diff = diff_runs(
                    store,
                    run_a,
                    run_b,
                    metric=query.get("metric", "conf"),
                    threshold=float(query.get("threshold", 0.5)),
                    atol=float(query.get("atol", 0.0)),
                )
        except StoreError as exc:
            return error_response(404, str(exc))
        return json_response(
            200,
            {
                "run_a": diff.run_a,
                "run_b": diff.run_b,
                "metric": diff.metric,
                "threshold": diff.threshold,
                "clean": diff.clean,
                "compared": diff.compared,
                "added": [list(s) for s in diff.added],
                "removed": [list(s) for s in diff.removed],
                "changed": [
                    {
                        "subject": list(d.subject),
                        "before": d.before,
                        "after": d.after,
                        "delta": d.delta,
                    }
                    for d in diff.changed
                ],
                "flips": [
                    {
                        "subject": list(f.subject),
                        "before": f.before,
                        "after": f.after,
                        "label": f.label(),
                    }
                    for f in diff.flips
                ],
            },
        )

    def _run_heatmap(self, run_name: str, query: Dict[str, str]) -> Response:
        from repro.store import StoreError
        from repro.viz.store import stored_heatmap_figure

        try:
            with self._store() as store:
                figure = stored_heatmap_figure(
                    store, run_name, metric=query.get("metric", "conf")
                )
        except (StoreError, ValueError) as exc:
            return error_response(404, str(exc))
        return Response(200, figure.to_svg().encode(), "image/svg+xml")

    def _run_peer_matrix(
        self, run_name: str, query: Dict[str, str]
    ) -> Response:
        from repro.store import StoreError
        from repro.viz.store import stored_peer_matrix_figure

        try:
            with self._store() as store:
                figure = stored_peer_matrix_figure(
                    store, run_name, metric=query.get("metric", "peer_conf")
                )
        except (StoreError, ValueError) as exc:
            return error_response(404, str(exc))
        return Response(200, figure.to_svg().encode(), "image/svg+xml")


__all__ = [
    "ServiceRouter",
    "Response",
    "LongPoll",
    "EventStream",
    "json_response",
    "text_response",
    "error_response",
    "no_content",
    "sse_chunk",
    "sse_final",
    "MAX_BODY_BYTES",
    "TERMINAL_STATES",
]
