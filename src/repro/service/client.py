"""``ServiceClient``: a stdlib HTTP client for the campaign service.

Wraps the JSON REST API of :mod:`repro.service.server` with typed
helpers: submit a campaign spec, wait for (or stream) its progress, and
fetch stored results — metrics, diffs, heatmaps — without touching the
simulator.  Built on ``urllib.request`` so the client works anywhere the
package does.

Quick start::

    from repro.service import ServiceClient

    client = ServiceClient("http://127.0.0.1:8437")
    campaign = client.submit({"kind": "matrix", "stacks": ["quiche"],
                              "duration_s": 6, "trials": 2})
    final = client.wait(campaign["id"])
    print(final["state"], client.metrics(final["runs"][0]))
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
import zlib
from typing import Iterator, List, Mapping, Optional
from urllib.parse import quote, urlencode

from repro.faults import inject
from repro.faults.retry import RetryPolicy


class ServiceError(RuntimeError):
    """A service request failed; carries the HTTP status and message."""

    def __init__(self, status: int, message: str, retry_after_s: Optional[int] = None):
        self.status = status
        self.retry_after_s = retry_after_s
        super().__init__(f"HTTP {status}: {message}")


class CampaignFailed(ServiceError):
    """Waited-on campaign reached a non-``done`` terminal state."""

    def __init__(self, snapshot: dict):
        self.snapshot = snapshot
        super().__init__(
            200, f"campaign {snapshot.get('id')} {snapshot.get('state')}: "
            f"{snapshot.get('error')}"
        )


class ServiceClient:
    """Talk to a running ``repro serve`` instance.

    ``reconnect`` is the unified :class:`RetryPolicy` behind every
    long-poll/stream page: a dropped connection (status 0) is retried
    with seeded-jitter backoff bounded by the policy's deadline instead
    of surfacing raw urllib errors mid-stream.  The jitter seed derives
    from the base URL, so a fleet of watchers de-synchronises its
    reconnect storms deterministically.
    """

    def __init__(
        self,
        base_url: str,
        timeout_s: float = 30.0,
        reconnect: Optional[RetryPolicy] = None,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        if reconnect is None:
            reconnect = RetryPolicy(
                max_attempts=None,
                backoff_s=0.2,
                backoff_cap_s=5.0,
                deadline_s=60.0,
                jitter=0.5,
                seed=zlib.crc32(self.base_url.encode()),
            )
        self.reconnect = reconnect

    # ------------------------------------------------------------ plumbing

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Mapping] = None,
        query: Optional[Mapping] = None,
        timeout_s: Optional[float] = None,
    ):
        url = self.base_url + path
        if query:
            url += "?" + urlencode({k: v for k, v in query.items() if v is not None})
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(dict(body)).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            url, data=data, headers=headers, method=method
        )
        try:
            inject.fault_point("client.request", method=method, path=path)
            with urllib.request.urlopen(
                request, timeout=timeout_s or self.timeout_s
            ) as response:
                raw = response.read()
                content_type = response.headers.get("Content-Type") or ""
                if "json" in content_type:
                    return json.loads(raw.decode() or "null")
                return raw.decode()
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                message = json.loads(raw.decode()).get("error", raw.decode())
            except (ValueError, AttributeError):
                message = raw.decode(errors="replace")
            retry_after = exc.headers.get("Retry-After")
            raise ServiceError(
                exc.code,
                message,
                retry_after_s=int(retry_after) if retry_after else None,
            ) from None
        except (urllib.error.URLError, ConnectionError, TimeoutError, OSError) as exc:
            # Transport-level failure (refused, reset, DNS, timeout):
            # status 0 marks it retryable for submit_blocking and keeps
            # the raw socket error out of callers' laps.
            raise ServiceError(0, f"connection failed: {exc}") from exc

    def request(
        self,
        method: str,
        path: str,
        body: Optional[Mapping] = None,
        query: Optional[Mapping] = None,
        timeout_s: Optional[float] = None,
    ):
        """Public raw-request escape hatch (fabric worker protocol, new
        endpoints): same JSON handling and typed errors as every helper."""
        return self._request(
            method, path, body=body, query=query, timeout_s=timeout_s
        )

    # ------------------------------------------------------------- service

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics_text(self) -> str:
        """The raw Prometheus exposition of ``GET /metrics``."""
        return self._request("GET", "/metrics")

    # ----------------------------------------------------------- campaigns

    def submit(
        self, spec: Mapping, priority: int = 0, tenant: Optional[str] = None
    ) -> dict:
        """POST a campaign spec; returns the accepted campaign snapshot.

        Raises :class:`ServiceError` on rejection — status 400 for an
        invalid spec, 429 (with ``retry_after_s`` set) when the queue or
        the tenant's quota is full.
        """
        payload = dict(spec)
        if priority:
            payload["priority"] = priority
        if tenant:
            payload["tenant"] = tenant
        return self._request("POST", "/campaigns", body=payload)

    def submit_blocking(
        self,
        spec: Mapping,
        priority: int = 0,
        give_up_after_s: float = 60.0,
        retry: Optional[RetryPolicy] = None,
        tenant: Optional[str] = None,
    ) -> dict:
        """Submit, retrying 429 backpressure and transport failures.

        Retries are driven by a :class:`RetryPolicy` (attempts unlimited,
        bounded by ``give_up_after_s`` total) honouring the server's
        ``Retry-After`` when present; pass ``retry`` to override — e.g.
        with a fake-sleep policy in tests.
        """
        if retry is None:
            retry = RetryPolicy(
                max_attempts=None, backoff_s=0.5, backoff_cap_s=10.0,
                deadline_s=give_up_after_s,
            )

        def retryable(exc: BaseException) -> bool:
            return (
                isinstance(exc, ServiceError)
                and not isinstance(exc, CampaignFailed)
                and exc.status in (0, 429)
            )

        def delay(attempt: int, exc: BaseException) -> float:
            retry_after = getattr(exc, "retry_after_s", None)
            if retry_after:
                return min(float(retry_after), retry.backoff_cap_s)
            return retry.backoff(attempt)

        return retry.call(
            lambda: self.submit(spec, priority=priority, tenant=tenant),
            retryable=retryable,
            delay=delay,
        )

    def campaigns(self) -> List[dict]:
        return self._request("GET", "/campaigns")["campaigns"]

    def status(self, campaign_id: str) -> dict:
        return self._request("GET", f"/campaigns/{quote(campaign_id, safe='')}")

    def cancel(self, campaign_id: str) -> dict:
        return self._request(
            "POST", f"/campaigns/{quote(campaign_id, safe='')}/cancel"
        )

    def events(
        self, campaign_id: str, after: int = 0, timeout_s: float = 10.0
    ) -> dict:
        """One long-poll: events past ``after`` plus the campaign state."""
        return self._request(
            "GET",
            f"/campaigns/{quote(campaign_id, safe='')}/events",
            query={"after": after, "timeout": timeout_s},
            timeout_s=timeout_s + self.timeout_s,
        )

    def _events_reconnecting(
        self, campaign_id: str, after: int, timeout_s: float
    ) -> dict:
        """One long-poll page, reconnecting through ``self.reconnect``.

        Only transport-level drops (status 0) are retried; HTTP errors
        (404, 429...) surface immediately.  The ``after`` cursor makes
        the retried poll idempotent — no event is lost or duplicated
        across a reconnect.
        """

        def retryable(exc: BaseException) -> bool:
            return isinstance(exc, ServiceError) and exc.status == 0

        return self.reconnect.call(
            lambda: self.events(campaign_id, after=after, timeout_s=timeout_s),
            retryable=retryable,
        )

    def stream(
        self, campaign_id: str, after: int = 0, poll_timeout_s: float = 10.0
    ) -> Iterator[dict]:
        """Yield progress events until the campaign reaches a terminal
        state, transparently reconnecting dropped long-polls through the
        client's :class:`RetryPolicy`."""
        cursor = after
        while True:
            page = self._events_reconnecting(
                campaign_id, after=cursor, timeout_s=poll_timeout_s
            )
            for event in page["events"]:
                yield event
            cursor = page["next"]
            if page["state"] in ("done", "failed", "cancelled") and not page["events"]:
                return

    def wait(
        self,
        campaign_id: str,
        timeout_s: Optional[float] = None,
        raise_on_failure: bool = True,
    ) -> dict:
        """Block until the campaign finishes; returns its final snapshot."""
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        cursor = 0
        while True:
            poll = 10.0
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"campaign {campaign_id} still running after {timeout_s}s"
                    )
                poll = min(poll, max(0.1, remaining))
            page = self._events_reconnecting(
                campaign_id, after=cursor, timeout_s=poll
            )
            cursor = page["next"]
            if page["state"] in ("done", "failed", "cancelled"):
                snapshot = self.status(campaign_id)
                if raise_on_failure and snapshot["state"] != "done":
                    raise CampaignFailed(snapshot)
                return snapshot

    # ---------------------------------------------------------------- runs

    def runs(self) -> List[dict]:
        return self._request("GET", "/runs")["runs"]

    def metrics(
        self,
        run: str,
        fmt: str = "json",
        metric: Optional[str] = None,
        stack: Optional[str] = None,
        cca: Optional[str] = None,
    ):
        """One run's metric rows — parsed JSON rows, or CSV text."""
        payload = self._request(
            "GET",
            f"/runs/{quote(run, safe='')}/metrics.{fmt}",
            query={"metric": metric, "stack": stack, "cca": cca},
        )
        if fmt == "json" and isinstance(payload, str):
            return json.loads(payload)
        return payload

    def diff(
        self, run_a: str, run_b: str, metric: str = "conf",
        threshold: float = 0.5, atol: float = 0.0,
    ) -> dict:
        return self._request(
            "GET",
            f"/runs/{quote(run_a, safe='')}/diff/{quote(run_b, safe='')}",
            query={"metric": metric, "threshold": threshold, "atol": atol},
        )

    def heatmap_svg(self, run: str, metric: str = "conf") -> str:
        return self._request(
            "GET",
            f"/runs/{quote(run, safe='')}/heatmap.svg",
            query={"metric": metric},
        )

    # -------------------------------------------------------------- fabric

    def fabric_status(self) -> dict:
        """Queue depth, per-tenant backlog and live leases."""
        return self._request("GET", "/fabric/status")

    def fabric_lease(
        self, worker: str, ttl_s: float = 30.0, version: str = ""
    ) -> Optional[dict]:
        """Claim a task for ``worker``; None when the queue is idle, or
        ``{"drain": True}`` when the worker must drain and exit."""
        payload = self._request(
            "POST",
            "/fabric/lease",
            body={"worker": worker, "ttl_s": ttl_s, "version": version},
        )
        return payload or None

    def fabric_workers(self, include_exited: bool = False) -> List[dict]:
        """The fleet registry: per-worker heartbeat age, state, leases."""
        query = {"all": "1"} if include_exited else None
        payload = self._request("GET", "/fabric/workers", query=query)
        return payload.get("workers", [])

    def fabric_drain(self, worker: str) -> dict:
        """Set the durable drain directive for one worker."""
        return self._request(
            "POST", f"/fabric/workers/{quote(worker, safe='')}/drain", body={}
        )

    def fabric_deregister(self, worker: str) -> dict:
        """Report a worker's clean exit."""
        return self._request(
            "POST",
            f"/fabric/workers/{quote(worker, safe='')}/deregister",
            body={},
        )

    def fabric_heartbeat(
        self,
        campaign: str,
        lease_id: str,
        ttl_s: Optional[float] = None,
        progress: Optional[List[dict]] = None,
    ) -> dict:
        return self._request(
            "POST",
            f"/fabric/tasks/{quote(campaign, safe='')}/heartbeat",
            body={
                "lease_id": lease_id,
                "ttl_s": ttl_s,
                "progress": progress or [],
            },
        )

    def fabric_complete(
        self,
        campaign: str,
        lease_id: str,
        summary: Optional[Mapping] = None,
        bundle: Optional[Mapping] = None,
    ) -> dict:
        return self._request(
            "POST",
            f"/fabric/tasks/{quote(campaign, safe='')}/complete",
            body={
                "lease_id": lease_id,
                "summary": dict(summary or {}),
                "bundle": dict(bundle) if bundle is not None else None,
            },
        )

    def fabric_fail(
        self,
        campaign: str,
        lease_id: str,
        error: str,
        retryable: bool = True,
    ) -> dict:
        return self._request(
            "POST",
            f"/fabric/tasks/{quote(campaign, safe='')}/fail",
            body={
                "lease_id": lease_id,
                "error": error,
                "retryable": bool(retryable),
            },
        )


__all__ = ["ServiceClient", "ServiceError", "CampaignFailed"]
