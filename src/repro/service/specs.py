"""Campaign specifications: the service's validated unit of work.

A *campaign spec* is the JSON document a client POSTs to
``/campaigns``: which kind of experiment to run (``conformance``,
``matrix``, ``regression``, ``topology`` or ``peer_conformance``), over
which implementations and network conditions — or, for topology
campaigns, over declarative :mod:`repro.topo` topology documents; for
peer-conformance campaigns, over a ``peers`` CCA group resolved through
the :mod:`repro.ccax` registry — under which measurement protocol.  Parsing is strict —
every field is validated against :mod:`repro.harness.config` and the
stack registry before the campaign is accepted, so a bad request fails
at submit time with a useful message instead of hours into a queue.

Specs are value objects: :meth:`CampaignSpec.canonical` renders the
fully-defaulted spec as a sorted-key JSON document, and
:meth:`CampaignSpec.fingerprint` hashes it.  The scheduler journals the
canonical form into the store's events table, which is what lets a
restarted service reconstruct and resume pending campaigns bit-exactly.

Execution is a thin dispatch onto the existing harness drivers
(:func:`repro.harness.matrix.run_matrix`,
:func:`repro.harness.regression.regression_matrix`), so a campaign run
through the service records exactly the metrics a direct harness call
records — the acceptance criterion the service tests pin down.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, List, Mapping, Optional, Sequence, Tuple

from repro.harness import scenarios
from repro.harness.config import ExperimentConfig, NetworkCondition
from repro.stacks import registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec import Executor
    from repro.store.warehouse import ResultStore
    from repro.topo.spec import TopologySpec


class SpecError(ValueError):
    """A campaign spec failed validation (reported as HTTP 400)."""


#: Campaign kinds the service accepts.
KINDS = ("conformance", "matrix", "regression", "topology", "peer_conformance")

#: Fields a spec document may carry; anything else is a typo we reject.
_ALLOWED_FIELDS = {
    "kind",
    "stacks",
    "ccas",
    "conditions",
    "topologies",
    "peers",
    "host_stack",
    "cca_modules",
    "duration_s",
    "trials",
    "seed",
    "run",
    "note",
}


@dataclass(frozen=True)
class CampaignSpec:
    """One validated campaign: what to measure and how to record it."""

    kind: str
    stacks: Tuple[str, ...] = ()
    ccas: Tuple[str, ...] = ()
    conditions: Tuple[NetworkCondition, ...] = ()
    #: Topology campaigns only: the TopologySpecs to measure.
    topologies: Tuple["TopologySpec", ...] = ()
    #: Peer-conformance campaigns only: the CCA peer group, the neutral
    #: host stack carrying them, and user modules registering external
    #: CCAs (loaded through :func:`repro.ccax.registry.load_modules`).
    peers: Tuple[str, ...] = ()
    host_stack: str = ""
    cca_modules: Tuple[str, ...] = ()
    duration_s: Optional[float] = None
    trials: Optional[int] = None
    seed: Optional[int] = None
    #: Store run name (run-name *prefix* for regression campaigns).
    run: str = ""
    note: str = ""

    # ------------------------------------------------------------ identity

    def canonical(self) -> dict:
        """The fully-defaulted spec as a plain JSON-serialisable dict."""
        doc = {
            "kind": self.kind,
            "stacks": list(self.stacks),
            "ccas": list(self.ccas),
            "conditions": [
                {
                    "bandwidth_mbps": c.bandwidth_mbps,
                    "rtt_ms": c.rtt_ms,
                    "buffer_bdp": c.buffer_bdp,
                }
                for c in self.conditions
            ],
            "duration_s": self.duration_s,
            "trials": self.trials,
            "seed": self.seed,
            "run": self.run,
            "note": self.note,
        }
        # Only topology campaigns carry the key, so every pre-existing
        # kind keeps its historical fingerprint (journaled canonical
        # specs from older runs must keep resuming bit-exactly).
        if self.topologies:
            doc["topologies"] = [t.canonical() for t in self.topologies]
        # Same care for the peer-conformance fields: emitted only when
        # set, so every older kind's fingerprint is untouched.
        if self.peers:
            doc["peers"] = list(self.peers)
        if self.host_stack:
            doc["host_stack"] = self.host_stack
        if self.cca_modules:
            doc["cca_modules"] = list(self.cca_modules)
        return doc

    def fingerprint(self) -> str:
        """Stable content hash of the canonical spec."""
        payload = json.dumps(self.canonical(), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    # ----------------------------------------------------------- execution

    def experiment_config(self) -> ExperimentConfig:
        base = ExperimentConfig()
        overrides = {}
        if self.duration_s is not None:
            overrides["duration_s"] = self.duration_s
        if self.trials is not None:
            overrides["trials"] = self.trials
        if self.seed is not None:
            overrides["seed"] = self.seed
        return replace(base, **overrides) if overrides else base

    def implementations(self) -> List[Tuple[str, str]]:
        """(stack, cca) cells this campaign measures, in a stable order."""
        if self.kind == "peer_conformance":
            from repro.ccax.campaign import DEFAULT_HOST_STACK

            host = self.host_stack or DEFAULT_HOST_STACK
            return [(host, peer) for peer in self.peers]
        stacks = (
            list(self.stacks)
            if self.stacks
            else [p.name for p in registry.quic_stacks()]
        )
        ccas = list(self.ccas) if self.ccas else list(registry.CCAS)
        return [
            (stack, cca)
            for stack in stacks
            for cca in ccas
            if registry.get_stack(stack).supports(cca)
        ]

    def resolved_conditions(self) -> List[NetworkCondition]:
        if self.conditions:
            return list(self.conditions)
        if self.kind == "matrix":
            return scenarios.buffer_sweep()
        return [scenarios.shallow_buffer()]

    def run_name(self) -> str:
        """Store run name (prefix for regression) holding the results."""
        if self.run:
            return self.run
        return f"{self.kind}:{self.fingerprint()[:12]}"

    def run_names(self) -> List[str]:
        """Every store run this campaign writes into."""
        if self.kind == "regression":
            from repro.harness.regression import MILESTONES, milestone_run_name

            return [
                milestone_run_name(m, prefix=self.run_name()) for m in MILESTONES
            ]
        return [self.run_name()]


def parse_campaign_spec(payload: Mapping) -> CampaignSpec:
    """Validate a client JSON document into a :class:`CampaignSpec`.

    Raises :class:`SpecError` with a message precise enough to fix the
    request: unknown fields, unknown stacks/CCAs, unsupported
    (stack, cca) sets, and physically invalid network conditions are all
    caught here, before anything is queued.
    """
    if not isinstance(payload, Mapping):
        raise SpecError("campaign spec must be a JSON object")
    unknown = set(payload) - _ALLOWED_FIELDS
    if unknown:
        raise SpecError(
            f"unknown spec field(s): {', '.join(sorted(unknown))} "
            f"(allowed: {', '.join(sorted(_ALLOWED_FIELDS))})"
        )
    kind = payload.get("kind")
    if kind not in KINDS:
        raise SpecError(
            f"spec.kind must be one of {', '.join(KINDS)}; got {kind!r}"
        )

    stacks = _string_list(payload, "stacks")
    for stack in stacks:
        if stack not in registry.STACKS:
            raise SpecError(
                f"unknown stack {stack!r} "
                f"(known: {', '.join(sorted(registry.STACKS))})"
            )
    ccas = _string_list(payload, "ccas")
    for cca in ccas:
        # Any CCA registered with repro.ccax qualifies — the kernel trio
        # plus the model-based and real-time families, plus externals
        # already loaded into this process.
        if cca not in registry.registered_ccas():
            raise SpecError(
                f"unknown cca {cca!r} "
                f"(registered: {', '.join(registry.registered_ccas())})"
            )

    conditions = []
    raw_conditions = payload.get("conditions", [])
    if not isinstance(raw_conditions, Sequence) or isinstance(
        raw_conditions, (str, bytes)
    ):
        raise SpecError("spec.conditions must be a list of objects")
    for i, raw in enumerate(raw_conditions):
        if not isinstance(raw, Mapping):
            raise SpecError(f"spec.conditions[{i}] must be an object")
        extra = set(raw) - {"bandwidth_mbps", "rtt_ms", "buffer_bdp"}
        if extra:
            raise SpecError(
                f"spec.conditions[{i}] has unknown field(s): "
                f"{', '.join(sorted(extra))}"
            )
        try:
            conditions.append(
                NetworkCondition(
                    bandwidth_mbps=float(raw.get("bandwidth_mbps", 20.0)),
                    rtt_ms=float(raw.get("rtt_ms", 10.0)),
                    buffer_bdp=float(raw.get("buffer_bdp", 1.0)),
                )
            )
        except (TypeError, ValueError) as exc:
            raise SpecError(f"spec.conditions[{i}] is invalid: {exc}")

    topologies = _parse_topologies(payload, kind)
    if kind == "topology":
        if stacks or ccas or conditions:
            raise SpecError(
                "topology campaigns take their stacks, CCAs and links "
                "from each topology's flow entries; spec.stacks, "
                "spec.ccas and spec.conditions must be empty"
            )
        if not topologies:
            raise SpecError(
                "topology campaigns need a non-empty spec.topologies list"
            )

    peers, host_stack, cca_modules = _parse_peer_fields(payload, kind)
    if kind == "peer_conformance" and (stacks or ccas):
        raise SpecError(
            "peer_conformance campaigns name their CCAs in spec.peers "
            "and their host in spec.host_stack; spec.stacks and "
            "spec.ccas must be empty"
        )

    duration_s = _number(payload, "duration_s")
    trials = _number(payload, "trials", integral=True)
    seed = _number(payload, "seed", integral=True)
    try:
        # Construct once so ExperimentConfig's own validation (positive
        # duration, >= 1 trial) runs at submit time.
        spec = CampaignSpec(
            kind=kind,
            stacks=tuple(stacks),
            ccas=tuple(ccas),
            conditions=tuple(conditions),
            topologies=topologies,
            peers=peers,
            host_stack=host_stack,
            cca_modules=cca_modules,
            duration_s=duration_s,
            trials=trials,
            seed=seed,
            run=str(payload.get("run", "") or ""),
            note=str(payload.get("note", "") or ""),
        )
        spec.experiment_config()
    except ValueError as exc:
        if isinstance(exc, SpecError):
            raise
        raise SpecError(str(exc))
    if spec.kind != "topology" and not spec.implementations():
        raise SpecError(
            "spec selects no implementations: none of the requested "
            "stacks supports any of the requested CCAs"
        )
    return spec


def _parse_topologies(payload: Mapping, kind: str) -> Tuple["TopologySpec", ...]:
    raw = payload.get("topologies", [])
    if kind != "topology":
        if raw:
            raise SpecError(
                f"spec.topologies is only valid for kind 'topology', "
                f"not {kind!r}"
            )
        return ()
    if not isinstance(raw, Sequence) or isinstance(raw, (str, bytes)):
        raise SpecError("spec.topologies must be a list of topology objects")
    from repro.topo.spec import TopoSpecError, parse_topology_spec

    topologies = []
    for i, doc in enumerate(raw):
        try:
            topologies.append(parse_topology_spec(doc))
        except TopoSpecError as exc:
            raise SpecError(f"spec.topologies[{i}] is invalid: {exc}")
    names = [t.name for t in topologies]
    if len(set(names)) != len(names):
        raise SpecError("spec.topologies contains duplicate topology names")
    return tuple(topologies)


def _parse_peer_fields(
    payload: Mapping, kind: str
) -> Tuple[Tuple[str, ...], str, Tuple[str, ...]]:
    """Validate peers / host_stack / cca_modules for peer campaigns.

    ``cca_modules`` are loaded *here*, at submit time, so a broken or
    missing user module fails the POST with a 400 instead of hours
    later in a worker — and so the peer names they register are
    available for validation immediately below.
    """
    peers = _string_list(payload, "peers")
    host_stack = str(payload.get("host_stack", "") or "")
    cca_modules = _string_list(payload, "cca_modules")
    if kind != "peer_conformance":
        for field_name, value in (
            ("peers", peers),
            ("host_stack", host_stack),
            ("cca_modules", cca_modules),
        ):
            if value:
                raise SpecError(
                    f"spec.{field_name} is only valid for kind "
                    f"'peer_conformance', not {kind!r}"
                )
        return (), "", ()
    if not peers:
        raise SpecError(
            "peer_conformance campaigns need a non-empty spec.peers list"
        )
    if len(set(peers)) != len(peers):
        raise SpecError("spec.peers contains duplicate peer names")
    if host_stack and host_stack not in registry.STACKS:
        raise SpecError(
            f"unknown host_stack {host_stack!r} "
            f"(known: {', '.join(sorted(registry.STACKS))})"
        )
    from repro.ccax import registry as ccax
    from repro.ccax.campaign import DEFAULT_HOST_STACK

    if cca_modules:
        try:
            ccax.load_modules(cca_modules)
        except Exception as exc:
            raise SpecError(f"spec.cca_modules failed to load: {exc}")
    for peer in peers:
        if not ccax.is_registered(peer):
            raise SpecError(
                f"unknown peer cca {peer!r} "
                f"(registered: {', '.join(ccax.names())})"
            )
    host = host_stack or DEFAULT_HOST_STACK
    profile = registry.get_stack(host)
    for peer in peers:
        if not profile.supports(peer):
            raise SpecError(
                f"host stack {host!r} does not host peer cca {peer!r}"
            )
    return tuple(peers), host_stack, tuple(cca_modules)


def _string_list(payload: Mapping, field_name: str) -> List[str]:
    raw = payload.get(field_name, [])
    if isinstance(raw, str):
        raw = [raw]
    if not isinstance(raw, Sequence):
        raise SpecError(f"spec.{field_name} must be a list of strings")
    out = []
    for item in raw:
        if not isinstance(item, str):
            raise SpecError(f"spec.{field_name} must be a list of strings")
        out.append(item)
    return out


def _number(payload: Mapping, field_name: str, integral: bool = False):
    raw = payload.get(field_name)
    if raw is None:
        return None
    if isinstance(raw, bool) or not isinstance(raw, (int, float)):
        raise SpecError(f"spec.{field_name} must be a number")
    if integral:
        if float(raw) != int(raw):
            raise SpecError(f"spec.{field_name} must be an integer")
        return int(raw)
    return float(raw)


def execute_campaign(
    spec: CampaignSpec,
    store: "ResultStore",
    executor: "Executor",
) -> dict:
    """Run one campaign through the harness, recording into ``store``.

    Returns a small summary dict (runs written, cells measured).  The
    heavy lifting is the same driver a direct harness call uses, which
    is what makes service results bit-identical to local ones.
    """
    if spec.kind == "topology":
        from repro.topo.campaign import run_topology_campaign

        return run_topology_campaign(spec, store, executor)
    if spec.kind == "peer_conformance":
        from repro.ccax.campaign import run_peer_conformance_campaign

        return run_peer_conformance_campaign(spec, store, executor)
    config = spec.experiment_config()
    implementations = spec.implementations()
    if spec.kind == "regression":
        from repro.harness.regression import regression_matrix

        rows = regression_matrix(
            implementations=implementations,
            condition=spec.resolved_conditions()[0],
            config=config,
            executor=executor,
            store=store,
            run_prefix=spec.run_name(),
        )
        cells = sum(len(row.conformance) for row in rows)
    else:
        from repro.harness.matrix import run_matrix

        result = run_matrix(
            conditions=spec.resolved_conditions(),
            implementations=implementations,
            config=config,
            executor=executor,
            store=store,
            store_run=spec.run_name(),
        )
        cells = len(result.measurements)
    return {"runs": spec.run_names(), "cells": cells}


__all__ = [
    "KINDS",
    "CampaignSpec",
    "SpecError",
    "parse_campaign_spec",
    "execute_campaign",
]
