"""The campaign scheduler: a persistent, journaled priority job queue.

Campaigns submitted to the service are queued here, journaled into the
results warehouse's events table, and dispatched to worker threads that
run them through :mod:`repro.exec`.  Design points:

* **Durability** — every state transition (``service_submitted``,
  ``service_started``, ``service_done`` / ``service_failed`` /
  ``service_cancelled``) is journaled into the store *before* the
  in-memory state changes.  :meth:`Scheduler.resume_pending` replays the
  journal at startup and re-enqueues every campaign whose last recorded
  state is not terminal, so a killed or drained service picks up exactly
  where it left off.  Re-running an interrupted campaign is safe and
  cheap: its completed trials are already in the warehouse, so the
  executor satisfies them from the store cache without simulating.
* **Dedup** — workers run each campaign with a fresh
  :class:`repro.store.StoreCache`, so any trial whose content-addressed
  ``trial_identity`` key is already in the warehouse is served without
  simulation.  A resubmitted identical campaign therefore completes
  near-instantly with zero new simulations.
* **Backpressure** — the queue is bounded; :meth:`submit` raises
  :class:`QueueFull` when ``max_pending`` campaigns are waiting, which
  the HTTP layer maps to ``429 Retry-After``.
* **Cancellation** — pending campaigns are skipped when dequeued;
  running campaigns are interrupted at the next trial-completion
  boundary (trials already finished stay cached and stored).
* **Drain** — :meth:`shutdown` with ``drain=True`` runs the queue dry
  first; with ``drain=False`` (the SIGTERM path) workers stop after the
  campaign they are on, leaving pending campaigns journaled for the next
  service instance to resume.
"""

from __future__ import annotations

import itertools
import queue
import sqlite3
import threading
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.exec.telemetry import default_clock
from repro.faults import inject
from repro.faults.breaker import BreakerOpen, get_breaker
from repro.service.specs import CampaignSpec, execute_campaign, parse_campaign_spec

#: Journal event names (stored in the warehouse events table).
EVENT_SUBMITTED = "service_submitted"
EVENT_STARTED = "service_started"
EVENT_DONE = "service_done"
EVENT_FAILED = "service_failed"
EVENT_CANCELLED = "service_cancelled"

#: Campaign lifecycle states.
PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
TERMINAL_STATES = (DONE, FAILED, CANCELLED)

_TERMINAL_EVENTS = {EVENT_DONE, EVENT_FAILED, EVENT_CANCELLED}


class QueueFull(RuntimeError):
    """The pending-campaign queue is at capacity (HTTP 429)."""

    def __init__(self, depth: int, retry_after_s: int = 5):
        self.depth = depth
        self.retry_after_s = retry_after_s
        super().__init__(f"campaign queue full ({depth} pending)")


class _Cancelled(Exception):
    """Raised inside a running campaign when cancellation is requested."""


@dataclass
class CampaignJob:
    """In-memory state of one submitted campaign."""

    id: str
    spec: CampaignSpec
    priority: int = 0
    tenant: str = "default"
    state: str = PENDING
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[str] = None
    done: int = 0
    total: int = 0
    statuses: Dict[str, int] = field(default_factory=dict)
    cells: int = 0
    cancel_event: threading.Event = field(default_factory=threading.Event)
    events: List[dict] = field(default_factory=list)

    def snapshot(self) -> dict:
        """JSON-ready status view served by ``GET /campaigns/{id}``."""
        return {
            "id": self.id,
            "kind": self.spec.kind,
            "state": self.state,
            "priority": self.priority,
            "tenant": self.tenant,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "progress": {"done": self.done, "total": self.total},
            "trial_statuses": dict(self.statuses),
            "cells": self.cells,
            "runs": self.spec.run_names(),
            "spec": self.spec.canonical(),
            "events": len(self.events),
        }


class Scheduler:
    """Priority queue + worker pool turning campaign specs into results.

    Parameters
    ----------
    store_path:
        The warehouse every worker records into (and journals through).
        Each worker thread opens its own connection; WAL mode makes the
        concurrent writers safe.
    workers:
        Worker *threads* (each runs one campaign at a time).  ``0`` is
        valid and useful: campaigns queue and journal but nothing runs —
        the drain/resume tests and a paused service use this.
    exec_jobs:
        Worker *processes* each campaign's :class:`~repro.exec.Executor`
        may use for its trials (per-campaign concurrency limit).
    max_pending:
        Bounded-queue capacity; beyond it :meth:`submit` raises
        :class:`QueueFull`.
    clock:
        Injectable time source for every timestamp and long-poll
        deadline the scheduler produces (defaults to the sanctioned
        :func:`repro.exec.telemetry.default_clock` seam).  Tests pass a
        fake monotonically advancing clock instead of sleeping on real
        time.
    """

    def __init__(
        self,
        store_path: str,
        workers: int = 1,
        exec_jobs: int = 1,
        max_pending: int = 64,
        clock: Callable[[], float] = default_clock,
    ):
        self.store_path = str(store_path)
        self.exec_jobs = max(1, int(exec_jobs))
        self.max_pending = max(0, int(max_pending))
        self._clock = clock
        self.started_at = clock()
        self._lock = threading.RLock()
        self._events_cond = threading.Condition(self._lock)
        self._jobs: Dict[str, CampaignJob] = {}
        self._queue: "queue.PriorityQueue" = queue.PriorityQueue()
        self._seq = itertools.count()
        self._id_seq = itertools.count(1)
        self._stopping = False
        self._listeners: List[Callable[[str], None]] = []
        self._workers: List[threading.Thread] = []
        for i in range(max(0, int(workers))):
            thread = threading.Thread(
                target=self._worker_loop, name=f"repro-service-worker-{i}",
                daemon=True,
            )
            thread.start()
            self._workers.append(thread)

    # ------------------------------------------------------------- journal

    def _journal(self, event: str, job: CampaignJob, **payload) -> None:
        # One short-lived connection per journal write: SQLite connections
        # are thread-bound, and journal writes come from both HTTP submit
        # threads and worker threads.  Transitions are rare enough that
        # the open cost is noise next to a single trial.
        #
        # Degradation contract: EVENT_SUBMITTED must land durably before
        # the job is exposed (a failure rejects the submission), but a
        # later transition failing to journal must not kill a running
        # campaign — the breaker opens, /healthz reports degraded, and
        # resume_pending simply re-runs the campaign (idempotent thanks
        # to warehouse dedup).
        from repro.store.sharded import open_store
        from repro.store.warehouse import StoreError

        def write():
            inject.fault_point("service.journal", event=event)
            with open_store(self.store_path) as store:
                store.record_event(
                    event,
                    campaign=job.id,
                    payload={
                        "priority": job.priority,
                        "tenant": job.tenant,
                        "spec": job.spec.canonical(),
                        **payload,
                    },
                )

        breaker = get_breaker("service-journal")
        if not breaker.allow():
            if event == EVENT_SUBMITTED:
                raise BreakerOpen(breaker.name, breaker.status().get("cause"))
            return
        try:
            write()
        except (StoreError, sqlite3.Error, OSError) as exc:
            breaker.record_failure(exc)
            if event == EVENT_SUBMITTED:
                raise
            warnings.warn(
                f"repro.service: journal write for {event!r} failed; "
                f"continuing degraded ({type(exc).__name__}: {exc})"
            )
        else:
            breaker.record_success()

    # -------------------------------------------------------------- submit

    def submit(
        self,
        spec: CampaignSpec,
        priority: int = 0,
        campaign_id: Optional[str] = None,
        tenant: str = "default",
    ) -> CampaignJob:
        """Queue a campaign; returns its job (raises QueueFull/RuntimeError).

        Higher ``priority`` runs earlier; ties run in submission order.
        """
        with self._lock:
            if self._stopping:
                raise RuntimeError("scheduler is shutting down")
            depth = self.queue_depth()
            if self.max_pending and depth >= self.max_pending:
                raise QueueFull(depth)
            if campaign_id is None:
                campaign_id = (
                    f"c{next(self._id_seq):04d}-{spec.fingerprint()[:8]}"
                )
            if campaign_id in self._jobs:
                raise RuntimeError(f"duplicate campaign id {campaign_id!r}")
            job = CampaignJob(
                id=campaign_id,
                spec=spec,
                priority=int(priority),
                tenant=str(tenant or "default"),
                submitted_at=self._clock(),
            )
            # Journal before exposing the job: a crash after this line
            # leaves a resumable record, never a silently lost campaign.
            # The journal commit deliberately happens under the lock so
            # no reader can observe a job whose submitted record could
            # still be lost; the write is a bounded single-row WAL
            # commit, not open-ended I/O.
            # lint: disable=lock-held-blocking -- journal-before-expose durability: the submitted record must be durable before any thread can see the job; bounded single-row WAL commit
            self._journal(EVENT_SUBMITTED, job)
            self._jobs[campaign_id] = job
            self._emit(job, {"event": "state", "state": PENDING})
            # Dispatch seam: the base scheduler hands the job to its
            # in-process worker threads; the fabric Coordinator overrides
            # this to enqueue into the durable leased work queue instead.
            # lint: disable=lock-held-blocking -- in-process dispatch puts on an unbounded PriorityQueue (never blocks); the fabric override must enqueue durably before submit returns or an accepted campaign could vanish on crash
            self._dispatch(job)
        return job

    def _dispatch(self, job: CampaignJob) -> None:
        self._queue.put((-job.priority, next(self._seq), job.id))

    def resume_pending(self) -> List[str]:
        """Re-enqueue campaigns the journal says never finished.

        Scans the store's events table for ``service_*`` records and
        replays every campaign whose latest event is ``submitted`` or
        ``started``.  Returns the resumed campaign ids (in original
        submission order).
        """
        from repro.store.sharded import open_store

        inject.fault_point("service.resume")
        last: Dict[str, Tuple[str, dict]] = {}
        order: List[str] = []
        with open_store(self.store_path) as store:
            journal = store.events()
        for event in journal:
            name = event.get("event", "")
            if not name.startswith("service_"):
                continue
            campaign = event.get("campaign", "")
            if campaign and campaign not in last:
                order.append(campaign)
            if campaign:
                last[campaign] = (name, event)
        resumed = []
        for campaign in order:
            name, event = last[campaign]
            if name in _TERMINAL_EVENTS:
                continue
            # The jobs table is shared with HTTP submit threads; check
            # for an already-registered id under the lock (submit would
            # also reject the duplicate, but only with an exception).
            with self._lock:
                already_known = campaign in self._jobs
            if already_known:
                continue
            try:
                spec = parse_campaign_spec(event.get("spec") or {})
            except Exception:
                continue  # journal rows from incompatible versions
            job = self.submit(
                spec,
                priority=int(event.get("priority", 0) or 0),
                campaign_id=campaign,
                tenant=str(event.get("tenant", "default") or "default"),
            )
            self._emit(job, {"event": "resumed"})
            resumed.append(job.id)
        return resumed

    # -------------------------------------------------------------- status

    def job(self, campaign_id: str) -> Optional[CampaignJob]:
        with self._lock:
            return self._jobs.get(campaign_id)

    def jobs(self) -> List[CampaignJob]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.submitted_at)

    def queue_depth(self) -> int:
        with self._lock:
            return sum(1 for j in self._jobs.values() if j.state == PENDING)

    def running_count(self) -> int:
        with self._lock:
            return sum(1 for j in self._jobs.values() if j.state == RUNNING)

    def cancel(self, campaign_id: str) -> bool:
        """Request cancellation; True if the campaign can still stop."""
        with self._lock:
            job = self._jobs.get(campaign_id)
            if job is None or job.state in TERMINAL_STATES:
                return False
            job.cancel_event.set()
            if job.state == PENDING:
                # Mark now (journal included, so a restart doesn't resume
                # it); the worker discards the queue entry when dequeued.
                # lint: disable=lock-held-blocking -- cancel must journal before the state flip is visible, or a crash between the two resurrects a cancelled campaign; bounded single-row WAL commit
                self._journal(EVENT_CANCELLED, job)
                self._finish(job, CANCELLED, None)
            return True

    def metrics(self) -> dict:
        """Counter snapshot feeding the Prometheus endpoint."""
        with self._lock:
            states: Dict[str, int] = {}
            statuses: Dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
                for status, count in job.statuses.items():
                    statuses[status] = statuses.get(status, 0) + count
            uptime = max(1e-9, self._clock() - self.started_at)
            finished = statuses.get("ok", 0) + statuses.get("cached", 0)
            return {
                "queue_depth": states.get(PENDING, 0),
                "running": states.get(RUNNING, 0),
                "campaign_states": states,
                "trial_statuses": statuses,
                "trials_per_second": finished / uptime,
                "cache_hit_rate": (
                    statuses.get("cached", 0) / finished if finished else 0.0
                ),
                "uptime_s": uptime,
                "workers": len(self._workers),
            }

    # -------------------------------------------------------------- events

    def add_event_listener(self, listener: Callable[[str], None]) -> None:
        """Register a callback fired (with the campaign id) after every
        emitted event.  The async front door bridges this into its event
        loop via ``call_soon_threadsafe``; callbacks must not block."""
        with self._lock:
            self._listeners.append(listener)

    def _emit(self, job: CampaignJob, event: dict) -> None:
        with self._events_cond:
            job.events.append(
                {"seq": len(job.events), "time": self._clock(), **event}
            )
            self._events_cond.notify_all()
            listeners = list(self._listeners)
        for listener in listeners:
            try:
                listener(job.id)
            except Exception:  # noqa: BLE001 - listeners must not kill emits
                pass

    def events_since(self, campaign_id: str, after: int = 0) -> List[dict]:
        with self._lock:
            job = self._jobs.get(campaign_id)
            if job is None:
                return []
            return list(job.events[max(0, after):])

    def wait_events(
        self, campaign_id: str, after: int = 0, timeout: float = 10.0
    ) -> List[dict]:
        """Long-poll: block until events beyond ``after`` exist (or timeout)."""
        deadline = self._clock() + max(0.0, timeout)
        with self._events_cond:
            while True:
                job = self._jobs.get(campaign_id)
                if job is None:
                    return []
                if len(job.events) > after:
                    return list(job.events[max(0, after):])
                if job.state in TERMINAL_STATES:
                    return []
                remaining = deadline - self._clock()
                if remaining <= 0:
                    return []
                self._events_cond.wait(remaining)

    # ------------------------------------------------------------- workers

    def _worker_loop(self) -> None:
        while True:
            _prio, _seq, campaign_id = self._queue.get()
            if campaign_id is None:  # shutdown sentinel
                return
            with self._lock:
                job = self._jobs.get(campaign_id)
                if job is None or job.state != PENDING:
                    continue  # cancelled while queued
                job.state = RUNNING
                job.started_at = self._clock()
            self._journal(EVENT_STARTED, job)
            self._emit(job, {"event": "state", "state": RUNNING})
            try:
                summary = self._run_campaign(job)
            except _Cancelled:
                self._journal(EVENT_CANCELLED, job)
                self._finish(job, CANCELLED, None)
            except Exception as exc:  # noqa: BLE001 - report any failure
                error = f"{type(exc).__name__}: {exc}"
                self._journal(EVENT_FAILED, job, error=error)
                self._finish(job, FAILED, error)
            else:
                self._journal(EVENT_DONE, job, **summary)
                with self._lock:
                    job.cells = int(summary.get("cells", 0))
                self._finish(job, DONE, None)

    def _run_campaign(self, job: CampaignJob) -> dict:
        from repro.exec import Executor
        from repro.store import StoreCache, open_store

        def progress(record, done, total):
            with self._lock:
                job.done, job.total = done, total
                job.statuses[record.status] = (
                    job.statuses.get(record.status, 0) + 1
                )
            self._emit(
                job,
                {
                    "event": "trial",
                    "label": record.label,
                    "status": record.status,
                    "done": done,
                    "total": total,
                },
            )
            if job.cancel_event.is_set():
                raise _Cancelled()

        # A fresh store connection and store-backed cache per campaign:
        # trials the warehouse already holds are served without
        # simulation (the service's whole-campaign dedup), and computed
        # trials write through to the warehouse as they complete, so an
        # interrupted campaign loses nothing it finished.
        with open_store(self.store_path) as store:
            cache = StoreCache(store)
            with Executor(
                jobs=self.exec_jobs,
                cache=cache,
                progress=progress,
                store=store,
                store_run=job.spec.run_name(),
            ) as executor:
                summary = execute_campaign(job.spec, store, executor)
                telemetry = executor.telemetry
                summary["exec"] = {
                    "jobs": telemetry.jobs,
                    "ok": telemetry.ok,
                    "cached": telemetry.cached,
                    "wall_s": round(telemetry.wall_s, 4),
                    "mode": telemetry.mode,
                }
        return summary

    def _finish(self, job: CampaignJob, state: str, error: Optional[str]) -> None:
        with self._lock:
            job.state = state
            job.error = error
            job.finished_at = self._clock()
        self._emit(job, {"event": "state", "state": state, "error": error})

    # ------------------------------------------------------------ shutdown

    def shutdown(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop the workers.

        ``drain=True`` finishes every queued campaign first (the
        sentinels sort *after* all real work).  ``drain=False`` — the
        SIGTERM path — stops each worker after the campaign it is
        currently running (sentinels sort *before* pending work); queued
        campaigns stay journaled as pending, ready for
        :meth:`resume_pending` in the next service instance.
        """
        with self._lock:
            if self._stopping:
                return
            self._stopping = True
        sentinel_priority = float("inf") if drain else float("-inf")
        for _ in self._workers:
            self._queue.put((sentinel_priority, next(self._seq), None))
        for thread in self._workers:
            thread.join(timeout)
        # Wake any long-pollers so they observe the final state.
        with self._events_cond:
            self._events_cond.notify_all()


__all__ = [
    "Scheduler",
    "CampaignJob",
    "QueueFull",
    "PENDING",
    "RUNNING",
    "DONE",
    "FAILED",
    "CANCELLED",
    "TERMINAL_STATES",
]
