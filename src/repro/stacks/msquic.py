"""Microsoft msquic.

Table 1: implements CUBIC only (no BBR or Reno at the studied commit).
The paper found msquic CUBIC conformant; no deviations are modelled.
"""

from __future__ import annotations

from repro.netsim.endpoint import ReceiverConfig, SenderConfig
from repro.stacks._common import cubic_variant, variants
from repro.stacks.base import StackProfile

PROFILE = StackProfile(
    name="msquic",
    organization="Microsoft",
    version="e6110b62cd8e0d84e6436bde2504e6bc0702921a",
    sender_config=SenderConfig(mss=1448, loss_style="quic"),
    receiver_config=ReceiverConfig(ack_frequency=2, max_ack_delay=0.025),
    ccas={
        "cubic": variants(cubic_variant("default", note="conformant CUBIC")),
    },
)
