"""H2O quicly.

Table 1: implements CUBIC and Reno.  Both were found conformant; no
deviations are modelled.
"""

from __future__ import annotations

from repro.netsim.endpoint import ReceiverConfig, SenderConfig
from repro.stacks._common import cubic_variant, reno_variant, variants
from repro.stacks.base import StackProfile

PROFILE = StackProfile(
    name="quicly",
    organization="H2O",
    version="d44cc8b21ed0d27ab6d209d0775c3961b2f89f38",
    sender_config=SenderConfig(mss=1448, loss_style="quic"),
    receiver_config=ReceiverConfig(ack_frequency=2, max_ack_delay=0.025),
    ccas={
        "cubic": variants(cubic_variant("default", note="conformant CUBIC")),
        "reno": variants(reno_variant("default", note="conformant Reno")),
    },
)
