"""Shared variant builders for stack profiles."""

from __future__ import annotations

from typing import Dict

from repro.cca.bbr import BBR, BBRConfig
from repro.cca.bbr2 import BBR2, BBR2Config, BBR3, bbr3_config
from repro.cca.cubic import Cubic, CubicConfig
from repro.cca.gcc import GccConfig, GccController
from repro.cca.reno import NewReno
from repro.stacks.base import CCAVariant


def cubic_variant(
    name: str = "default",
    note: str = "",
    **config_kwargs,
) -> CCAVariant:
    """A CUBIC CCAVariant with the given CubicConfig overrides."""
    def factory(mss: int) -> Cubic:
        return Cubic(mss, CubicConfig(**config_kwargs))

    return CCAVariant(name=name, factory=factory, note=note)


def reno_variant(
    name: str = "default",
    note: str = "",
    **reno_kwargs,
) -> CCAVariant:
    """A NewReno CCAVariant with the given constructor overrides."""
    def factory(mss: int) -> NewReno:
        return NewReno(mss, **reno_kwargs)

    return CCAVariant(name=name, factory=factory, note=note)


def bbr_variant(
    name: str = "default",
    note: str = "",
    **config_kwargs,
) -> CCAVariant:
    """A BBR CCAVariant with the given BBRConfig overrides."""
    def factory(mss: int) -> BBR:
        return BBR(mss, BBRConfig(**config_kwargs))

    return CCAVariant(name=name, factory=factory, note=note)


def bbr2_variant(
    name: str = "default",
    note: str = "",
    **config_kwargs,
) -> CCAVariant:
    """A BBRv2 CCAVariant with the given BBR2Config overrides."""
    def factory(mss: int) -> BBR2:
        return BBR2(mss, BBR2Config(**config_kwargs))

    return CCAVariant(name=name, factory=factory, note=note)


def bbr3_variant(
    name: str = "default",
    note: str = "",
    **config_kwargs,
) -> CCAVariant:
    """A BBRv3 CCAVariant with overrides on top of the v3 tuning."""
    def factory(mss: int) -> BBR3:
        return BBR3(mss, bbr3_config(**config_kwargs))

    return CCAVariant(name=name, factory=factory, note=note)


def gcc_variant(
    name: str = "default",
    note: str = "",
    **config_kwargs,
) -> CCAVariant:
    """A GCC CCAVariant with the given GccConfig overrides."""
    def factory(mss: int) -> GccController:
        return GccController(mss, GccConfig(**config_kwargs))

    return CCAVariant(name=name, factory=factory, note=note)


def variants(*items: CCAVariant) -> Dict[str, CCAVariant]:
    """Index CCAVariants by their variant name."""
    return {v.name: v for v in items}
