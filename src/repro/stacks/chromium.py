"""Google chromium (the QUIC stack inside Chrome).

Table 1: implements CUBIC and BBR (no Reno).  chromium CUBIC emulates
two connections — the multiplicative decrease and the Reno-friendly
additive increase are both computed as if the flow were 2 flows — which
the paper's predecessor root-caused and Table 4 fixes by "Emulated flows
reduced from 2 to 1" (1 LoC).  The deviation shows up as Δ-tput = +3 Mbps
with Δ-delay = 0 and conformance 0.6 at 1 BDP (Table 3).
"""

from __future__ import annotations

from repro.netsim.endpoint import ReceiverConfig, SenderConfig
from repro.stacks._common import bbr_variant, cubic_variant, variants
from repro.stacks.base import StackProfile

PROFILE = StackProfile(
    name="chromium",
    organization="Google",
    version="82a3c71cf5bf2502d5ad90489fe20ce8f8cb3fab",
    sender_config=SenderConfig(mss=1448, loss_style="quic"),
    receiver_config=ReceiverConfig(ack_frequency=2, max_ack_delay=0.025),
    ccas={
        "cubic": variants(
            cubic_variant(
                "default",
                note="emulates 2 connections (low conformance, Table 3)",
                emulated_connections=2,
            ),
            cubic_variant(
                "fixed",
                note="Table 4 fix: emulated flows reduced from 2 to 1",
                emulated_connections=1,
            ),
        ),
        "bbr": variants(bbr_variant("default", note="conformant BBR v1")),
    },
)
