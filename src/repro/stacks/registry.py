"""Registry of the studied stacks (Table 1) and all known stacks (Table 2).

The registry is the single lookup point the harness uses: profiles for
the 11 QUIC stacks the paper measures plus the Linux-kernel TCP
reference, and the metadata table of the 22 known IETF QUIC stacks with
the paper's selection criteria (open source / implements CC / stable /
deployed / studied).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.stacks import (
    chromium,
    linux_tcp,
    lsquic,
    msquic,
    mvfst,
    neqo,
    quiche,
    quicgo,
    quicly,
    quinn,
    s2n_quic,
    xquic,
)
from repro.stacks.base import StackProfile

#: The reference implementation every conformance test compares against.
REFERENCE_STACK = "linux"

#: All profiles, reference first (presentation order follows Table 1).
STACKS: Dict[str, StackProfile] = {
    profile.name: profile
    for profile in (
        linux_tcp.PROFILE,
        mvfst.PROFILE,
        chromium.PROFILE,
        msquic.PROFILE,
        quiche.PROFILE,
        lsquic.PROFILE,
        quicgo.PROFILE,
        quicly.PROFILE,
        quinn.PROFILE,
        s2n_quic.PROFILE,
        xquic.PROFILE,
        neqo.PROFILE,
    )
}

from repro.ccax import registry as _ccax

#: The CCAs the paper studies — exactly the registry entries carrying a
#: kernel reference, in registration (= presentation) order.  Derived,
#: not hard-coded, so the study set and the ccax registry cannot drift.
CCAS = _ccax.kernel_reference_ccas()


def registered_ccas() -> Tuple[str, ...]:
    """Every CCA resolvable by name — kernel-referenced or not.

    The superset campaign specs validate against; includes families
    without a kernel reference (bbr2/bbr3/gcc) and any third-party
    registrations loaded from user modules.
    """
    return _ccax.names()


def get_stack(name: str) -> StackProfile:
    """Look up a stack profile by name; raises KeyError with hints."""
    try:
        return STACKS[name]
    except KeyError:
        raise KeyError(
            f"unknown stack {name!r}; known stacks: {sorted(STACKS)}"
        ) from None


def reference() -> StackProfile:
    """The Linux-kernel TCP reference profile."""
    return STACKS[REFERENCE_STACK]


def quic_stacks() -> List[StackProfile]:
    """The 11 studied QUIC stacks (excludes the kernel reference)."""
    return [p for p in STACKS.values() if not p.is_reference]


def implementations(cca: str) -> List[StackProfile]:
    """All QUIC stacks implementing ``cca``, in Table 1 order."""
    return [p for p in quic_stacks() if p.supports(cca)]


def iter_implementations() -> Iterator[Tuple[StackProfile, str]]:
    """Every studied (stack, cca) pair — the paper's 22 implementations."""
    for profile in quic_stacks():
        for cca in CCAS:
            if profile.supports(cca):
                yield profile, cca


@dataclass(frozen=True)
class KnownStack:
    """One row of Table 2: the selection criteria for the study."""

    organization: str
    stack: str
    open_source: bool
    implements_cc: bool
    stable: bool
    deployed: bool
    studied: bool


#: Table 2 verbatim ("-" entries for closed-source stacks map to False).
KNOWN_STACKS: List[KnownStack] = [
    KnownStack("Facebook", "mvfst", True, True, True, True, True),
    KnownStack("Google", "chromium", True, True, True, True, True),
    KnownStack("Microsoft", "msquic", True, True, True, True, True),
    KnownStack("Cloudflare", "quiche", True, True, True, True, True),
    KnownStack("LiteSpeed", "lsquic", True, True, True, True, True),
    KnownStack("Go", "quicgo", True, True, True, True, True),
    KnownStack("H2O", "quicly", True, True, True, True, True),
    KnownStack("Rust", "quinn", True, True, True, True, True),
    KnownStack("Amazon Web Services", "s2n-quic", True, True, True, True, True),
    KnownStack("Alibaba", "xquic", True, True, True, True, True),
    KnownStack("Mozilla", "neqo", True, True, True, True, True),
    KnownStack("Akamai", "akamaiquic", False, False, False, False, False),
    KnownStack("Apple", "applequic", False, False, False, False, False),
    KnownStack("Apache", "ats", True, True, True, False, False),
    KnownStack("F5", "f5", True, False, False, False, False),
    KnownStack("Haskell", "haskellquic", True, False, False, False, False),
    KnownStack("Java", "kwik", True, False, False, False, False),
    KnownStack("nghttp", "ngtcp2", True, False, False, False, False),
    KnownStack("nginx", "nginx", True, False, False, False, False),
    KnownStack("Pico", "picoquic", True, True, False, False, False),
    KnownStack("Python", "aioquic", True, False, True, True, False),
    KnownStack("Quant", "quant", True, True, False, False, False),
]
