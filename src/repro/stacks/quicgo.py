"""quic-go, the de-facto standard QUIC library for Go.

Table 1: implements CUBIC and Reno.  Both were found conformant; no
deviations are modelled.
"""

from __future__ import annotations

from repro.netsim.endpoint import ReceiverConfig, SenderConfig
from repro.stacks._common import cubic_variant, reno_variant, variants
from repro.stacks.base import StackProfile

PROFILE = StackProfile(
    name="quicgo",
    organization="Go",
    version="424a66389c01d10678bfb980cfe6faa8524b42b6",
    sender_config=SenderConfig(mss=1448, loss_style="quic"),
    receiver_config=ReceiverConfig(ack_frequency=2, max_ack_delay=0.025),
    ccas={
        "cubic": variants(cubic_variant("default", note="conformant CUBIC")),
        "reno": variants(reno_variant("default", note="conformant Reno")),
    },
)
