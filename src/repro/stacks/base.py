"""Stack profiles: how a QUIC stack (or kernel TCP) wraps a CCA.

A :class:`StackProfile` bundles everything that distinguishes one stack's
flow from another's in the paper's experiments:

* which CCAs the stack implements (Table 1),
* stack-level transport behaviour (loss-detection style, ACK policy,
  send-timer granularity, MSS),
* per-CCA parameter/feature deviations (the root causes from §5), and
* optional "fixed" variants implementing the modifications of Table 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional

from repro.cca.base import CongestionController
from repro.netsim.endpoint import ReceiverConfig, SenderConfig
from repro.netsim.network import FlowSpec


class UnknownCCAError(KeyError):
    """Raised when a stack does not implement the requested CCA."""


class UnknownVariantError(KeyError):
    """Raised when a (stack, CCA) has no variant with the given name."""


@dataclass(frozen=True)
class CCAVariant:
    """One buildable congestion-controller configuration."""

    #: Variant name: "default" is what the stack ships; "fixed" applies
    #: the paper's Table 4 modification.
    name: str
    factory: Callable[[int], CongestionController]
    #: Free-text description of the deviation or fix (shown in reports).
    note: str = ""


@dataclass(frozen=True)
class StackProfile:
    """A stack's transport behaviour plus its CCA implementations."""

    name: str
    organization: str
    #: Version or commit hash studied by the paper (Table 1).
    version: str
    sender_config: SenderConfig = field(default_factory=SenderConfig)
    receiver_config: ReceiverConfig = field(default_factory=ReceiverConfig)
    #: cca name -> variant name -> CCAVariant.
    ccas: Dict[str, Dict[str, CCAVariant]] = field(default_factory=dict)
    #: Per-CCA overrides of sender_config fields, e.g. a stack whose
    #: send-path artifact does not bite a pacing-driven CCA.
    sender_overrides: Dict[str, dict] = field(default_factory=dict)
    #: True for the kernel-TCP reference stack.
    is_reference: bool = False

    def available_ccas(self) -> list[str]:
        """Explicitly profiled CCAs — the stack's Table 1 row.

        Deliberately excludes registry-hosted families so the paper's
        deviation tables stay readable as published; see
        :meth:`hosted_ccas` for the capability-driven extras.
        """
        return sorted(self.ccas)

    def hosted_ccas(self) -> list[str]:
        """CCAs this stack hosts via ccax capability metadata only."""
        from repro.ccax import registry as ccax

        return sorted(
            info.name
            for info in ccax.entries()
            if info.name not in self.ccas and info.capabilities.hosts(self.name)
        )

    def supports(self, cca: str) -> bool:
        """Explicit profile entry, or hosted via the ccax registry.

        The registry's capability metadata decides hosting for CCAs the
        profile does not list itself (``host_stacks``), which is what
        lets ``registry.implementations()`` pick up newly registered
        families with zero per-stack edits.
        """
        from repro.ccax import registry as ccax

        return cca in self.ccas or ccax.hosted_by(self.name, cca)

    def variant(self, cca: str, variant: str = "default") -> CCAVariant:
        try:
            variants = self.ccas[cca]
        except KeyError:
            fallback = self._registry_variant(cca, variant)
            if fallback is not None:
                return fallback
            raise UnknownCCAError(
                f"stack {self.name!r} does not implement {cca!r} "
                f"(available: {self.available_ccas() + self.hosted_ccas()})"
            ) from None
        try:
            return variants[variant]
        except KeyError:
            raise UnknownVariantError(
                f"{self.name}/{cca} has no variant {variant!r} "
                f"(available: {sorted(variants)})"
            ) from None

    def _registry_variant(
        self, cca: str, variant: str
    ) -> Optional[CCAVariant]:
        """Synthesize a variant for a ccax-hosted CCA, if eligible.

        Hosted CCAs carry exactly one buildable configuration — the
        registered factory — so only ``"default"`` resolves; a stack's
        own deviation variants always require an explicit profile entry.
        """
        from repro.ccax import registry as ccax

        if not ccax.hosted_by(self.name, cca):
            return None
        if variant != "default":
            raise UnknownVariantError(
                f"{self.name}/{cca} is registry-hosted and only has the "
                f"'default' variant, not {variant!r}"
            )
        info = ccax.get(cca)
        return CCAVariant(
            name="default",
            factory=info.build,
            note=f"ccax registry ({info.origin}): "
            f"{info.capabilities.description or info.capabilities.family}",
        )

    def flow_spec(
        self,
        cca: str,
        variant: str = "default",
        label: Optional[str] = None,
        start_time: float = 0.0,
    ) -> FlowSpec:
        """Build a ready-to-run flow for this stack's CCA implementation."""
        chosen = self.variant(cca, variant)
        mss = self.sender_config.mss

        def factory() -> CongestionController:
            return chosen.factory(mss)

        overrides = self.sender_overrides.get(cca, {})
        return FlowSpec(
            label=label or f"{self.name}-{cca}" + ("" if variant == "default" else f"-{variant}"),
            cca_factory=factory,
            sender_config=replace(self.sender_config, **overrides),
            receiver_config=replace(self.receiver_config),
            start_time=start_time,
        )
