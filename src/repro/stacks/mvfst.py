"""Facebook mvfst.

Table 1: implements CUBIC, BBR and Reno.  The paper (and its IMC'22
predecessor) found mvfst BBR multiplies its final sending rate by ~120 %
to improve throughput, which shows up as Δ-tput = +9 Mbps with Δ-delay =
0 — the signature of a pacing (not cwnd) overshoot (§3.3, Fig. 9).
Table 4's fix reduces the pacing gain back to 1 (2 LoC).
"""

from __future__ import annotations

from repro.netsim.endpoint import ReceiverConfig, SenderConfig
from repro.stacks._common import bbr_variant, cubic_variant, reno_variant, variants
from repro.stacks.base import StackProfile

PROFILE = StackProfile(
    name="mvfst",
    organization="Facebook",
    version="65a9c066e742620becacc99b7c0ca86200e6a4c4",
    sender_config=SenderConfig(mss=1448, loss_style="quic"),
    receiver_config=ReceiverConfig(ack_frequency=2, max_ack_delay=0.025),
    ccas={
        "cubic": variants(cubic_variant("default", note="conformant CUBIC")),
        "reno": variants(reno_variant("default", note="conformant Reno")),
        "bbr": variants(
            bbr_variant(
                "default",
                note="sending rate scaled to 120% (low conformance, Table 3)",
                pacing_rate_scale=1.25,
            ),
            bbr_variant(
                "fixed",
                note="Table 4 fix: pacing gain reduced from 1.25 to 1",
                pacing_rate_scale=1.0,
            ),
        ),
    },
)
