"""Cloudflare quiche.

Table 1: implements CUBIC and Reno (no BBR at the studied commit).

quiche CUBIC implements the RFC8312bis §4.9 spurious-congestion-event
rollback — a mechanism *not* present in the Linux kernel: any back-off
whose triggering loss is later deemed spurious is undone.  The paper
found this makes quiche CUBIC dramatically non-conformant (Conformance
0.08 at 1 BDP, Δ-tput = +5.5 Mbps) and that disabling the mechanism
(14 LoC) restores conformance to 0.55 (§5, Fig. 15, Table 4).

Here the rollback lives in two places, mirroring the real split between
stack and CCA: the sender's spurious-loss detector
(:class:`repro.netsim.endpoint.SpuriousUndoConfig`) decides *when* an
event was spurious, and the CUBIC variant with
``spurious_loss_rollback=True`` performs the state restore.  The "fixed"
variant disables both.
"""

from __future__ import annotations

from repro.netsim.endpoint import ReceiverConfig, SenderConfig, SpuriousUndoConfig
from repro.stacks._common import cubic_variant, reno_variant, variants
from repro.stacks.base import StackProfile

PROFILE = StackProfile(
    name="quiche",
    organization="Cloudflare",
    version="9dfeaafb625b08760218def7beb8db133e3f50cb",
    sender_config=SenderConfig(
        mss=1448,
        loss_style="quic",
        spurious_undo=SpuriousUndoConfig(window_rtts=1.0, max_episode_losses=3),
    ),
    receiver_config=ReceiverConfig(ack_frequency=2, max_ack_delay=0.025),
    ccas={
        "cubic": variants(
            cubic_variant(
                "default",
                note="RFC8312bis spurious-loss rollback enabled "
                "(low conformance, Table 3)",
                spurious_loss_rollback=True,
            ),
            cubic_variant(
                "fixed",
                note="Table 4 fix: RFC8312bis rollback disabled",
                spurious_loss_rollback=False,
            ),
        ),
        "reno": variants(reno_variant("default", note="conformant Reno")),
    },
)
