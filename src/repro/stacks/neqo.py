"""Mozilla neqo.

Table 1: implements CUBIC and Reno.  neqo CUBIC had zero conformance at
1 BDP but Conformance-T of 0.62 with (Δ-tput, Δ-delay) = (−6 Mbps,
−5 ms): the whole envelope sits below-left of the reference.  §5 reports
the CCA implementation is compliant with the standards, pointing at a
stack-level artifact — modelled here, like xquic's, as cwnd
mis-accounting (the stack enforces only a fraction of the window its
CCA computes); neqo's is stronger, matching its larger negative offsets.
"""

from __future__ import annotations

from repro.netsim.endpoint import ReceiverConfig, SenderConfig
from repro.stacks._common import cubic_variant, reno_variant, variants
from repro.stacks.base import StackProfile

#: neqo's artifact is stronger than xquic's (−6 Mbps vs −4 Mbps).
_NEQO_CWND_SCALE = 0.45

PROFILE = StackProfile(
    name="neqo",
    organization="Mozilla",
    version="07c2019988a8f0a37f87cbd90f95e906e7b53258",
    sender_config=SenderConfig(
        mss=1448,
        loss_style="quic",
        cwnd_scale=_NEQO_CWND_SCALE,
    ),
    receiver_config=ReceiverConfig(ack_frequency=2, max_ack_delay=0.025),
    ccas={
        "cubic": variants(
            cubic_variant(
                "default",
                note="CCA compliant; stack artifact causes zero conformance",
            ),
        ),
        "reno": variants(reno_variant("default", note="Reno over the same stack")),
    },
)
