"""Alibaba xquic.

Table 1: implements CUBIC, BBR and Reno — and every one of them showed
low conformance (Table 3), which the paper reads as "indications of wider
stack-level issues" (§5): the CCA code itself was verified compliant, so
the deviation must come from the stack around it.

We model the stack-level artifact as congestion-window mis-accounting
(``cwnd_scale`` < 1): the stack effectively enforces only a fraction of
the window its CCA computes, e.g. by counting header/crypto overhead
against the budget.  The CCA code inspected in isolation is fully
compliant — exactly what the paper observed — yet the flow sits
below-left of the reference envelope, matching xquic Reno's signature
(Δ-tput = −4 Mbps, Δ-delay = −3 ms with a high Conformance-T of 0.81).

On top of the stack artifact:

* xquic CUBIC does not implement HyStart (RFC 9406) — the paper verified
  its conformance against kernel CUBIC *with HyStart disabled* rises from
  0.55 to 0.72 (Table 4) but did not attempt the fix;
* xquic BBR sets cwnd gain 2.5 instead of the RFC-recommended 2; the
  Table 4 fix (2 LoC) restores 2.
"""

from __future__ import annotations

from repro.netsim.endpoint import ReceiverConfig, SenderConfig
from repro.stacks._common import bbr_variant, cubic_variant, reno_variant, variants
from repro.stacks.base import StackProfile

#: Fraction of the CCA's cwnd the stack actually keeps in flight.
_XQUIC_CWND_SCALE = 0.75

PROFILE = StackProfile(
    name="xquic",
    organization="Alibaba",
    version="00f622885d91e02c879f8531bc04af7a584faed4",
    sender_config=SenderConfig(
        mss=1448,
        loss_style="quic",
        cwnd_scale=_XQUIC_CWND_SCALE,
    ),
    # The cwnd mis-accounting artifact does not bite BBR, which is pacing
    # driven; xquic BBR's deviation is its cwnd gain (2.5 instead of 2).
    sender_overrides={"bbr": {"cwnd_scale": 1.0}},
    receiver_config=ReceiverConfig(ack_frequency=2, max_ack_delay=0.025),
    ccas={
        "cubic": variants(
            cubic_variant(
                "default",
                note="HyStart missing + stack artifact (low conformance)",
                enable_hystart=False,
            ),
        ),
        "reno": variants(
            reno_variant(
                "default",
                note="CCA compliant; stack artifact causes low conformance",
            ),
        ),
        "bbr": variants(
            bbr_variant(
                "default",
                note="cwnd gain 2.5 instead of 2 (low conformance, Table 3)",
                cwnd_gain=2.5,
            ),
            bbr_variant(
                "fixed",
                note="Table 4 fix: cwnd gain reduced from 2.5 to 2",
                cwnd_gain=2.0,
            ),
        ),
    },
)
