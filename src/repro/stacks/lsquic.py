"""LiteSpeed lsquic.

Table 1: implements CUBIC and BBR.  lsquic CUBIC is the paper's example
that conformance and fairness are correlated but not identical: it scores
a *high* conformance of 0.76 yet "shows some degree of unfairness" in the
pairwise bandwidth-share analysis (§4.3).  We model that as a slightly
softened multiplicative decrease — close enough to kernel CUBIC to keep
the PE overlapping, aggressive enough to tilt bandwidth shares.
"""

from __future__ import annotations

from repro.netsim.endpoint import ReceiverConfig, SenderConfig
from repro.stacks._common import bbr_variant, cubic_variant, variants
from repro.stacks.base import StackProfile

PROFILE = StackProfile(
    name="lsquic",
    organization="LiteSpeed",
    version="108c4e7629a8c10b9a73e3d95be0a1652e620fb9",
    sender_config=SenderConfig(mss=1448, loss_style="quic"),
    receiver_config=ReceiverConfig(ack_frequency=2, max_ack_delay=0.025),
    ccas={
        "cubic": variants(
            cubic_variant(
                "default",
                note="high conformance (0.76) yet mildly unfair (§4.3)",
                beta=0.75,
            ),
        ),
        "bbr": variants(bbr_variant("default", note="conformant BBR v1")),
    },
)
