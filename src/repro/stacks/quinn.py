"""quinn, the de-facto standard QUIC library for Rust.

Table 1: implements CUBIC and Reno.  Both were found conformant; no
deviations are modelled.
"""

from __future__ import annotations

from repro.netsim.endpoint import ReceiverConfig, SenderConfig
from repro.stacks._common import cubic_variant, reno_variant, variants
from repro.stacks.base import StackProfile

PROFILE = StackProfile(
    name="quinn",
    organization="Rust",
    version="f86dd7596d4df31370b294c35501cec8da48b393",
    sender_config=SenderConfig(mss=1448, loss_style="quic"),
    receiver_config=ReceiverConfig(ack_frequency=2, max_ack_delay=0.025),
    ccas={
        "cubic": variants(cubic_variant("default", note="conformant CUBIC")),
        "reno": variants(reno_variant("default", note="conformant Reno")),
    },
)
