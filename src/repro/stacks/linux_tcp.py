"""The Linux kernel TCP reference stack.

This is the stack every QUIC implementation is measured against: kernel
5.13-era TCP with CUBIC (HyStart on), NewReno semantics and BBR v1.
Transport behaviour: SACK-style loss detection with the classic dup
threshold, delayed ACKs (every 2 segments, 40 ms timer), no pacing for
window-based CCAs, fine-grained (hrtimer) send timers.

The extra ``cubic-nohystart`` variant reproduces the paper's Table 4
check that xquic CUBIC is conformant to *TCP CUBIC with HyStart
disabled*.
"""

from __future__ import annotations

from repro.netsim.endpoint import ReceiverConfig, SenderConfig
from repro.stacks._common import bbr_variant, cubic_variant, reno_variant, variants
from repro.stacks.base import StackProfile

PROFILE = StackProfile(
    name="linux",
    organization="Linux kernel",
    version="Linux 5.13.0-44-generic",
    is_reference=True,
    sender_config=SenderConfig(
        mss=1448,
        loss_style="tcp",
        send_timer_granularity=0.0,
    ),
    receiver_config=ReceiverConfig(ack_frequency=2, max_ack_delay=0.040),
    ccas={
        "cubic": variants(
            cubic_variant("default", note="kernel CUBIC, HyStart enabled"),
            cubic_variant(
                "nohystart",
                note="kernel CUBIC with HyStart disabled (Table 4 reference)",
                enable_hystart=False,
            ),
        ),
        "reno": variants(reno_variant("default", note="kernel NewReno")),
        "bbr": variants(bbr_variant("default", note="kernel BBR v1")),
    },
)
