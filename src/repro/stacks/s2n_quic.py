"""Amazon Web Services s2n-quic.

Table 1: implements CUBIC only.  Found conformant; no deviations are
modelled.
"""

from __future__ import annotations

from repro.netsim.endpoint import ReceiverConfig, SenderConfig
from repro.stacks._common import cubic_variant, variants
from repro.stacks.base import StackProfile

PROFILE = StackProfile(
    name="s2n-quic",
    organization="Amazon Web Services",
    version="17826d9df1c59903beadd1733bbe79ed7d67647e",
    sender_config=SenderConfig(mss=1448, loss_style="quic"),
    receiver_config=ReceiverConfig(ack_frequency=2, max_ack_delay=0.025),
    ccas={
        "cubic": variants(cubic_variant("default", note="conformant CUBIC")),
    },
)
