"""Emulated QUIC stacks and the kernel-TCP reference.

Each module in this package profiles one stack from Table 1 of the paper
and encodes the implementation deviations the paper root-caused (§5).
The :mod:`repro.stacks.registry` module aggregates them and carries the
Table 2 metadata of all known IETF QUIC stacks.
"""

from repro.stacks.base import (
    CCAVariant,
    StackProfile,
    UnknownCCAError,
    UnknownVariantError,
)

__all__ = [
    "CCAVariant",
    "StackProfile",
    "UnknownCCAError",
    "UnknownVariantError",
    "get_stack",
    "reference",
    "quic_stacks",
    "implementations",
    "iter_implementations",
    "STACKS",
    "CCAS",
    "REFERENCE_STACK",
    "KNOWN_STACKS",
    "KnownStack",
]


def __getattr__(name):
    # registry imports the per-stack modules, which import this package's
    # base module; resolve registry names lazily to avoid the cycle.
    if name in __all__:
        from repro.stacks import registry

        return getattr(registry, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
