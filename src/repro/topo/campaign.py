"""Topology campaigns: trial jobs, identity, and warehouse recording.

A topology campaign measures K topologies x T trials; the unit of work
is one :class:`~repro.topo.compile.TopoNetwork` run reduced to its
windowed per-flow throughput matrix (see :mod:`repro.topo.metrics`).
Trial identity follows the harness discipline exactly: the seed and
cache key both derive from the topology's canonical fingerprint plus
the measurement protocol, through the same
:func:`repro.harness.cache.cache_key` machinery the conformance
pipeline uses — so serial runs, ``repro.exec`` pools and the campaign
service all dedupe against the same content-addressed trial keys, and
an identical resubmission is served entirely from cache.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.harness.cache import DEFAULT_CACHE, ResultCache, cache_key
from repro.harness.runner import _trial_seed
from repro.topo import metrics
from repro.topo.compile import TopoNetwork
from repro.topo.spec import TopologySpec, parse_topology_spec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec import Executor
    from repro.exec.jobs import Job
    from repro.service.specs import CampaignSpec
    from repro.store.warehouse import ResultStore

#: Window width for the throughput matrices (seconds).  Fixed for the
#: campaign type so trial payloads stay comparable across runs.
WINDOW_S = 1.0

_MSS = 1448


def base_jitter_s(spec: TopologySpec) -> float:
    """Phase-breaking jitter, derived from the tightest link.

    Mirrors :meth:`repro.harness.config.NetworkCondition.jitter_s`: capped
    at a quarter millisecond and below half the bottleneck's packet
    serialization time so jitter can never masquerade as reordering.
    """
    slowest = min(link.bandwidth_mbps for link in spec.links)
    serialization = _MSS * 8 / (slowest * 1e6)
    return min(0.25e-3, serialization / 2)


def bottleneck_bps(spec: TopologySpec) -> float:
    """The topology's tightest link rate, bits per second."""
    return min(link.bandwidth_mbps for link in spec.links) * 1e6


def delivered_capacity_bps(spec: TopologySpec) -> float:
    """Aggregate egress capacity: distinct final-hop links, summed.

    Every delivered bit exits through some flow's last routed link, so
    the sum of those links' rates bounds the topology's deliverable
    throughput — unlike the single tightest link, which under-counts
    parking-lot shapes where cross flows exit on different hops.  For a
    one-link topology this reduces to the bottleneck rate.
    """
    names = spec.link_names()
    last_hops = set()
    for flow in spec.flows:
        route = flow.resolved_route(names)
        last_hops.add(route[0] if flow.direction == "reverse" else route[-1])
    by_name = {link.name: link for link in spec.links}
    return sum(by_name[name].bandwidth_mbps for name in last_hops) * 1e6


def _finite_or_none(value: float) -> Optional[float]:
    return float(value) if np.isfinite(value) else None


def topo_trial_identity(
    spec: TopologySpec,
    duration_s: float,
    base_seed: int,
    trial: int,
    window_s: float = WINDOW_S,
) -> Tuple[int, str]:
    """The (seed, cache key) pair identifying one topology trial."""
    fingerprint = spec.fingerprint()
    seed = _trial_seed(base_seed, "topo", fingerprint, trial)
    key = cache_key(
        kind="topology_trial",
        topology=fingerprint,
        duration=duration_s,
        window=window_s,
        seed=seed,
    )
    return seed, key


def compute_topology_matrix(
    spec_doc: dict,
    duration_s: float,
    base_seed: int,
    trial: int,
    window_s: float = WINDOW_S,
    cache: Optional[ResultCache] = None,
) -> np.ndarray:
    """One trial's windowed per-flow throughput matrix, cached.

    Module-level and argument-picklable (the topology travels as its
    canonical dict) so one trial is one ``repro.exec`` job; the serial
    path calls this exact function, keeping parallel campaigns
    bit-identical to serial ones.
    """
    cache = cache or DEFAULT_CACHE
    spec = parse_topology_spec(spec_doc)
    seed, key = topo_trial_identity(spec, duration_s, base_seed, trial, window_s)

    def compute() -> np.ndarray:
        network = TopoNetwork(spec, seed=seed, base_jitter_s=base_jitter_s(spec))
        network.run(duration_s)
        return metrics.throughput_matrix(network.traces, duration_s, window_s)

    return cache.get_or_compute(key, compute)


def topology_trial_jobs(
    spec: TopologySpec,
    duration_s: float,
    trials: int,
    base_seed: int,
    window_s: float = WINDOW_S,
) -> List["Job"]:
    """One executor job per trial of one topology."""
    from repro.exec.jobs import Job

    jobs = []
    for trial in range(trials):
        _seed, key = topo_trial_identity(
            spec, duration_s, base_seed, trial, window_s
        )
        jobs.append(
            Job(
                fn=compute_topology_matrix,
                args=(spec.canonical(), duration_s, base_seed, trial),
                kwargs={"window_s": window_s},
                key=key,
                label=f"topo {spec.name} trial {trial}",
            )
        )
    return jobs


class TopologyCondition:
    """The warehouse condition describing one topology.

    Duck-types :class:`~repro.harness.config.NetworkCondition` for
    ``ResultStore.record_metrics``: the numeric columns carry the
    tightest link's parameters, and the ``condition`` string column —
    what ``store query --condition`` matches — carries the topology name.
    """

    def __init__(self, spec: TopologySpec):
        tightest = min(spec.links, key=lambda link: link.bandwidth_mbps)
        self.bandwidth_mbps = tightest.bandwidth_mbps
        self.rtt_ms = 2 * sum(link.delay_ms for link in spec.links)
        self.buffer_bdp = (
            tightest.buffer_bdp if tightest.buffer_bytes is None else 0.0
        )
        self._name = spec.name

    def describe(self) -> str:
        return self._name


def aggregate_trials(
    trial_matrices: List[np.ndarray], window_s: float = WINDOW_S
) -> Dict[str, np.ndarray]:
    """Mean per-trial metrics: shares/tputs per flow, jain, convergence."""
    per_trial = [metrics.summarize(m, window_s=window_s) for m in trial_matrices]
    shares = np.mean([t["shares"] for t in per_trial], axis=0)
    tputs = np.mean([t["tput_mbps"] for t in per_trial], axis=0)
    jains = np.array([t["jain"] for t in per_trial], dtype=float)
    convergences = np.array([t["convergence_s"] for t in per_trial], dtype=float)
    return {
        "shares": shares,
        "tput_mbps": tputs,
        "jain": float(jains.mean()),
        "convergence_s": float(np.nanmean(convergences))
        if not np.all(np.isnan(convergences))
        else float("nan"),
    }


def run_topology_campaign(
    spec: "CampaignSpec",
    store: Optional["ResultStore"],
    executor: Optional["Executor"],
) -> dict:
    """Run every topology of a ``"topology"`` campaign and record it.

    Trials run through ``executor`` when given (the scheduler's path —
    parallel, deduped, store-written-through) and serially through the
    default cache otherwise; either way the values come from
    :func:`compute_topology_matrix`, so results are bit-identical.
    Per-flow rows land under ``variant=<flow label>`` with the topology
    name as the condition; one aggregate row per topology carries Jain's
    index, convergence time and bottleneck utilization.
    """
    config = spec.experiment_config()
    duration_s = config.duration_s
    jobs: List["Job"] = []
    spans: List[Tuple[TopologySpec, int, int]] = []
    for topo in spec.topologies:
        topo_jobs = topology_trial_jobs(
            topo, duration_s, config.trials, config.seed
        )
        spans.append((topo, len(jobs), len(jobs) + len(topo_jobs)))
        jobs.extend(topo_jobs)

    if executor is not None:
        values = executor.run(jobs, campaign=spec.run_name())
    else:
        values = [
            job.fn(*job.args, cache=DEFAULT_CACHE, **job.kwargs) for job in jobs
        ]

    run = None
    if store is not None:
        run = store.ensure_run(
            spec.run_name(),
            note=spec.note or "topology fairness/convergence campaign",
            config=spec.canonical(),
        )

    cells = 0
    results: List[dict] = []
    for topo, start, end in spans:
        matrices = [np.asarray(v) for v in values[start:end] if v is not None]
        if not matrices:
            continue
        summary = aggregate_trials(matrices)
        condition = TopologyCondition(topo)
        util = float(
            np.mean([
                metrics.utilization(m, delivered_capacity_bps(topo))
                for m in matrices
            ])
        )
        convergence = _finite_or_none(summary["convergence_s"])
        flows = []
        for i, flow in enumerate(topo.flows):
            flow_metrics = {
                "share": float(summary["shares"][i]),
                "tput_mbps": float(summary["tput_mbps"][i]),
                "convergence_s": convergence,
            }
            if store is not None:
                store.record_metrics(
                    run,
                    stack=flow.stack,
                    cca=flow.cca,
                    variant=flow.label,
                    condition=condition,
                    # NaN round-trips badly through SQL and JSON; a run
                    # that never converged simply has no such metric.
                    metrics={
                        k: v for k, v in flow_metrics.items() if v is not None
                    },
                )
            cells += 1
            flows.append({"label": flow.label, **flow_metrics})
        aggregate = {
            "jain": summary["jain"],
            "convergence_s": convergence,
            "utilization": util,
        }
        if store is not None:
            store.record_metrics(
                run,
                stack="topology",
                cca="aggregate",
                variant="default",
                condition=condition,
                metrics={k: v for k, v in aggregate.items() if v is not None},
            )
        results.append({
            "topology": topo.name,
            "fingerprint": topo.fingerprint(),
            "flows": flows,
            **aggregate,
        })
    return {"runs": spec.run_names(), "cells": cells, "topologies": results}


__all__ = [
    "WINDOW_S",
    "TopologyCondition",
    "aggregate_trials",
    "base_jitter_s",
    "bottleneck_bps",
    "compute_topology_matrix",
    "delivered_capacity_bps",
    "run_topology_campaign",
    "topo_trial_identity",
    "topology_trial_jobs",
]
