"""The topology compiler: a TopologySpec wired into a running network.

:class:`TopoNetwork` generalises the dumbbell
:class:`~repro.netsim.network.Network` from one bottleneck to a route of
queued links.  Each named link becomes (lazily, per used direction) a
:class:`~repro.netsim.link.BottleneckLink` fed by the spec's queue
discipline via :func:`repro.netsim.aqm.make_queue`; hops are glued with
:class:`~repro.netsim.path.Path` segments carrying the link's one-way
propagation delay, and ACKs return on an uncongested path exactly as in
the dumbbell (the paper's reverse path is never the bottleneck).

Bit-identity contract
---------------------
For a degenerate one-link spec, a ``TopoNetwork`` run is **bit-identical**
to ``Network`` with the same seed.  That pins the RNG draw order:

1. master ``Random(seed)``; one ``uniform`` start-offset draw per flow
   (skipped entirely when ``start_spread_s == 0``) — exactly as in
   ``Network.__init__``;
2. queue RNGs are derived from the seed alone (`seed ^ 0x51ED` for the
   first forward link, matching ``Network``), never from the master RNG,
   so adding links or reverse instances cannot perturb flow draws;
3. per flow, in declaration order: one ``getrandbits(32)`` draw per
   forward hop (the hop's ``Path``), then one for the return path — a
   one-link flow therefore draws post-path-then-return-path, exactly the
   dumbbell sequence.

``run`` schedules sender starts exactly like ``Network.run`` and only
then schedules ``end_s`` stops, so degenerate specs keep identical event
sequence numbers too.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.netsim.aqm import make_queue
from repro.netsim.engine import EventLoop
from repro.netsim.link import BottleneckLink
from repro.netsim.endpoint import Receiver, Sender
from repro.netsim.network import FlowResult
from repro.netsim.packet import Packet
from repro.netsim.path import NetemConfig, PERFECT, Path
from repro.netsim.trace import FlowTrace
from repro.stacks import registry
from repro.topo.spec import FlowEntry, LinkEntry, TopologySpec

#: Queue-RNG salts: forward keeps the dumbbell's constant so one-link
#: specs reproduce Network exactly; reverse instances get their own.
_FWD_QUEUE_SALT = 0x51ED
_REV_QUEUE_SALT = 0x7EAF
#: Per-index spread so every link's queue RNG is independent while link
#: index 0 still reduces to ``seed ^ 0x51ED`` (the dumbbell's seed).
_LINK_SALT = 0x9E3779B9


class _LinkInstance:
    """One direction of a named link: serializer + queue + dispatch."""

    def __init__(
        self,
        loop: EventLoop,
        entry: LinkEntry,
        seed: int,
        on_drop,
    ):
        queue = make_queue(
            entry.queue_discipline,
            entry.link_config().queue_capacity(),
            clock=lambda: loop.now,
            rng=random.Random(seed),
        )
        self.entry = entry
        #: flow_id -> Path carrying the packet beyond this link.
        self.next_hop: Dict[int, Path] = {}
        self.link = BottleneckLink(
            loop,
            entry.bandwidth_mbps * 1e6,
            queue,
            on_deliver=self._dispatch,
            on_drop=on_drop,
        )

    def _dispatch(self, packet: Packet) -> None:
        path = self.next_hop.get(packet.flow_id)
        if path is not None:
            path.send(packet)

    @property
    def queue(self):
        return self.link.queue

    @property
    def bytes_sent(self) -> int:
        return self.link.bytes_sent


class TopoNetwork:
    """A wired-up multi-bottleneck experiment, ready to run."""

    def __init__(
        self,
        spec: TopologySpec,
        seed: int = 0,
        base_jitter_s: float = 0.0,
        start_spread_s: Optional[float] = None,
    ):
        spec.validate()
        self.spec = spec
        self.loop = EventLoop()
        self._rng = random.Random(seed)
        spread = spec.start_spread_s if start_spread_s is None else start_spread_s
        self._start_offsets = [
            self._rng.uniform(0.0, spread) if spread > 0 else 0.0
            for _ in spec.flows
        ]

        link_names = spec.link_names()
        self._index = {name: i for i, name in enumerate(link_names)}
        #: Bottleneck drops per flow id (diagnostics), as in ``Network``.
        self.drops_by_flow: Dict[int, int] = {}
        self.forward_links: Dict[str, _LinkInstance] = {
            link.name: _LinkInstance(
                self.loop,
                link,
                seed ^ _FWD_QUEUE_SALT ^ (i * _LINK_SALT),
                self._on_drop,
            )
            for i, link in enumerate(spec.links)
        }
        # Reverse instances are created lazily so forward-only specs pay
        # nothing for the unused direction.
        self._reverse_links: Dict[str, _LinkInstance] = {}
        self._reverse_seed = seed

        self.senders: List[Sender] = []
        self.receivers: List[Receiver] = []
        self.traces: List[FlowTrace] = []
        self._receiver_by_flow: Dict[int, Receiver] = {}

        for flow_id, flow in enumerate(spec.flows):
            self._wire_flow(flow_id, flow, base_jitter_s)

    # ----------------------------------------------------------- wiring

    def _reverse_instance(self, name: str) -> _LinkInstance:
        instance = self._reverse_links.get(name)
        if instance is None:
            i = self._index[name]
            instance = _LinkInstance(
                self.loop,
                self.spec.links[i],
                self._reverse_seed ^ _REV_QUEUE_SALT ^ (i * _LINK_SALT),
                self._on_drop,
            )
            self._reverse_links[name] = instance
        return instance

    def _wire_flow(self, flow_id: int, flow: FlowEntry, base_jitter_s: float) -> None:
        trace = FlowTrace(flow_id, label=flow.label)
        self.traces.append(trace)

        route = list(flow.resolved_route(self.spec.link_names()))
        if flow.direction == "reverse":
            route.reverse()
            instances = [self._reverse_instance(name) for name in route]
        else:
            instances = [self.forward_links[name] for name in route]

        extra_s = flow.extra_delay_ms / 1e3
        profile = registry.get_stack(flow.stack)
        flow_spec = profile.flow_spec(flow.cca, flow.variant, label=flow.label)

        # Hop paths, in route order: every hop but the last is a pure
        # propagation segment; the last carries the merged netem exactly
        # as the dumbbell's post-bottleneck path does.
        for hop, instance in enumerate(instances):
            last = hop == len(instances) - 1
            if last:
                deliver = self._make_receiver_delivery(flow_id)
                netem = NetemConfig(jitter_s=base_jitter_s)
            else:
                deliver = instances[hop + 1].link.send
                netem = PERFECT
            path = Path(
                self.loop,
                instance.entry.delay_ms / 1e3 + (extra_s if last else 0.0),
                deliver=deliver,
                netem=netem,
                rng=random.Random(self._rng.getrandbits(32)),
            )
            instance.next_hop[flow_id] = path

        # Uncongested return path: the route's full one-way propagation.
        return_delay = sum(inst.entry.delay_ms for inst in instances) / 1e3
        sender_box: List[Sender] = []
        return_path = Path(
            self.loop,
            return_delay + extra_s,
            deliver=lambda pkt, box=sender_box: box[0].on_ack(pkt),
            rng=random.Random(self._rng.getrandbits(32)),
        )
        receiver = Receiver(
            self.loop,
            flow_id,
            send_ack=return_path.send,
            config=flow_spec.receiver_config,
            trace=trace,
        )
        self.receivers.append(receiver)
        self._receiver_by_flow[flow_id] = receiver

        sender = Sender(
            self.loop,
            flow_id,
            cca=flow_spec.cca_factory(),
            transmit=instances[0].link.send,
            config=flow_spec.sender_config,
            trace=trace,
        )
        sender_box.append(sender)
        self.senders.append(sender)

    def _make_receiver_delivery(self, flow_id: int):
        def deliver(packet: Packet) -> None:
            self._receiver_by_flow[flow_id].on_packet(packet)
        return deliver

    def _on_drop(self, packet: Packet) -> None:
        self.drops_by_flow[packet.flow_id] = (
            self.drops_by_flow.get(packet.flow_id, 0) + 1
        )

    # -------------------------------------------------------- execution

    def link_instances(self) -> Dict[str, _LinkInstance]:
        """Forward instances plus any materialised reverse ones."""
        out = dict(self.forward_links)
        for name, instance in self._reverse_links.items():
            out[f"{name}:reverse"] = instance
        return out

    def run(self, duration: float) -> List[FlowResult]:
        """Run the experiment for ``duration`` seconds; collect results."""
        for sender, flow, offset in zip(
            self.senders, self.spec.flows, self._start_offsets
        ):
            start_at = flow.start_s + offset
            if start_at <= self.loop.now:
                sender.start()
            else:
                self.loop.schedule_at(start_at, sender.start)
        # end_s stops are scheduled after every start so degenerate specs
        # keep the dumbbell's event sequence numbers bit-exact.
        for sender, flow in zip(self.senders, self.spec.flows):
            if flow.end_s is not None:
                self.loop.schedule_at(flow.end_s, sender.stop)
        self.loop.run(duration)
        for sender in self.senders:
            sender.stop()
        results = []
        for sender, flow, trace in zip(self.senders, self.spec.flows, self.traces):
            results.append(
                FlowResult(
                    label=flow.label,
                    trace=trace,
                    packets_sent=sender.packets_sent,
                    retransmissions=sender.retransmissions,
                    congestion_events=sender._congestion_events,
                    spurious_events=sender.spurious_events,
                )
            )
        return results


def run_topology(
    spec: TopologySpec,
    duration_s: float,
    seed: int = 0,
    base_jitter_s: float = 0.0,
) -> List[FlowResult]:
    """Convenience one-shot topology runner."""
    return TopoNetwork(spec, seed=seed, base_jitter_s=base_jitter_s).run(duration_s)


__all__ = ["TopoNetwork", "run_topology"]
