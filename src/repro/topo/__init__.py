"""repro.topo: declarative topologies and flow specs, first-class.

The subsystem has four layers:

- :mod:`repro.topo.spec` — the declarative :class:`TopologySpec`
  (named queued links + routed flows), strictly parsed and canonically
  fingerprinted like every other spec in the repo;
- :mod:`repro.topo.compile` — the compiler turning a spec into a
  running :class:`TopoNetwork`, bit-identical to the dumbbell
  ``Network`` for degenerate one-link specs;
- :mod:`repro.topo.metrics` — fairness/convergence metrics over the
  windowed per-flow throughput matrix (the trial payload);
- :mod:`repro.topo.campaign` — the ``"topology"`` campaign kind:
  content-addressed trial jobs, store recording, service dispatch.
"""

from repro.topo.compile import TopoNetwork, run_topology
from repro.topo.metrics import (
    convergence_time,
    flow_shares,
    jain_index,
    throughput_matrix,
    utilization,
)
from repro.topo.spec import (
    SHAPES,
    FlowEntry,
    LinkEntry,
    TopologySpec,
    TopoSpecError,
    chain,
    dumbbell,
    load_topology_spec,
    parking_lot,
    parse_topology_spec,
)

__all__ = [
    "SHAPES",
    "FlowEntry",
    "LinkEntry",
    "TopoNetwork",
    "TopoSpecError",
    "TopologySpec",
    "chain",
    "convergence_time",
    "dumbbell",
    "flow_shares",
    "jain_index",
    "load_topology_spec",
    "parking_lot",
    "parse_topology_spec",
    "run_topology",
    "throughput_matrix",
    "utilization",
]
