"""Declarative topology and flow specifications.

A :class:`TopologySpec` describes one heterogeneous-flow scenario the
way CoCo-Beholder describes its testbeds: named links (bandwidth,
one-way delay, queue discipline, buffer) wired into a chain, and
:class:`FlowEntry` rows giving each flow its implementation (stack, CCA,
variant), direction, start/end time, route and extra path delay.

Specs are value objects with exactly the identity discipline of
``service.specs`` campaign specs: :meth:`TopologySpec.canonical` renders
the fully-defaulted spec as a plain JSON-serialisable dict and
:meth:`TopologySpec.fingerprint` hashes its sorted-key JSON form, so a
spec loaded from a differently-ordered JSON document fingerprints
identically.  :func:`parse_topology_spec` is the strict loader: unknown
fields, unknown links in routes, cyclic routes, unknown stacks/CCAs and
unphysical link parameters all fail at parse time with a message precise
enough to fix the document.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Tuple

from repro.netsim.aqm import DISCIPLINES, disciplines
from repro.netsim.network import LinkConfig
from repro.stacks import registry

#: Flow directions: "forward" flows traverse their route left-to-right
#: on the forward link instances; "reverse" flows traverse it
#: right-to-left on the independent reverse instances (full duplex).
DIRECTIONS = ("forward", "reverse")


class TopoSpecError(ValueError):
    """A topology spec failed validation."""


@dataclass(frozen=True)
class LinkEntry:
    """One named full-duplex link of the topology."""

    name: str
    bandwidth_mbps: float = 20.0
    #: One-way propagation delay of this link (the dumbbell's ``rtt/2``).
    delay_ms: float = 25.0
    buffer_bdp: float = 1.0
    buffer_bytes: Optional[int] = None
    queue_discipline: str = "droptail"

    def validate(self) -> None:
        if not self.name:
            raise TopoSpecError("every link needs a non-empty name")
        if self.bandwidth_mbps <= 0:
            raise TopoSpecError(f"link {self.name!r}: bandwidth must be positive")
        if self.delay_ms < 0:
            raise TopoSpecError(f"link {self.name!r}: delay must be non-negative")
        if self.buffer_bdp <= 0 and self.buffer_bytes is None:
            raise TopoSpecError(f"link {self.name!r}: buffer must be positive")
        if self.queue_discipline not in DISCIPLINES:
            raise TopoSpecError(
                f"link {self.name!r}: unknown queue discipline "
                f"{self.queue_discipline!r} (known: {', '.join(disciplines())})"
            )

    def link_config(self) -> LinkConfig:
        """This link as the existing single-bottleneck ``LinkConfig``.

        ``rtt_s`` is twice the one-way delay, which makes a one-link
        topology's queue capacity (``buffer_bdp`` x BDP) and path delays
        bit-identical to the dumbbell :class:`~repro.netsim.network.Network`.
        """
        return LinkConfig(
            bandwidth_bps=self.bandwidth_mbps * 1e6,
            rtt_s=2 * self.delay_ms / 1e3,
            buffer_bdp=self.buffer_bdp if self.buffer_bdp > 0 else 1.0,
            buffer_bytes=self.buffer_bytes,
            queue_discipline=self.queue_discipline,
        )

    def canonical(self) -> dict:
        return {
            "name": self.name,
            "bandwidth_mbps": float(self.bandwidth_mbps),
            "delay_ms": float(self.delay_ms),
            "buffer_bdp": float(self.buffer_bdp),
            "buffer_bytes": self.buffer_bytes,
            "queue_discipline": self.queue_discipline,
        }


@dataclass(frozen=True)
class FlowEntry:
    """One flow: implementation, direction, lifetime and route."""

    label: str
    stack: str = registry.REFERENCE_STACK
    cca: str = "cubic"
    variant: str = "default"
    direction: str = "forward"
    start_s: float = 0.0
    #: Stop the sender at this simulated time (None = run to the end).
    end_s: Optional[float] = None
    #: Link names the flow traverses, in forward orientation; empty means
    #: every link of the topology in declaration order.
    route: Tuple[str, ...] = ()
    #: Extra one-way delay on top of the route's propagation (RTT
    #: heterogeneity, the CoCo-Beholder axis).
    extra_delay_ms: float = 0.0

    def validate(self, link_names: Sequence[str]) -> None:
        if not self.label:
            raise TopoSpecError("every flow needs a non-empty label")
        if self.direction not in DIRECTIONS:
            raise TopoSpecError(
                f"flow {self.label!r}: direction must be one of "
                f"{', '.join(DIRECTIONS)}; got {self.direction!r}"
            )
        if self.start_s < 0:
            raise TopoSpecError(f"flow {self.label!r}: start_s must be >= 0")
        if self.end_s is not None and self.end_s <= self.start_s:
            raise TopoSpecError(
                f"flow {self.label!r}: end_s must be after start_s"
            )
        if self.extra_delay_ms < 0:
            raise TopoSpecError(
                f"flow {self.label!r}: extra_delay_ms must be >= 0"
            )
        try:
            profile = registry.get_stack(self.stack)
        except KeyError:
            raise TopoSpecError(
                f"flow {self.label!r}: unknown stack {self.stack!r} "
                f"(known: {', '.join(sorted(registry.STACKS))})"
            ) from None
        if not profile.supports(self.cca):
            raise TopoSpecError(
                f"flow {self.label!r}: stack {self.stack!r} does not "
                f"implement {self.cca!r} (available: {profile.available_ccas()})"
            )
        try:
            profile.variant(self.cca, self.variant)
        except KeyError as exc:
            raise TopoSpecError(f"flow {self.label!r}: {exc}") from None
        seen = set()
        ordered = {name: i for i, name in enumerate(link_names)}
        previous = -1
        for hop in self.route:
            if hop not in ordered:
                raise TopoSpecError(
                    f"flow {self.label!r}: unroutable — route names "
                    f"unknown link {hop!r} (links: {', '.join(link_names)})"
                )
            if hop in seen:
                raise TopoSpecError(
                    f"flow {self.label!r}: cyclic route — link {hop!r} "
                    "appears twice"
                )
            seen.add(hop)
            if ordered[hop] <= previous:
                raise TopoSpecError(
                    f"flow {self.label!r}: cyclic route — {hop!r} runs "
                    "against the chain's declaration order"
                )
            previous = ordered[hop]

    def resolved_route(self, link_names: Sequence[str]) -> Tuple[str, ...]:
        """The route in forward orientation, defaulted to the full chain."""
        return self.route if self.route else tuple(link_names)

    def canonical(self) -> dict:
        return {
            "label": self.label,
            "stack": self.stack,
            "cca": self.cca,
            "variant": self.variant,
            "direction": self.direction,
            "start_s": float(self.start_s),
            "end_s": None if self.end_s is None else float(self.end_s),
            "route": list(self.route),
            "extra_delay_ms": float(self.extra_delay_ms),
        }


@dataclass(frozen=True)
class TopologySpec:
    """A validated topology: named links in a chain plus its flows."""

    name: str
    links: Tuple[LinkEntry, ...]
    flows: Tuple[FlowEntry, ...]
    #: Phase-breaking start spread (seconds), the dumbbell harness default.
    start_spread_s: float = 0.0

    def validate(self) -> None:
        if not self.name:
            raise TopoSpecError("topology needs a non-empty name")
        if not self.links:
            raise TopoSpecError(f"topology {self.name!r}: at least one link")
        if not self.flows:
            raise TopoSpecError(f"topology {self.name!r}: at least one flow")
        if self.start_spread_s < 0:
            raise TopoSpecError(
                f"topology {self.name!r}: start_spread_s must be >= 0"
            )
        names = [link.name for link in self.links]
        if len(set(names)) != len(names):
            raise TopoSpecError(
                f"topology {self.name!r}: duplicate link names"
            )
        labels = [flow.label for flow in self.flows]
        if len(set(labels)) != len(labels):
            raise TopoSpecError(
                f"topology {self.name!r}: duplicate flow labels"
            )
        for link in self.links:
            link.validate()
        for flow in self.flows:
            flow.validate(names)

    # ------------------------------------------------------------ identity

    def link_names(self) -> List[str]:
        return [link.name for link in self.links]

    def canonical(self) -> dict:
        """The fully-defaulted spec as a plain JSON-serialisable dict."""
        return {
            "name": self.name,
            "links": [link.canonical() for link in self.links],
            "flows": [flow.canonical() for flow in self.flows],
            "start_spread_s": float(self.start_spread_s),
        }

    def fingerprint(self) -> str:
        """Stable content hash of the canonical spec (key-order immune)."""
        payload = json.dumps(self.canonical(), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def describe(self) -> str:
        return (
            f"{self.name}: {len(self.links)} link(s), "
            f"{len(self.flows)} flow(s)"
        )


_LINK_FIELDS = {
    "name", "bandwidth_mbps", "delay_ms", "buffer_bdp", "buffer_bytes",
    "queue_discipline",
}
_FLOW_FIELDS = {
    "label", "stack", "cca", "variant", "direction", "start_s", "end_s",
    "route", "extra_delay_ms",
}
_TOPO_FIELDS = {"name", "links", "flows", "start_spread_s"}


def _reject_unknown(raw: Mapping, allowed: set, what: str) -> None:
    unknown = set(raw) - allowed
    if unknown:
        raise TopoSpecError(
            f"{what} has unknown field(s): {', '.join(sorted(unknown))} "
            f"(allowed: {', '.join(sorted(allowed))})"
        )


def _float(raw: Mapping, field_name: str, default, what: str):
    value = raw.get(field_name, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TopoSpecError(f"{what}.{field_name} must be a number")
    return float(value)


def _parse_link(raw: Mapping, index: int) -> LinkEntry:
    what = f"links[{index}]"
    if not isinstance(raw, Mapping):
        raise TopoSpecError(f"{what} must be an object")
    _reject_unknown(raw, _LINK_FIELDS, what)
    buffer_bytes = raw.get("buffer_bytes")
    if buffer_bytes is not None:
        if isinstance(buffer_bytes, bool) or not isinstance(buffer_bytes, int):
            raise TopoSpecError(f"{what}.buffer_bytes must be an integer")
    return LinkEntry(
        name=str(raw.get("name", "") or ""),
        bandwidth_mbps=_float(raw, "bandwidth_mbps", 20.0, what),
        delay_ms=_float(raw, "delay_ms", 25.0, what),
        buffer_bdp=_float(raw, "buffer_bdp", 1.0, what),
        buffer_bytes=buffer_bytes,
        queue_discipline=str(raw.get("queue_discipline", "droptail")),
    )


def _parse_flow(raw: Mapping, index: int) -> FlowEntry:
    what = f"flows[{index}]"
    if not isinstance(raw, Mapping):
        raise TopoSpecError(f"{what} must be an object")
    _reject_unknown(raw, _FLOW_FIELDS, what)
    route = raw.get("route", [])
    if isinstance(route, str) or not isinstance(route, Sequence):
        raise TopoSpecError(f"{what}.route must be a list of link names")
    if not all(isinstance(hop, str) for hop in route):
        raise TopoSpecError(f"{what}.route must be a list of link names")
    return FlowEntry(
        label=str(raw.get("label", "") or ""),
        stack=str(raw.get("stack", registry.REFERENCE_STACK)),
        cca=str(raw.get("cca", "cubic")),
        variant=str(raw.get("variant", "default")),
        direction=str(raw.get("direction", "forward")),
        start_s=_float(raw, "start_s", 0.0, what),
        end_s=_float(raw, "end_s", None, what),
        route=tuple(route),
        extra_delay_ms=_float(raw, "extra_delay_ms", 0.0, what),
    )


def parse_topology_spec(payload: Mapping) -> TopologySpec:
    """Validate a JSON/dict document into a :class:`TopologySpec`.

    Strict by design: unknown fields, unroutable or cyclic routes,
    unknown stacks/CCAs/disciplines, and unphysical parameters all raise
    :class:`TopoSpecError` here, before anything simulates.
    """
    if not isinstance(payload, Mapping):
        raise TopoSpecError("topology spec must be a JSON object")
    _reject_unknown(payload, _TOPO_FIELDS, "topology spec")
    raw_links = payload.get("links", [])
    raw_flows = payload.get("flows", [])
    for field_name, raw in (("links", raw_links), ("flows", raw_flows)):
        if isinstance(raw, (str, bytes)) or not isinstance(raw, Sequence):
            raise TopoSpecError(f"spec.{field_name} must be a list of objects")
    spec = TopologySpec(
        name=str(payload.get("name", "") or ""),
        links=tuple(_parse_link(raw, i) for i, raw in enumerate(raw_links)),
        flows=tuple(_parse_flow(raw, i) for i, raw in enumerate(raw_flows)),
        start_spread_s=_float(payload, "start_spread_s", 0.0, "spec"),
    )
    spec.validate()
    return spec


def load_topology_spec(path: str) -> TopologySpec:
    """Parse a topology spec from a JSON file."""
    with open(path) as handle:
        try:
            payload = json.load(handle)
        except ValueError as exc:
            raise TopoSpecError(f"{path} is not valid JSON: {exc}") from None
    return parse_topology_spec(payload)


# ------------------------------------------------------- builtin shapes


def _default_stacks(cca: str, preferred: Sequence[str]) -> Sequence[str]:
    """Drop preferred stacks that lack ``cca``; fall back to any that has it.

    Keeps ``dumbbell("bbr")`` working even though e.g. quiche only ships
    cubic/reno — the shapes are about topology, not stack coverage.
    """
    supported = [s for s in preferred if registry.get_stack(s).supports(cca)]
    if len(supported) >= len(preferred):
        return supported
    pad = [
        name for name in sorted(registry.STACKS)
        if name not in supported and registry.get_stack(name).supports(cca)
    ]
    return (supported + pad)[: len(preferred)] or list(preferred)


def dumbbell(cca: str = "cubic", stacks: Sequence[str] = ("linux", "quiche")) -> TopologySpec:
    """The paper's shape: all flows share one bottleneck (degenerate)."""
    stacks = _default_stacks(cca, stacks)
    return parse_topology_spec({
        "name": f"dumbbell-{cca}",
        "links": [
            {"name": "bottleneck", "bandwidth_mbps": 16, "delay_ms": 10},
        ],
        "flows": [
            {"label": f"{stack}-{cca}", "stack": stack, "cca": cca}
            for stack in stacks
        ],
        "start_spread_s": 0.5,
    })


def chain(cca: str = "cubic", stacks: Sequence[str] = ("linux", "quiche")) -> TopologySpec:
    """Two bottlenecks in series; the second is the tighter one."""
    stacks = _default_stacks(cca, stacks)
    return parse_topology_spec({
        "name": f"chain-{cca}",
        "links": [
            {"name": "access", "bandwidth_mbps": 24, "delay_ms": 5},
            {"name": "core", "bandwidth_mbps": 12, "delay_ms": 15},
        ],
        "flows": [
            {"label": f"{stack}-{cca}", "stack": stack, "cca": cca}
            for stack in stacks
        ],
        "start_spread_s": 0.5,
    })


def parking_lot(cca: str = "cubic", stacks: Sequence[str] = ("linux", "quiche")) -> TopologySpec:
    """The classic parking lot: one long flow vs per-hop cross flows.

    The long flow crosses every hop and competes with a one-hop flow on
    each, so its share compounds hop by hop — the scenario where RTT
    bias and multi-bottleneck behaviour separate CCAs that look alike on
    a dumbbell.
    """
    stacks = _default_stacks(cca, stacks)
    long_stack = stacks[0]
    cross_stacks = list(stacks[1:]) or [stacks[0]]
    links = [
        {"name": f"hop{i}", "bandwidth_mbps": 16, "delay_ms": 8}
        for i in range(1, 3 + 1)
    ]
    flows = [
        {"label": f"long-{long_stack}-{cca}", "stack": long_stack, "cca": cca},
    ]
    for i in range(1, 3 + 1):
        stack = cross_stacks[(i - 1) % len(cross_stacks)]
        flows.append({
            "label": f"cross{i}-{stack}-{cca}",
            "stack": stack,
            "cca": cca,
            "route": [f"hop{i}"],
        })
    return parse_topology_spec({
        "name": f"parking-lot-{cca}",
        "links": links,
        "flows": flows,
        "start_spread_s": 0.5,
    })


#: Named shape builders for the CLI matrix and the smoke campaign.
SHAPES = {
    "dumbbell": dumbbell,
    "chain": chain,
    "parking-lot": parking_lot,
}


__all__ = [
    "DIRECTIONS",
    "SHAPES",
    "FlowEntry",
    "LinkEntry",
    "TopoSpecError",
    "TopologySpec",
    "chain",
    "dumbbell",
    "load_topology_spec",
    "parking_lot",
    "parse_topology_spec",
]
