"""Fairness and convergence metrics over topology runs.

The campaign's trial payload is a windowed per-flow throughput matrix —
shape ``(n_flows, n_windows)``, bits per second per window — computed
from the same packet traces every other measurement uses.  Everything
downstream (per-flow share, Jain's fairness index, convergence time,
utilization) derives deterministically from that array, so the matrix
is what gets cached, deduped and persisted as the trial identity.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.netsim.trace import FlowTrace


def throughput_matrix(
    traces: Sequence[FlowTrace],
    duration_s: float,
    window_s: float = 1.0,
) -> np.ndarray:
    """Per-flow delivered throughput per window, bits/second.

    Row *i* is flow *i*'s delivery rate in consecutive ``window_s`` bins
    over ``[0, duration_s)``; a flow that has not started (or already
    ended) simply shows zeros, which is what lets convergence detection
    see late joiners ramp up.
    """
    if duration_s <= 0 or window_s <= 0:
        raise ValueError("duration and window must be positive")
    n_windows = max(1, int(round(duration_s / window_s)))
    matrix = np.zeros((len(traces), n_windows))
    for i, trace in enumerate(traces):
        for record in trace.records:
            w = int(record.arrival_time / window_s)
            if 0 <= w < n_windows:
                matrix[i, w] += record.payload_bytes * 8
    return matrix / window_s


def flow_shares(matrix: np.ndarray) -> np.ndarray:
    """Each flow's fraction of the total delivered bits (sums to 1)."""
    totals = np.asarray(matrix, dtype=float).sum(axis=1)
    aggregate = totals.sum()
    if aggregate <= 0:
        return np.full(len(totals), 1.0 / max(len(totals), 1))
    return totals / aggregate


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: 1 = perfectly fair, 1/n = one flow hogs."""
    x = np.asarray(values, dtype=float)
    if x.size == 0:
        return 1.0
    square_of_sum = float(x.sum()) ** 2
    sum_of_squares = float((x ** 2).sum())
    if sum_of_squares <= 0:
        return 1.0
    return square_of_sum / (x.size * sum_of_squares)


def convergence_time(
    matrix: np.ndarray,
    window_s: float = 1.0,
    tolerance: float = 0.25,
    hold_windows: int = 5,
) -> float:
    """Earliest time after which every flow stays near its final rate.

    A flow has converged once its windowed throughput remains within
    ``tolerance`` (relative) of its steady-state mean — the mean of its
    last ``max(hold_windows, n/4)`` windows — for every subsequent
    window.  The returned time is the latest per-flow convergence point
    in seconds; ``nan`` when any flow never settles (or never starts).
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[1] == 0:
        raise ValueError("matrix must be (n_flows, n_windows)")
    n_windows = matrix.shape[1]
    tail = max(hold_windows, n_windows // 4)
    worst = 0.0
    for row in matrix:
        steady = float(row[-tail:].mean())
        if steady <= 0:
            return float("nan")
        inside = np.abs(row - steady) <= tolerance * steady
        # The convergence point is the window after the last excursion.
        outside = np.nonzero(~inside)[0]
        converged_at = 0 if outside.size == 0 else int(outside[-1]) + 1
        if converged_at >= n_windows:
            return float("nan")
        worst = max(worst, converged_at * window_s)
    return worst


def utilization(matrix: np.ndarray, bottleneck_bps: float) -> float:
    """Aggregate delivered rate as a fraction of the bottleneck rate."""
    if bottleneck_bps <= 0:
        raise ValueError("bottleneck rate must be positive")
    aggregate = float(np.asarray(matrix, dtype=float).sum(axis=0).mean())
    return aggregate / bottleneck_bps


def summarize(
    matrix: np.ndarray,
    window_s: float = 1.0,
    bottleneck_bps: float = 0.0,
) -> dict:
    """The campaign's per-trial metric bundle from one payload matrix."""
    shares = flow_shares(matrix)
    out = {
        "shares": shares,
        "tput_mbps": np.asarray(matrix, dtype=float).mean(axis=1) / 1e6,
        "jain": jain_index(shares),
        "convergence_s": convergence_time(matrix, window_s=window_s),
    }
    if bottleneck_bps > 0:
        out["utilization"] = utilization(matrix, bottleneck_bps)
    return out


__all__: List[str] = [
    "convergence_time",
    "flow_shares",
    "jain_index",
    "summarize",
    "throughput_matrix",
    "utilization",
]
