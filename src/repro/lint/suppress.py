"""Inline suppressions: ``# lint: disable=RULE[,RULE...] -- justification``.

A suppression applies to findings on its own line, or — when the line
holds nothing but the comment — to the next source line.  The
justification after ``--`` is **required**: a silent suppression is
itself reported (rule ``suppression-justification``), so every exception
to an invariant carries its reasoning in the diff that introduced it.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.lint.findings import Finding

SUPPRESSION_RULE = "suppression-justification"

_PATTERN = re.compile(
    r"#\s*lint:\s*disable=(?P<rules>[A-Za-z0-9_,\- ]+?)"
    r"(?:\s*--\s*(?P<why>.*\S))?\s*$"
)


@dataclass
class Suppression:
    line: int  # line the suppression applies to
    rules: Tuple[str, ...]
    justification: str
    used_for: List[str] = field(default_factory=list)


def parse_suppressions(path: str, text: str) -> Tuple[List[Suppression], List[Finding]]:
    """Extract suppressions from source text.

    Returns the suppressions plus findings for any ``disable`` comment
    that lacks a justification.
    """
    suppressions: List[Suppression] = []
    findings: List[Finding] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        match = _PATTERN.search(raw)
        if not match:
            continue
        rules = tuple(
            r.strip() for r in match.group("rules").split(",") if r.strip()
        )
        why = (match.group("why") or "").strip()
        # A comment-only line shields the line below it; a trailing
        # comment shields its own line.
        own_line = raw[: match.start()].strip()
        target = lineno if own_line else lineno + 1
        if not why:
            findings.append(
                Finding(
                    rule=SUPPRESSION_RULE,
                    path=path,
                    line=lineno,
                    message=(
                        "suppression needs a justification: "
                        "'# lint: disable="
                        + ",".join(rules)
                        + " -- <why this is safe>'"
                    ),
                    snippet=raw.strip(),
                )
            )
            continue
        suppressions.append(Suppression(target, rules, why))
    return suppressions, findings


def apply_suppressions(
    findings: List[Finding], by_path: Dict[str, List[Suppression]]
) -> Tuple[List[Finding], List[Finding]]:
    """Split findings into (active, suppressed) using parsed suppressions."""
    active: List[Finding] = []
    suppressed: List[Finding] = []
    index: Dict[Tuple[str, int], List[Suppression]] = {}
    for path, items in by_path.items():
        for sup in items:
            index.setdefault((path, sup.line), []).append(sup)
    for finding in findings:
        hit = None
        for sup in index.get((finding.path, finding.line), []):
            if finding.rule in sup.rules:
                hit = sup
                break
        if hit is not None:
            hit.used_for.append(finding.rule)
            suppressed.append(finding)
        else:
            active.append(finding)
    return active, suppressed


__all__ = [
    "SUPPRESSION_RULE",
    "Suppression",
    "apply_suppressions",
    "parse_suppressions",
]
