"""The checked-in baseline: grandfathered findings that do not fail CI.

The baseline is a JSON multiset of finding identities
``(rule, path, snippet)`` — no line numbers, so entries survive edits
that merely move code.  New findings (not in the baseline) fail the
lint; fixing a grandfathered finding and re-running ``repro lint
--write-baseline`` shrinks the file, which is the burn-down reviewers
watch via ``repro lint --stats``.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import List, Tuple, Union

from repro.lint.findings import Finding

BASELINE_VERSION = 1


class Baseline:
    """Multiset of grandfathered finding identities."""

    def __init__(self, entries: Counter | None = None):
        self._entries: Counter = Counter(entries or {})

    # ------------------------------------------------------------------ io

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Baseline":
        path = Path(path)
        if not path.is_file():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        entries: Counter = Counter()
        for row in data.get("findings", []):
            key = (row["rule"], row["path"], row.get("snippet", ""))
            entries[key] += int(row.get("count", 1))
        return cls(entries)

    @classmethod
    def from_findings(cls, findings: List[Finding]) -> "Baseline":
        return cls(Counter(f.identity() for f in findings))

    def save(self, path: Union[str, Path]) -> None:
        rows = [
            {"rule": rule, "path": file, "snippet": snippet, "count": count}
            for (rule, file, snippet), count in sorted(self._entries.items())
        ]
        payload = {"version": BASELINE_VERSION, "findings": rows}
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    # -------------------------------------------------------------- filter

    def partition(
        self, findings: List[Finding]
    ) -> Tuple[List[Finding], List[Finding]]:
        """Split findings into (new, grandfathered).

        Matching is count-aware: a baseline entry with ``count: 2``
        absorbs at most two identical findings; a third is new.
        """
        budget = Counter(self._entries)
        fresh: List[Finding] = []
        grandfathered: List[Finding] = []
        for finding in sorted(findings, key=lambda f: (f.path, f.line)):
            key = finding.identity()
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                grandfathered.append(finding)
            else:
                fresh.append(finding)
        return fresh, grandfathered

    def __len__(self) -> int:
        return sum(self._entries.values())


__all__ = ["Baseline", "BASELINE_VERSION"]
