"""Runtime lock-order sanitizer: validate the static lock graph by execution.

The static analysis in :mod:`repro.lint.graph` is an approximation — it
merges lock instances per construction site and resolves calls through
annotations and class hierarchies.  This module closes the loop: an
opt-in instrumented lock factory records the acquisition orders that
*actually happen* while the test suite runs, and the recorded orders are
cross-checked against the static graph.  A runtime order that
contradicts the static edges (i.e. makes the merged graph cyclic) means
either a real latent deadlock or a hole in the static model; both are
release blockers.

Usage (the tier-1 suite wires this up via ``tests/conftest.py``)::

    REPRO_LOCK_SANITIZER=1 python -m pytest -x -q

Implementation notes:

* Only locks **constructed in project code** are instrumented — the
  factory inspects the construction frame and passes stdlib/third-party
  construction sites through untouched, so ``queue.Queue`` internals do
  not pollute the graph.
* The wrapper implements the private ``_release_save`` /
  ``_acquire_restore`` / ``_is_owned`` protocol so
  ``threading.Condition`` built on an instrumented lock keeps working,
  and the held-stack is correctly popped across ``Condition.wait``.
* A lock's identity is its construction site ``(file, line)`` — the
  same abstraction the static analysis uses, which is what makes the
  cross-check a direct graph merge.
"""

from __future__ import annotations

import os
import sys
import threading
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

Site = Tuple[str, int]  # (repo-relative posix path, construction line)

_THIS_FILE = os.path.abspath(__file__)


def _caller_site() -> Tuple[str, int]:
    """Construction site: first frame outside this module."""
    frame = sys._getframe(1)
    while frame is not None:
        filename = frame.f_code.co_filename
        if os.path.abspath(filename) != _THIS_FILE:
            return (filename, frame.f_lineno)
        frame = frame.f_back
    return ("<unknown>", 0)


def _normalize(filename: str) -> str:
    """Absolute construction path -> ``src/repro``-relative posix path."""
    path = filename.replace(os.sep, "/")
    marker = "/src/repro/"
    if marker in path:
        return path.split(marker, 1)[1]
    return path


class _SanitizedLock:
    """Wrapper around a real lock that records acquisition order."""

    def __init__(self, inner, site: Site, sanitizer: "LockOrderSanitizer"):
        self._inner = inner
        self._site = site
        self._san = sanitizer

    # ------------------------------------------------------- lock protocol

    def acquire(self, blocking: bool = True, timeout: float = -1):
        self._san._before_acquire(self)
        if timeout == -1:
            ok = self._inner.acquire(blocking)
        else:
            ok = self._inner.acquire(blocking, timeout)
        if ok:
            self._san._push(self)
        return ok

    def release(self):
        self._san._pop(self)
        return self._inner.release()

    def locked(self):
        return self._inner.locked()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc):
        self.release()
        return False

    # -------------------------- Condition compatibility (private protocol)

    def _release_save(self):
        count = self._san._pop_all(self)
        inner_save = getattr(self._inner, "_release_save", None)
        if inner_save is not None:
            return (inner_save(), count)
        self._inner.release()
        return (None, count)

    def _acquire_restore(self, state):
        inner_state, count = state
        inner_restore = getattr(self._inner, "_acquire_restore", None)
        if inner_restore is not None:
            inner_restore(inner_state)
        else:
            self._inner.acquire()
        self._san._push(self, count)

    def _is_owned(self):
        inner_owned = getattr(self._inner, "_is_owned", None)
        if inner_owned is not None:
            return inner_owned()
        # Plain Lock fallback, mirroring threading.Condition._is_owned.
        if self._inner.acquire(False):
            self._inner.release()
            return False
        return True

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<SanitizedLock {self._site[0]}:{self._site[1]}>"


class LockOrderSanitizer:
    """Instrumented ``threading.Lock``/``RLock`` factories + order recorder."""

    def __init__(self, package_roots: Sequence[str] = ("src/repro",)):
        self.package_roots = tuple(
            r.replace(os.sep, "/").rstrip("/") for r in package_roots
        )
        self._orig_lock = None
        self._orig_rlock = None
        self._installed = False
        self._tls = threading.local()
        self._mutex = threading.Lock()  # guards the edge table
        #: (src Site, dst Site) -> occurrence count
        self.edges: Dict[Tuple[Site, Site], int] = {}
        self.sites: Dict[Site, str] = {}  # site -> kind

    @classmethod
    def for_package(cls) -> "LockOrderSanitizer":
        return cls()

    # -------------------------------------------------------- installation

    def _site_if_project(self) -> Optional[Site]:
        filename, lineno = _caller_site()
        path = filename.replace(os.sep, "/")
        for root in self.package_roots:
            if f"/{root}/" in path or path.startswith(f"{root}/"):
                return (_normalize(path), lineno)
        return None

    def install(self) -> None:
        if self._installed:
            return
        self._orig_lock = threading.Lock
        self._orig_rlock = threading.RLock
        sanitizer = self

        def make_lock():
            inner = sanitizer._orig_lock()
            site = sanitizer._site_if_project()
            if site is None:
                return inner
            sanitizer.sites.setdefault(site, "Lock")
            return _SanitizedLock(inner, site, sanitizer)

        def make_rlock():
            inner = sanitizer._orig_rlock()
            site = sanitizer._site_if_project()
            if site is None:
                return inner
            sanitizer.sites.setdefault(site, "RLock")
            return _SanitizedLock(inner, site, sanitizer)

        threading.Lock = make_lock
        threading.RLock = make_rlock
        self._installed = True

    def uninstall(self) -> None:
        if not self._installed:
            return
        threading.Lock = self._orig_lock
        threading.RLock = self._orig_rlock
        self._installed = False

    def __enter__(self) -> "LockOrderSanitizer":
        self.install()
        return self

    def __exit__(self, *exc):
        self.uninstall()
        return False

    # ----------------------------------------------------------- recording

    def _held(self) -> List[_SanitizedLock]:
        held = getattr(self._tls, "held", None)
        if held is None:
            held = []
            self._tls.held = held
        return held

    def _before_acquire(self, lock: _SanitizedLock) -> None:
        held = self._held()
        if any(h is lock for h in held):
            return  # re-entrant acquire: no new ordering
        seen: set = set()
        new_edges = []
        for h in held:
            if h._site == lock._site or h._site in seen:
                continue
            seen.add(h._site)
            new_edges.append((h._site, lock._site))
        if new_edges:
            with self._mutex:
                for edge in new_edges:
                    self.edges[edge] = self.edges.get(edge, 0) + 1

    def _push(self, lock: _SanitizedLock, count: int = 1) -> None:
        held = self._held()
        for _ in range(max(1, count)):
            held.append(lock)

    def _pop(self, lock: _SanitizedLock) -> None:
        held = self._held()
        for i in range(len(held) - 1, -1, -1):
            if held[i] is lock:
                del held[i]
                return

    def _pop_all(self, lock: _SanitizedLock) -> int:
        held = self._held()
        count = sum(1 for h in held if h is lock)
        self._tls.held = [h for h in held if h is not lock]
        return count

    # ------------------------------------------------------------ analysis

    def runtime_cycles(self) -> List[List[Site]]:
        return find_cycles(list(self.edges))

    def crosscheck(self, graph=None) -> Dict:
        """Merge runtime orders into the static lock graph and re-check.

        Returns a report dict; ``report["ok"]`` is False when the runtime
        orders among *this tree's* locks cycle, or when merging them with
        the static edges creates a cycle the static pass could not see.
        A lock belongs to the tree when its construction site translates
        onto the static lock index, or failing that when its file is one
        of the graph's modules (a hole in the static model — still ours).
        Instrumented locks from other trees (e.g. lint-test fixture
        packages under a tmp ``src/repro/``) are reported but never gate.
        """
        if graph is None:
            graph = _default_graph()
        analysis = graph.lock_analysis()
        index = graph.lock_index()
        by_site: Dict[Site, str] = {
            (info["rel"], info["line"]): lock_id
            for lock_id, info in index.items()
        }
        module_rels = {s["rel"] for s in graph.modules.values()}

        def in_tree(site: Site) -> bool:
            return site in by_site or site[0] in module_rels

        translated: List[Tuple[str, str]] = []
        untranslated: List[Tuple[Site, Site]] = []
        project_edges: List[Tuple[Site, Site]] = []
        for (src, dst), _count in sorted(self.edges.items()):
            a, b = by_site.get(src), by_site.get(dst)
            if a and b and a != b:
                translated.append((a, b))
            elif src != dst:
                untranslated.append((src, dst))
            if src != dst and in_tree(src) and in_tree(dst):
                project_edges.append((src, dst))
        merged = sorted(
            set(analysis.edges) | set(translated)
        )
        merged_cycles = find_cycles(merged)
        runtime_cycles = find_cycles(project_edges)
        return {
            "ok": not merged_cycles and not runtime_cycles,
            "locks_instrumented": len(self.sites),
            "runtime_edges": [
                [list(s), list(d), n]
                for (s, d), n in sorted(self.edges.items())
            ],
            "translated_edges": [list(e) for e in translated],
            "untranslated_edges": [
                [list(s), list(d)] for s, d in untranslated
            ],
            "static_edges": [list(e) for e in sorted(analysis.edges)],
            "runtime_cycles": [
                [list(s) for s in c] for c in runtime_cycles
            ],
            "merged_cycles": [list(c) for c in merged_cycles],
        }


def find_cycles(edges: Sequence[Tuple]) -> List[List]:
    """Nodes of every non-trivial SCC in a directed edge list (sorted)."""
    adj: Dict = {}
    nodes = set()
    edge_set = set(edges)
    for src, dst in edges:
        nodes.add(src)
        nodes.add(dst)
        adj.setdefault(src, set()).add(dst)
    index: Dict = {}
    low: Dict = {}
    on_stack = set()
    stack: List = []
    out: List[List] = []
    counter = [0]
    for start in sorted(nodes):
        if start in index:
            continue
        work = [(start, iter(sorted(adj.get(start, ()))))]
        index[start] = low[start] = counter[0]
        counter[0] += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            v, it = work[-1]
            advanced = False
            for w in it:
                if w not in index:
                    index[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(sorted(adj.get(w, ())))))
                    advanced = True
                    break
                if w in on_stack:
                    low[v] = min(low[v], index[w])
            if advanced:
                continue
            work.pop()
            if low[v] == index[v]:
                scc = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.append(w)
                    if w == v:
                        break
                if len(scc) > 1 or (v, v) in edge_set:
                    out.append(sorted(scc))
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[v])
    return sorted(out)


def _default_graph():
    """Build the static graph for ``src/repro`` (for the cross-check)."""
    from repro.lint.config import LintConfig, find_repo_root
    from repro.lint.engine import build_project_graph

    config = LintConfig.for_root(find_repo_root())
    return build_project_graph(config)


__all__ = ["LockOrderSanitizer", "Site", "find_cycles"]
