"""repro.lint: determinism & concurrency static analysis for this repo.

The harness' core guarantees — bit-identical results at any ``--jobs``
count, seeded determinism in the simulator and metric paths, and lock
discipline in the threaded campaign service — are easy to break with a
single stray ``time.time()`` or an unlocked shared-attribute write.
This package encodes those invariants as AST-based rules so they are
machine-checked on every change instead of relying on review vigilance:

* **Determinism pack** (``netsim/``, ``cca/``, ``stacks/``, ``core/``,
  ``harness/``): no wall-clock reads, no unseeded RNG, no iteration
  over sets where order reaches results, no ``id()``-keyed dicts, no
  ``os.environ`` reads outside the config/cache seams.
* **Concurrency pack** (``service/``, ``exec/``, ``store/``): a
  lock-discipline checker that learns which ``self._*`` attributes a
  class protects with its lock and reports unlocked accesses, plus
  rules against SQLite connections crossing threads and blocking calls
  made while a lock is held.
* **Contract pack**: every registered stack passes the full
  :class:`~repro.stacks.base.StackProfile` field set, every CCA
  subclass implements the required hook surface, and every CLI
  subcommand is documented in README/docs.

Entry points: ``repro lint`` (CLI), :func:`repro.lint.engine.lint_paths`
(API).  Findings can be suppressed inline with
``# lint: disable=RULE -- justification`` or grandfathered in the
checked-in ``lint-baseline.json``.
"""

from repro.lint.baseline import Baseline
from repro.lint.config import LintConfig, find_repo_root
from repro.lint.engine import LintReport, build_project_graph, lint_paths
from repro.lint.findings import Finding, render_findings
from repro.lint.graph import ProjectGraph, build_graph, extract_summary
from repro.lint.rules import all_rules
from repro.lint.sanitizer import LockOrderSanitizer

__all__ = [
    "Baseline",
    "Finding",
    "LintConfig",
    "LintReport",
    "LockOrderSanitizer",
    "ProjectGraph",
    "all_rules",
    "build_graph",
    "build_project_graph",
    "extract_summary",
    "find_repo_root",
    "lint_paths",
    "render_findings",
]
