"""CLI plumbing for ``repro lint`` (registered from :mod:`repro.cli`).

Exit codes: 0 when every finding is suppressed or baselined, 1 when new
findings exist, 2 on usage errors — so ``repro lint`` drops straight
into CI as a gate.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.baseline import Baseline
from repro.lint.config import LintConfig, find_repo_root
from repro.lint.engine import LintReport, lint_paths
from repro.lint.findings import FORMATS, render_findings
from repro.lint.rules import all_rules


def add_lint_parser(sub) -> None:
    """Register the ``lint`` subcommand on the main CLI's subparsers."""
    p = sub.add_parser(
        "lint",
        help="determinism & concurrency static analysis (CI gate)",
    )
    p.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/repro)",
    )
    p.add_argument(
        "--format",
        choices=sorted(FORMATS),
        default="text",
        help="finding output format (github emits workflow annotations)",
    )
    p.add_argument(
        "--root",
        default=None,
        help="repository root (default: auto-detected from cwd)",
    )
    p.add_argument(
        "--baseline",
        default=None,
        help="baseline file (default: <root>/lint-baseline.json)",
    )
    p.add_argument(
        "--write-baseline",
        action="store_true",
        help="record current findings as the new baseline and exit 0",
    )
    p.add_argument(
        "--stats",
        action="store_true",
        help="print per-rule finding/suppression/baseline counts",
    )
    p.add_argument(
        "--list-rules",
        action="store_true",
        help="list every rule with its pack and description",
    )
    p.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    p.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="parallel analysis workers (default: os.cpu_count(); "
        "output is bit-identical at any jobs count)",
    )
    p.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the incremental analysis cache",
    )
    p.add_argument(
        "--dump-graph",
        choices=("imports", "calls", "locks"),
        default=None,
        help="print the whole-program graph (imports/calls/locks) "
        "instead of linting",
    )
    p.set_defaults(fn=cmd_lint)


def _stats_table(report: LintReport) -> str:
    from repro.harness import reporting

    rows = []
    for rule in sorted(set(report.rules_run) | set(report.stats())):
        row = report.stats().get(
            rule, {"active": 0, "suppressed": 0, "baselined": 0}
        )
        rows.append(
            [rule, row["active"], row["suppressed"], row["baselined"]]
        )
    return reporting.format_table(
        ["rule", "active", "suppressed", "baselined"],
        rows,
        title=f"lint stats over {report.files} files",
    )


def cmd_lint(args) -> int:
    root = Path(args.root).resolve() if args.root else find_repo_root()
    enabled = tuple(
        r.strip() for r in (args.rules or "").split(",") if r.strip()
    )
    config = LintConfig.for_root(root, enabled_rules=enabled)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id:24s} [{rule.pack}] {rule.description}")
        return 0

    known = {rule.id for rule in all_rules()}
    unknown = [rule_id for rule_id in enabled if rule_id not in known]
    if unknown:
        print(
            f"unknown rule id(s): {', '.join(unknown)}; known rules: "
            f"{', '.join(sorted(known))}",
            file=sys.stderr,
        )
        return 2

    baseline_path = (
        Path(args.baseline) if args.baseline else config.baseline_path()
    )
    paths = [Path(p) for p in args.paths] if args.paths else None

    if args.dump_graph:
        from repro.lint.engine import build_project_graph
        from repro.lint.graph import render_graph

        graph = build_project_graph(
            config=config, paths=paths, use_cache=not args.no_cache
        )
        print(render_graph(graph, args.dump_graph))
        return 0

    report = lint_paths(
        paths=paths,
        config=config,
        baseline=Baseline.load(baseline_path),
        jobs=args.jobs,
        use_cache=not args.no_cache,
    )

    if args.write_baseline:
        # Grandfather everything currently active (plus what the old
        # baseline already held and still occurs).
        Baseline.from_findings(report.findings + report.baselined).save(
            baseline_path
        )
        print(
            f"wrote {len(report.findings) + len(report.baselined)} "
            f"finding(s) to {baseline_path}"
        )
        return 0

    gated = report.findings + report.parse_errors
    if gated or args.format == "sarif":
        # SARIF consumers need a (possibly empty) document every run.
        print(render_findings(gated, args.format))
    if args.stats:
        print(_stats_table(report))
        print(
            f"totals: {len(report.findings)} active, "
            f"{len(report.suppressed)} suppressed, "
            f"{len(report.baselined)} baselined"
        )
    if gated:
        if args.format not in ("github", "sarif"):
            print(
                f"\nlint: {len(gated)} finding(s); suppress with "
                "'# lint: disable=RULE -- why' or grandfather via "
                "'repro lint --write-baseline'",
                file=sys.stderr,
            )
        return 1
    if not args.stats and args.format != "sarif":
        print(
            f"lint: clean ({report.files} files, "
            f"{len(report.rules_run)} rules, "
            f"{report.cache_hits} cached, "
            f"{len(report.suppressed)} suppressed, "
            f"{len(report.baselined)} baselined)"
        )
    return 0


__all__ = ["add_lint_parser", "cmd_lint"]
