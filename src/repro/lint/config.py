"""Lint configuration: which rule packs apply where, and the sanctioned seams.

The config is code, not a dotfile: the scoping *is* part of the
repository's determinism contract (e.g. "``exec/telemetry.py`` may read
the wall clock, but only through :func:`repro.exec.telemetry.default_clock`"),
so it lives next to the rules and changes go through review like any
other invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import FrozenSet, Optional, Tuple


def find_repo_root(start: Optional[Path] = None) -> Path:
    """Walk upward until a directory containing ``src/repro`` appears.

    Falls back to ``start`` itself so the linter still runs (without the
    doc-coverage rule finding any docs) when pointed at a bare tree.
    """
    start = (start or Path.cwd()).resolve()
    probe = start if start.is_dir() else start.parent
    for candidate in (probe, *probe.parents):
        if (candidate / "src" / "repro").is_dir():
            return candidate
    return probe


@dataclass(frozen=True)
class LintConfig:
    """Scoping and seam declarations for every rule pack."""

    #: Repository root (holds README.md, docs/, lint-baseline.json).
    root: Path
    #: The package the linter analyses (module paths are relative to it).
    src: Path

    #: Packages whose code feeds simulation results: the determinism
    #: pack applies to every file under these first-level directories.
    determinism_dirs: Tuple[str, ...] = (
        "netsim", "cca", "stacks", "core", "harness", "analysis", "viz",
    )
    #: Telemetry/service files additionally covered by the wall-clock
    #: rule: their timestamps must flow through the sanctioned clock
    #: seam below so tests can inject a fake clock.
    wallclock_extra_files: Tuple[str, ...] = (
        "exec/telemetry.py",
        "service/scheduler.py",
        "faults/retry.py",
    )
    #: The one sanctioned wall-clock read in the entire codebase; it
    #: carries the justified suppression, everything else injects it.
    sanctioned_clock: str = "repro.exec.telemetry.default_clock"

    #: Packages with shared mutable state: the concurrency pack applies
    #: to every file under these first-level directories.
    concurrency_dirs: Tuple[str, ...] = (
        "service", "exec", "store", "faults", "fabric",
    )

    #: Files allowed to call ``time.sleep`` directly: the RetryPolicy
    #: sleep seam itself and the fault injector's hang/slow actions.
    #: Everywhere else in the pipeline packages a raw sleep is a retry
    #: loop dodging the unified policy (rule ``raw-sleep-retry``).
    sleep_allowed_files: Tuple[str, ...] = (
        "faults/retry.py",
        "faults/inject.py",
    )
    #: The one sanctioned blocking sleep; retry paths inject it.
    sanctioned_sleep: str = "repro.faults.retry.default_sleep"
    #: Attribute initialisers that are internally synchronised; the
    #: lock-discipline checker never reports accesses to attributes
    #: built from these, even when they are also touched under a lock.
    thread_safe_factories: FrozenSet[str] = frozenset(
        {
            "queue.Queue",
            "queue.PriorityQueue",
            "queue.LifoQueue",
            "queue.SimpleQueue",
            "threading.Event",
            "threading.Semaphore",
            "threading.BoundedSemaphore",
            "threading.Barrier",
            "itertools.count",
        }
    )

    #: Files allowed to read ``os.environ`` (the config/cache seams);
    #: everywhere else an environment read is hidden global state.
    environ_allowed_files: Tuple[str, ...] = (
        "harness/config.py",
        "harness/cache.py",
    )

    #: Documentation corpus for the CLI doc-coverage contract rule.
    doc_files: Tuple[str, ...] = ("README.md",)
    doc_dirs: Tuple[str, ...] = ("docs",)

    #: Identity sinks for the determinism taint pass: values reaching
    #: these callables must be pure functions of the campaign spec.
    #: Exact qualified names resolved against the project call graph.
    taint_sinks: Tuple[str, ...] = (
        "repro.harness.runner.trial_identity",
        "repro.harness.runner._trial_seed",
        "repro.harness.cache.cache_key",
    )
    #: Qualified-name suffixes also treated as identity sinks (the spec
    #: ``fingerprint()`` methods and the content-addressed trial writes).
    taint_sink_suffixes: Tuple[str, ...] = (
        ".fingerprint",
        ".put_trial",
        ".put_trials",
    )

    #: Default baseline location (repo-relative).
    baseline_name: str = "lint-baseline.json"

    #: Incremental analysis cache location (repo-relative, gitignored).
    cache_name: str = ".lint-cache.json"

    #: Rule ids to run; empty means every registered rule.
    enabled_rules: Tuple[str, ...] = ()

    @classmethod
    def for_root(cls, root: Path, **overrides) -> "LintConfig":
        root = Path(root).resolve()
        return cls(root=root, src=root / "src" / "repro", **overrides)

    def baseline_path(self) -> Path:
        return self.root / self.baseline_name

    def cache_path(self) -> Path:
        return self.root / self.cache_name

    def doc_corpus(self) -> str:
        """Concatenated documentation text for contract rules."""
        chunks = []
        for name in self.doc_files:
            path = self.root / name
            if path.is_file():
                chunks.append(path.read_text(encoding="utf-8"))
        for name in self.doc_dirs:
            directory = self.root / name
            if directory.is_dir():
                for path in sorted(directory.glob("*.md")):
                    chunks.append(path.read_text(encoding="utf-8"))
        return "\n".join(chunks)


#: Attribute initialisers recognised as locks by the concurrency pack.
LOCK_FACTORIES = frozenset(
    {"threading.Lock", "threading.RLock", "threading.Condition"}
)


__all__ = ["LintConfig", "LOCK_FACTORIES", "find_repo_root"]
