"""Incremental analysis cache: content-hashed per-file lint results.

The whole-program passes made a cold ``repro lint`` run parse and
analyse 265+ files; this cache makes the warm run skip all of it.  For
every file the engine stores, keyed by the sha256 of its source text:

* the extracted analysis **summary** (:mod:`repro.lint.graph`) — enough
  to re-assemble the project graph without re-parsing anything;
* the **findings** every file-scoped rule produced for it;
* its parsed **suppressions** (and any justification-less ones, which
  are themselves findings).

A warm run with no modified files therefore does zero ``ast.parse``
calls: it re-assembles the graph from cached summaries, re-runs only the
(cheap, pure-Python) whole-program passes, and replays the cached
per-file findings.  The cache **signature** covers the engine version,
the summary shape, every enabled rule's ``(id, version)``, the scoping
config and the documentation corpus — any of those changing discards
the whole cache, so a cached result is always exactly what a cold run
would produce.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint.findings import Finding
from repro.lint.graph import SUMMARY_VERSION
from repro.lint.suppress import Suppression

CACHE_VERSION = 1


def text_hash(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def compute_signature(config, rules) -> str:
    """Fingerprint of everything besides file contents that findings
    depend on."""
    material = {
        "cache_version": CACHE_VERSION,
        "summary_version": SUMMARY_VERSION,
        "rules": sorted(
            (r.id, getattr(r, "version", 1), getattr(r, "scope", "file"))
            for r in rules
        ),
        "config": _config_fingerprint(config),
        "docs": hashlib.sha256(
            config.doc_corpus().encode("utf-8")
        ).hexdigest(),
    }
    return hashlib.sha256(
        json.dumps(material, sort_keys=True).encode("utf-8")
    ).hexdigest()


def _config_fingerprint(config) -> Dict:
    """The config fields that affect findings (paths excluded: the cache
    lives at the root it describes)."""
    out = {}
    for name, value in sorted(vars(config).items()):
        if isinstance(value, Path):
            continue
        if isinstance(value, frozenset):
            value = sorted(value)
        elif isinstance(value, tuple):
            value = list(value)
        out[name] = value
    return out


class FileEntry:
    """Cached analysis of one file at one content hash."""

    __slots__ = ("hash", "summary", "findings", "sups", "bad_sups", "error")

    def __init__(self, hash: str, summary: Optional[Dict],
                 findings: List[Finding], sups: List[Suppression],
                 bad_sups: List[Finding], error: bool = False):
        self.hash = hash
        self.summary = summary
        self.findings = findings
        self.sups = sups
        self.bad_sups = bad_sups
        self.error = error

    def to_json(self) -> Dict:
        return {
            "hash": self.hash,
            "summary": self.summary,
            "findings": [f.row() for f in self.findings],
            "sups": [
                [s.line, list(s.rules), s.justification] for s in self.sups
            ],
            "bad_sups": [f.row() for f in self.bad_sups],
            "error": self.error,
        }

    @classmethod
    def from_json(cls, data: Dict) -> "FileEntry":
        return cls(
            hash=data["hash"],
            summary=data.get("summary"),
            findings=[Finding(**row) for row in data.get("findings", [])],
            sups=[
                Suppression(line, tuple(rules), why)
                for line, rules, why in data.get("sups", [])
            ],
            bad_sups=[Finding(**row) for row in data.get("bad_sups", [])],
            error=bool(data.get("error")),
        )


class AnalysisCache:
    """The on-disk cache: ``<root>/.lint-cache.json``."""

    def __init__(self, path: Path, signature: str):
        self.path = Path(path)
        self.signature = signature
        self.entries: Dict[str, FileEntry] = {}
        self.hits = 0
        self.misses = 0
        self._loaded_ok = False

    @classmethod
    def load(cls, path: Path, signature: str) -> "AnalysisCache":
        cache = cls(path, signature)
        try:
            data = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return cache
        if data.get("signature") != signature:
            return cache  # engine/rules/config changed: start cold
        for rel, entry in data.get("files", {}).items():
            try:
                cache.entries[rel] = FileEntry.from_json(entry)
            except (KeyError, TypeError):
                continue
        cache._loaded_ok = True
        return cache

    def get(self, rel: str, content_hash: str) -> Optional[FileEntry]:
        entry = self.entries.get(rel)
        if entry is not None and entry.hash == content_hash:
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def put(self, rel: str, entry: FileEntry) -> None:
        self.entries[rel] = entry

    def save(self, keep: Optional[Sequence[str]] = None) -> None:
        """Persist, pruning entries for files no longer analysed."""
        entries = self.entries
        if keep is not None:
            keep_set = set(keep)
            entries = {
                rel: e for rel, e in entries.items() if rel in keep_set
            }
        payload = {
            "version": CACHE_VERSION,
            "signature": self.signature,
            "files": {
                rel: entries[rel].to_json() for rel in sorted(entries)
            },
        }
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        try:
            tmp.write_text(
                json.dumps(payload, sort_keys=True), encoding="utf-8"
            )
            tmp.replace(self.path)
        except OSError:
            pass  # caching is best-effort; never fail the lint run


__all__ = [
    "AnalysisCache",
    "CACHE_VERSION",
    "FileEntry",
    "compute_signature",
    "text_hash",
]
