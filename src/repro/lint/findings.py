"""Lint findings and the three reporter formats (text, JSON, GitHub)."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location.

    ``snippet`` (the stripped source line) rather than the line number
    forms the finding's identity, so baseline entries survive unrelated
    edits that shift code up or down a file.
    """

    rule: str
    path: str  # repo-relative, posix separators
    line: int
    message: str
    snippet: str = ""

    def identity(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.snippet)

    def row(self) -> dict:
        return asdict(self)


def _text(findings: List[Finding]) -> str:
    lines = [
        f"{f.path}:{f.line}: {f.rule}: {f.message}" for f in findings
    ]
    return "\n".join(lines)


def _json(findings: List[Finding]) -> str:
    return json.dumps([f.row() for f in findings], indent=2, sort_keys=True)


def _github(findings: List[Finding]) -> str:
    """GitHub Actions workflow-command annotations (one per finding)."""
    lines = []
    for f in findings:
        message = f"{f.rule}: {f.message}".replace("%", "%25")
        message = message.replace("\r", "%0D").replace("\n", "%0A")
        lines.append(f"::error file={f.path},line={f.line}::{message}")
    return "\n".join(lines)


def _sarif(findings: List[Finding]) -> str:
    """SARIF 2.1.0 for CI code scanning (GitHub's security tab)."""
    # Lazy import: findings is a leaf module the rules themselves import.
    from repro.lint.rules import all_rules

    descriptions = {r.id: r.description for r in all_rules()}
    used = sorted({f.rule for f in findings})
    rules = [
        {
            "id": rule_id,
            "shortDescription": {
                "text": descriptions.get(rule_id, rule_id)
            },
        }
        for rule_id in used
    ]
    results = [
        {
            "ruleId": f.rule,
            "ruleIndex": used.index(f.rule),
            "level": "error",
            "message": {"text": f"{f.rule}: {f.message}"},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.path,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": max(1, f.line),
                            "snippet": {"text": f.snippet},
                        },
                    }
                }
            ],
        }
        for f in findings
    ]
    document = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://github.com/example/repro"
                        ),
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)


FORMATS = {"text": _text, "json": _json, "github": _github, "sarif": _sarif}


def render_findings(findings: List[Finding], fmt: str = "text") -> str:
    """Render findings in one of the supported formats."""
    try:
        renderer = FORMATS[fmt]
    except KeyError:
        raise ValueError(
            f"unknown format {fmt!r} (choose from {sorted(FORMATS)})"
        ) from None
    return renderer(sorted(findings, key=lambda f: (f.path, f.line, f.rule)))


__all__ = ["Finding", "render_findings", "FORMATS"]
