"""The lint engine: collect sources, run rules, apply suppressions/baseline.

One :func:`lint_paths` call is one lint run: it parses every target
file once, hands the parsed modules to every enabled rule, then filters
raw findings through inline suppressions and the checked-in baseline.
The resulting :class:`LintReport` carries everything the CLI needs —
active findings (the CI gate), suppressed and grandfathered ones (the
``--stats`` burn-down view) and per-rule counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.lint.baseline import Baseline
from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.rules import ModuleSource, Rule, all_rules, parse_module
from repro.lint.suppress import (
    Suppression,
    apply_suppressions,
    parse_suppressions,
)


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)  # active (gate)
    suppressed: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    parse_errors: List[Finding] = field(default_factory=list)
    files: int = 0
    rules_run: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.parse_errors

    def all_raw(self) -> List[Finding]:
        return self.findings + self.suppressed + self.baselined

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-rule counters: active / suppressed / baselined findings."""
        table: Dict[str, Dict[str, int]] = {}

        def bump(rule: str, column: str) -> None:
            row = table.setdefault(
                rule, {"active": 0, "suppressed": 0, "baselined": 0}
            )
            row[column] += 1

        for finding in self.findings:
            bump(finding.rule, "active")
        for finding in self.suppressed:
            bump(finding.rule, "suppressed")
        for finding in self.baselined:
            bump(finding.rule, "baselined")
        return table


def _collect_files(paths: Sequence[Path], config: LintConfig) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    # De-duplicate while keeping a deterministic order.
    seen = {}
    for file in files:
        seen.setdefault(file.resolve(), file)
    return [seen[key] for key in sorted(seen)]


def _module_rel(path: Path, config: LintConfig) -> str:
    """Path relative to the analysed package root (posix separators)."""
    resolved = path.resolve()
    for anchor in (config.src.resolve(), config.root.resolve()):
        try:
            return resolved.relative_to(anchor).as_posix()
        except ValueError:
            continue
    return resolved.name


def _module_display(path: Path, config: LintConfig) -> str:
    resolved = path.resolve()
    try:
        return resolved.relative_to(config.root.resolve()).as_posix()
    except ValueError:
        return resolved.as_posix()


def lint_paths(
    paths: Optional[Sequence[Path]] = None,
    config: Optional[LintConfig] = None,
    baseline: Optional[Baseline] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> LintReport:
    """Run the linter; defaults to the configured package and baseline."""
    if config is None:
        from repro.lint.config import find_repo_root

        config = LintConfig.for_root(find_repo_root())
    if paths is None:
        paths = [config.src]
    if baseline is None:
        baseline = Baseline.load(config.baseline_path())
    chosen = list(rules) if rules is not None else all_rules()
    if config.enabled_rules:
        chosen = [r for r in chosen if r.id in config.enabled_rules]

    report = LintReport(rules_run=[r.id for r in chosen])
    modules: List[ModuleSource] = []
    suppressions_by_path: Dict[str, List[Suppression]] = {}
    raw: List[Finding] = []

    for file in _collect_files(paths, config):
        display = _module_display(file, config)
        module = parse_module(file, _module_rel(file, config), display)
        if module is None:
            report.parse_errors.append(
                Finding(
                    rule="parse-error",
                    path=display,
                    line=1,
                    message="file does not parse; lint cannot analyse it",
                )
            )
            continue
        report.files += 1
        modules.append(module)
        sups, bad = parse_suppressions(display, module.text)
        suppressions_by_path[display] = sups
        raw.extend(bad)  # justification-less suppressions are findings

    for rule in chosen:
        raw.extend(rule.check(modules, config))

    active, suppressed = apply_suppressions(raw, suppressions_by_path)
    fresh, grandfathered = baseline.partition(active)
    report.findings = sorted(fresh, key=lambda f: (f.path, f.line, f.rule))
    report.suppressed = suppressed
    report.baselined = grandfathered
    return report


__all__ = ["LintReport", "lint_paths"]
