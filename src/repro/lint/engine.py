"""The lint engine: incremental, parallel, whole-program.

One :func:`lint_paths` call is one lint run, in three phases:

1. **Per-file analysis** (parallel, cached).  Every target file is
   content-hashed; on a cache hit the stored summary/findings/
   suppressions are replayed with zero parsing.  Misses are parsed,
   their analysis summary extracted (:mod:`repro.lint.graph`) and every
   ``scope="file"`` rule run, across ``--jobs`` worker threads.  Results
   are aggregated in file order regardless of completion order, so the
   report is bit-identical at any jobs count.
2. **Whole-program analysis.**  The summaries (cached + fresh) are
   assembled into the :class:`~repro.lint.graph.ProjectGraph`, and every
   ``scope="project"`` rule — lock-order cycles, transitive
   blocking-under-lock, determinism taint — runs against it.
3. **Filtering.**  Raw findings pass through inline suppressions and
   the checked-in baseline exactly as before; the resulting
   :class:`LintReport` carries active findings (the CI gate), the
   suppressed/grandfathered burn-down views, and cache hit counters.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint.baseline import Baseline
from repro.lint.cache import (
    AnalysisCache,
    FileEntry,
    compute_signature,
    text_hash,
)
from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.graph import ProjectGraph, build_graph, extract_summary
from repro.lint.rules import ModuleSource, Rule, all_rules, parse_module
from repro.lint.suppress import (
    Suppression,
    apply_suppressions,
    parse_suppressions,
)


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)  # active (gate)
    suppressed: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    parse_errors: List[Finding] = field(default_factory=list)
    files: int = 0
    rules_run: List[str] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    graph: Optional[ProjectGraph] = None

    @property
    def ok(self) -> bool:
        return not self.findings and not self.parse_errors

    def all_raw(self) -> List[Finding]:
        return self.findings + self.suppressed + self.baselined

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-rule counters: active / suppressed / baselined findings."""
        table: Dict[str, Dict[str, int]] = {}

        def bump(rule: str, column: str) -> None:
            row = table.setdefault(
                rule, {"active": 0, "suppressed": 0, "baselined": 0}
            )
            row[column] += 1

        for finding in self.findings:
            bump(finding.rule, "active")
        for finding in self.suppressed:
            bump(finding.rule, "suppressed")
        for finding in self.baselined:
            bump(finding.rule, "baselined")
        return table


def _collect_files(paths: Sequence[Path], config: LintConfig) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    # De-duplicate while keeping a deterministic order.
    seen = {}
    for file in files:
        seen.setdefault(file.resolve(), file)
    return [seen[key] for key in sorted(seen)]


def _module_rel(path: Path, config: LintConfig) -> str:
    """Path relative to the analysed package root (posix separators)."""
    resolved = path.resolve()
    for anchor in (config.src.resolve(), config.root.resolve()):
        try:
            return resolved.relative_to(anchor).as_posix()
        except ValueError:
            continue
    return resolved.name


def _module_display(path: Path, config: LintConfig) -> str:
    resolved = path.resolve()
    try:
        return resolved.relative_to(config.root.resolve()).as_posix()
    except ValueError:
        return resolved.as_posix()


def _analyze_file(
    file: Path,
    rel: str,
    display: str,
    text: str,
    file_rules: Sequence[Rule],
    config: LintConfig,
) -> FileEntry:
    """Cold path for one file: parse, extract summary, run file rules."""
    content_hash = text_hash(text)
    module = parse_module(file, rel, display)
    if module is None:
        return FileEntry(
            hash=content_hash,
            summary=None,
            findings=[],
            sups=[],
            bad_sups=[],
            error=True,
        )
    summary = extract_summary(module)
    findings: List[Finding] = []
    for rule in file_rules:
        findings.extend(rule.check([module], config))
    sups, bad = parse_suppressions(display, module.text)
    return FileEntry(
        hash=content_hash,
        summary=summary,
        findings=findings,
        sups=sups,
        bad_sups=bad,
    )


def lint_paths(
    paths: Optional[Sequence[Path]] = None,
    config: Optional[LintConfig] = None,
    baseline: Optional[Baseline] = None,
    rules: Optional[Sequence[Rule]] = None,
    jobs: Optional[int] = None,
    use_cache: bool = True,
    keep_graph: bool = False,
) -> LintReport:
    """Run the linter; defaults to the configured package and baseline."""
    if config is None:
        from repro.lint.config import find_repo_root

        config = LintConfig.for_root(find_repo_root())
    if paths is None:
        paths = [config.src]
    if baseline is None:
        baseline = Baseline.load(config.baseline_path())
    chosen = list(rules) if rules is not None else all_rules()
    if config.enabled_rules:
        chosen = [r for r in chosen if r.id in config.enabled_rules]
    file_rules = [r for r in chosen if r.scope == "file"]
    project_rules = [r for r in chosen if r.scope == "project"]
    if jobs is None:
        jobs = os.cpu_count() or 1
    jobs = max(1, int(jobs))

    signature = compute_signature(config, chosen)
    cache = (
        AnalysisCache.load(config.cache_path(), signature)
        if use_cache
        else AnalysisCache(config.cache_path(), signature)
    )

    report = LintReport(rules_run=[r.id for r in chosen])
    files = _collect_files(paths, config)
    keyed: List[Tuple[Path, str, str, str]] = []  # (file, rel, display, text)
    for file in files:
        try:
            text = file.read_text(encoding="utf-8")
        except OSError:
            continue
        keyed.append(
            (file, _module_rel(file, config), _module_display(file, config),
             text)
        )

    # Phase 1: per-file analysis — cached entries replay, misses run in
    # an ordered thread map so output is identical at any jobs count.
    entries: List[Tuple[str, str, Optional[FileEntry]]] = []
    miss_jobs: List[Tuple[int, Path, str, str, str]] = []
    for i, (file, rel, display, text) in enumerate(keyed):
        entry = cache.get(display, text_hash(text)) if use_cache else None
        if entry is None:
            miss_jobs.append((i, file, rel, display, text))
        entries.append((rel, display, entry))

    if miss_jobs:
        def run(job):
            _i, file, rel, display, text = job
            return _analyze_file(
                file, rel, display, text, file_rules, config
            )

        if jobs > 1 and len(miss_jobs) > 1:
            with ThreadPoolExecutor(max_workers=jobs) as pool:
                fresh = list(pool.map(run, miss_jobs))
        else:
            fresh = [run(job) for job in miss_jobs]
        for (i, _file, rel, display, _text), entry in zip(miss_jobs, fresh):
            entries[i] = (rel, display, entry)
            cache.put(display, entry)

    raw: List[Finding] = []
    suppressions_by_path: Dict[str, List[Suppression]] = {}
    summaries: List[Dict] = []
    for rel, display, entry in entries:
        if entry is None:  # unreadable file was skipped above
            continue
        if entry.error:
            report.parse_errors.append(
                Finding(
                    rule="parse-error",
                    path=display,
                    line=1,
                    message="file does not parse; lint cannot analyse it",
                )
            )
            continue
        report.files += 1
        if entry.summary is not None:
            summaries.append(entry.summary)
        raw.extend(entry.findings)
        raw.extend(entry.bad_sups)
        # Suppressions mutate (used_for) during apply; hand out copies so
        # cached entries stay pristine.
        suppressions_by_path[display] = [
            Suppression(s.line, s.rules, s.justification)
            for s in entry.sups
        ]

    # Phase 2: whole-program rules over the assembled graph.
    graph: Optional[ProjectGraph] = None
    if project_rules or keep_graph:
        graph = build_graph(summaries)
        for rule in project_rules:
            raw.extend(rule.check_project(graph, config))
    if keep_graph:
        report.graph = graph

    # Phase 3: suppressions, baseline, deterministic ordering.
    active, suppressed = apply_suppressions(raw, suppressions_by_path)
    fresh_findings, grandfathered = baseline.partition(active)
    report.findings = sorted(
        fresh_findings, key=lambda f: (f.path, f.line, f.rule, f.message)
    )
    report.suppressed = sorted(
        suppressed, key=lambda f: (f.path, f.line, f.rule, f.message)
    )
    report.baselined = sorted(
        grandfathered, key=lambda f: (f.path, f.line, f.rule, f.message)
    )
    report.cache_hits = cache.hits
    report.cache_misses = cache.misses
    if use_cache:
        cache.save(keep=[display for _rel, display, _e in entries])
    return report


def build_project_graph(
    config: Optional[LintConfig] = None,
    paths: Optional[Sequence[Path]] = None,
    use_cache: bool = True,
) -> ProjectGraph:
    """Assemble the project graph alone (``--dump-graph``, sanitizer).

    Runs the default rule set so the analysis cache signature matches a
    plain ``repro lint`` run — the two share warm-cache entries.
    """
    report = lint_paths(
        paths=paths,
        config=config,
        baseline=Baseline(),
        use_cache=use_cache,
        keep_graph=True,
    )
    assert report.graph is not None
    return report.graph


__all__ = ["LintReport", "build_project_graph", "lint_paths"]
