"""Determinism taint pass: nondeterminism sources must not reach identity sinks.

The repository's core guarantee is that a trial's identity, its
fingerprints and its stored payloads are pure functions of the campaign
spec — that is what makes results deduplicable, diffable and
bit-identical across the fabric.  This pass enforces the guarantee
statically: it traces **taint** from nondeterminism sources (wall-clock
reads, ``random.*``, ``os.urandom``/``uuid``, ``id()``, iteration over
sets) through assignments, returns and project-resolvable calls, and
reports any path that reaches a **sink** — :func:`trial_identity`,
``cache_key``, the spec ``fingerprint()`` methods, and the warehouse's
content-addressed trial writes (``put_trial``/``put_trials``).

The machinery is summary-based, like the lock analysis: extraction
(:mod:`repro.lint.graph`) records per-function taint *descriptors* —
``{"t": "src"}`` a source observed locally, ``{"t": "param", "i": n}``
the n-th parameter, ``{"t": "call", "c": i}`` the value of the i-th
recorded call, ``{"t": "attr", "attr": a}`` a ``self`` attribute — and
this module runs two whole-program fixpoints over the call graph:

* ``ret_atoms``  — which sources / parameters may flow *out of* each
  function's return value;
* ``param_sink`` — which parameters of each function flow *into* a sink
  (directly or through further calls).

A finding is produced where the two meet: a call site passing a
source-tainted value into a sink-flowing parameter.  ``sorted()``
launders set-iteration taint (a sorted set is deterministic), and the
sanctioned clock seam is still a source — timestamps are fine in
telemetry, never in identity.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.graph import ProjectGraph

#: An atom is the fully-resolved form of a taint descriptor:
#:   ("src", kind, what)   a nondeterminism source
#:   ("param", i)          the i-th parameter of the current function
Atom = Tuple


class TaintAnalysis:
    """Whole-program source->sink reachability over a :class:`ProjectGraph`."""

    def __init__(self, graph: ProjectGraph, config: LintConfig):
        self.graph = graph
        self.config = config
        self.sink_names: FrozenSet[str] = frozenset(config.taint_sinks)
        self.sink_suffixes: Tuple[str, ...] = tuple(config.taint_sink_suffixes)
        #: qname -> atoms that may flow out of the return value
        self.ret_atoms: Dict[str, Set[Atom]] = {}
        #: qname -> {param index -> sink qname it flows into}
        self.param_sink: Dict[str, Dict[int, str]] = {}
        #: (class dotted, attr) -> src atoms assigned to it anywhere
        self.attr_atoms: Dict[Tuple[str, str], Set[Atom]] = {}
        #: raw material for findings: dicts with display/line/what/sink
        self.hits: List[Dict] = []
        self._resolved_calls: Dict[str, List[List[str]]] = {}
        self._run()

    # -------------------------------------------------------------- helpers

    def is_sink(self, qname: str) -> Optional[str]:
        if qname in self.sink_names:
            return qname
        for suffix in self.sink_suffixes:
            if qname.endswith(suffix):
                return qname
        return None

    def _callees(self, qname: str, call_index: int) -> List[str]:
        return self._resolved_calls.get(qname, [[]] * (call_index + 1))[
            call_index
        ]

    def _fn(self, qname: str) -> Optional[Dict]:
        return self.graph.functions.get(qname)

    def _class_of(self, qname: str) -> Optional[str]:
        f = self._fn(qname)
        if not f or not f.get("cls"):
            return None
        mod = self.graph.module_of_function(qname)
        if not mod:
            return None
        return f"{mod['module']}.{f['cls']}"

    # ------------------------------------------------------------ resolution

    def _atoms(
        self, desc: Dict, qname: str, depth: int = 0
    ) -> Set[Atom]:
        """Resolve one descriptor to atoms, in the context of ``qname``."""
        if depth > 6:
            return set()
        t = desc.get("t")
        if t == "src":
            return {("src", desc["kind"], desc["what"])}
        if t == "param":
            return {("param", desc["i"])}
        if t == "attr":
            cls = self._class_of(qname)
            if cls is None:
                return set()
            out: Set[Atom] = set()
            for candidate in self.graph.mro(cls):
                out |= self.attr_atoms.get((candidate, desc["attr"]), set())
            return out
        if t == "call":
            f = self._fn(qname)
            if f is None:
                return set()
            calls = f["calls"]
            idx = desc.get("c", -1)
            if not (0 <= idx < len(calls)):
                return set()
            call = calls[idx]
            out = set()
            for callee in self._callees(qname, idx):
                for atom in self.ret_atoms.get(callee, set()):
                    if atom[0] == "src":
                        out.add(atom)
                    elif atom[0] == "param":
                        # Substitute the caller's argument for the
                        # callee's pass-through parameter.
                        for key, arg_desc in call["args"]:
                            if key == atom[1]:
                                out |= self._atoms(
                                    arg_desc, qname, depth + 1
                                )
            return out
        return set()

    # --------------------------------------------------------------- driver

    def _run(self) -> None:
        graph = self.graph
        # Pre-resolve every call once (the inner loops are fixpoints).
        for mod, s in sorted(graph.modules.items()):
            for qname, f in sorted(s["functions"].items()):
                self._resolved_calls[qname] = [
                    graph.resolve_call(call["callee"], mod)
                    for call in f["calls"]
                ]
                cls = self._class_of(qname)
                if cls:
                    for entry in f["self_sets"]:
                        self.attr_atoms.setdefault(
                            (cls, entry["attr"]), set()
                        ).add(
                            (
                                "src",
                                entry["taint"]["kind"],
                                entry["taint"]["what"],
                            )
                        )

        # Fixpoint 1: return-value atoms.
        for qname in self.graph.functions:
            self.ret_atoms[qname] = set()
        changed = True
        rounds = 0
        while changed and rounds < 30:
            changed = False
            rounds += 1
            for qname, f in sorted(self.graph.functions.items()):
                atoms: Set[Atom] = set()
                for desc in f["returns"]:
                    atoms |= self._atoms(desc, qname)
                if not atoms <= self.ret_atoms[qname]:
                    self.ret_atoms[qname] |= atoms
                    changed = True

        # Fixpoint 2: parameters that flow into sinks.
        for qname in self.graph.functions:
            self.param_sink[qname] = {}
        changed = True
        rounds = 0
        while changed and rounds < 30:
            changed = False
            rounds += 1
            for qname, f in sorted(self.graph.functions.items()):
                for idx, call in enumerate(f["calls"]):
                    for callee in self._resolved_calls[qname][idx]:
                        sink = self.is_sink(callee)
                        sink_params: Dict[int, str] = {}
                        if sink is not None:
                            params = self._fn(callee)
                            count = (
                                len(params["params"]) if params else 8
                            )
                            skip_self = bool(
                                params
                                and params["params"][:1] == ["self"]
                            )
                            for i in range(count):
                                if skip_self and i == 0:
                                    continue
                                sink_params[i] = sink
                        else:
                            sink_params = dict(
                                self.param_sink.get(callee, {})
                            )
                        if not sink_params:
                            continue
                        for key, arg_desc in call["args"]:
                            pos = key if isinstance(key, int) else None
                            if pos is None or pos not in sink_params:
                                # Keyword args / unknown position: treat
                                # as sinking when the callee is a sink.
                                if sink is None:
                                    continue
                                target = sink
                            else:
                                target = sink_params[pos]
                            for atom in self._atoms(arg_desc, qname):
                                if atom[0] == "src":
                                    self._hit(
                                        qname, call, atom, target
                                    )
                                elif atom[0] == "param":
                                    cur = self.param_sink[qname]
                                    if atom[1] not in cur:
                                        cur[atom[1]] = target
                                        changed = True

        self.hits.sort(
            key=lambda h: (h["display"], h["line"], h["what"], h["sink"])
        )

    def _hit(self, qname: str, call: Dict, atom: Atom, sink: str) -> None:
        s = self.graph.module_of_function(qname) or {}
        entry = {
            "fn": qname,
            "display": s.get("display", ""),
            "line": call["line"],
            "snip": call.get("snip", ""),
            "kind": atom[1],
            "what": atom[2],
            "sink": sink,
        }
        if entry not in self.hits:
            self.hits.append(entry)

    # ------------------------------------------------------------- findings

    def findings(self, rule_id: str) -> List[Finding]:
        out: List[Finding] = []
        seen: Set[Tuple[str, int, str, str]] = set()
        for hit in self.hits:
            key = (hit["display"], hit["line"], hit["what"], hit["sink"])
            if key in seen:
                continue
            seen.add(key)
            out.append(
                Finding(
                    rule=rule_id,
                    path=hit["display"],
                    line=hit["line"],
                    message=(
                        f"nondeterministic value from {hit['what']} "
                        f"({hit['kind']}) flows into identity sink "
                        f"{hit['sink']} — trial identity must be a pure "
                        "function of the spec"
                    ),
                    snippet=hit["snip"],
                )
            )
        return out


def analyze_taint(
    graph: ProjectGraph, config: LintConfig
) -> TaintAnalysis:
    return TaintAnalysis(graph, config)


__all__ = ["Atom", "TaintAnalysis", "analyze_taint"]
