"""Whole-program analysis layer: import graph, call graph, lock graph.

PR 4's rule packs see one file at a time; this module is the engine's
second storey.  For every parsed module it extracts a compact,
JSON-serialisable **analysis summary** (imports, classes, lock
construction sites, and per-function facts: calls made, locks acquired,
blocking primitives reached, taint-relevant flows).  Summaries are what
the incremental cache stores — a warm ``repro lint`` run never re-parses
an unchanged file, it re-assembles the project graph from cached
summaries.

:class:`ProjectGraph` assembles the summaries into the whole-program
view the new ``concurrency.*`` / ``determinism.*`` rules consume:

* the **import graph** over project modules;
* an **approximate call graph** — direct calls, ``self.method()``
  resolved through the class hierarchy (including project subclass
  overrides, so ``Scheduler.submit`` sees ``Coordinator._dispatch``),
  calls through locals typed by constructor calls, ``with ... as``
  bindings, parameter annotations and return annotations, and
  re-exports chased through package ``__init__`` import maps;
* the **lock model** — every ``threading.Lock/RLock/Condition``
  construction site, keyed by a stable id
  (``repro.service.scheduler.Scheduler._lock``), with
  ``Condition(self._lock)`` aliased onto the wrapped lock.

:class:`LockAnalysis` runs the interprocedural pass on top: a fixpoint
over the call graph computes, for every function, the set of locks it
*may acquire* and the blocking primitives it *may reach*; lock-order
edges are recorded whenever a lock is acquired (directly or through any
resolved call chain) while another is held.  Cycles in that graph are
potential deadlocks (rule ``lock-order-cycle``); blocking primitives
reached with a lock held are stalls (rule ``lock-held-blocking``).

Approximations, stated honestly: instances are merged per (class, attr)
— every ``CircuitBreaker._lock`` is one abstract lock; calls through
unannotated callables (``self._clock()``) do not resolve; relative
imports and dynamic dispatch beyond project subclass overrides are not
chased.  The runtime sanitizer (:mod:`repro.lint.sanitizer`) exists to
validate these approximations against real execution.
"""

from __future__ import annotations

import ast
import json
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.config import LOCK_FACTORIES, LintConfig
from repro.lint.findings import Finding
from repro.lint.rules import ModuleSource, canonical, dotted_name, import_map

#: Bump when the summary shape changes — invalidates the analysis cache.
SUMMARY_VERSION = 6

#: Canonical callables that block the calling thread (interprocedural
#: vocabulary; the per-method rule keeps its own narrower set).
BLOCKING_CALLS = {
    "time.sleep": "time.sleep() sleeps",
    "urllib.request.urlopen": "urllib urlopen does network I/O",
    "subprocess.run": "subprocess.run waits on a child process",
    "subprocess.call": "subprocess.call waits on a child process",
    "subprocess.check_call": "subprocess.check_call waits on a child",
    "subprocess.check_output": "subprocess.check_output waits on a child",
    "socket.create_connection": "socket.create_connection does network I/O",
}
BLOCKING_PREFIXES = ("requests.", "http.client.")

#: Attribute calls that block when the receiver's name matches the
#: paired pattern; ``.commit()`` is the SQLite fsync and always counts.
import re as _re

_BLOCKING_ATTR_RECV = {
    "get": _re.compile(r"queue", _re.IGNORECASE),
    "put": _re.compile(r"queue", _re.IGNORECASE),
    "join": _re.compile(
        r"(thread|proc|worker|pool|executor|queue)", _re.IGNORECASE
    ),
    "result": _re.compile(r"future", _re.IGNORECASE),
    "wait": _re.compile(
        r"(event|cond|barrier|future|proc)", _re.IGNORECASE
    ),
}

#: Nondeterminism sources for the taint pass (kind, human label).
from repro.lint.rules.determinism import WALL_CLOCK_CALLS

TAINT_SOURCE_CALLS: Dict[str, Tuple[str, str]] = {}
for _name in WALL_CLOCK_CALLS:
    TAINT_SOURCE_CALLS[_name] = ("clock", f"{_name}()")
for _name in (
    "repro.exec.telemetry.default_clock",
    "repro.faults.retry.default_monotonic",
):
    TAINT_SOURCE_CALLS[_name] = ("clock", f"{_name}()")
for _name in (
    "os.urandom", "uuid.uuid1", "uuid.uuid4", "secrets.token_bytes",
    "secrets.token_hex", "secrets.token_urlsafe", "secrets.randbits",
):
    TAINT_SOURCE_CALLS[_name] = ("entropy", f"{_name}()")
for _name in ("os.getpid", "os.getppid"):
    TAINT_SOURCE_CALLS[_name] = ("process", f"{_name}()")

#: ``self._clock()``-style attribute calls treated as clock sources.
CLOCK_ATTR_NAMES = frozenset(
    {"clock", "_clock", "monotonic", "_monotonic", "now", "_now"}
)


def module_dotted(rel: str, root_pkg: str) -> str:
    """``service/scheduler.py`` -> ``repro.service.scheduler``."""
    parts = rel[:-3].split("/") if rel.endswith(".py") else rel.split("/")
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join([root_pkg] + [p for p in parts if p])


def _snip(module: ModuleSource, line: int) -> str:
    return module.snippet(line)


def _lock_kind(factory: str) -> Optional[str]:
    if factory in LOCK_FACTORIES:
        return factory.rsplit(".", 1)[-1]  # Lock / RLock / Condition
    return None


class _Extractor:
    """One module -> one JSON summary (pure function of the source)."""

    def __init__(self, module: ModuleSource, root_pkg: str):
        self.module = module
        self.root_pkg = root_pkg
        self.dotted = module_dotted(module.rel, root_pkg)
        self.imports = import_map(module.tree)
        self.toplevel_funcs: Set[str] = set()
        self.toplevel_classes: Set[str] = set()
        self.summary: Dict = {
            "version": SUMMARY_VERSION,
            "module": self.dotted,
            "rel": module.rel,
            "display": module.display,
            "imports": [],
            "names": {},
            "module_locks": {},
            "classes": {},
            "functions": {},
        }

    # ------------------------------------------------------------ helpers

    def _canon(self, node: ast.AST) -> Optional[str]:
        return canonical(dotted_name(node), self.imports)

    def extract(self) -> Dict:
        tree = self.module.tree
        raw_imports: List[str] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                raw_imports.extend(alias.name for alias in node.names)
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                raw_imports.append(node.module)
                raw_imports.extend(
                    f"{node.module}.{alias.name}"
                    for alias in node.names
                    if alias.name != "*"
                )
        self.summary["imports"] = sorted(
            {i for i in raw_imports if i.split(".")[0] == self.root_pkg}
        )
        self.summary["names"] = {
            k: v
            for k, v in sorted(self.imports.items())
            if v.split(".")[0] == self.root_pkg
        }

        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.toplevel_funcs.add(stmt.name)
            elif isinstance(stmt, ast.ClassDef):
                self.toplevel_classes.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                self._module_lock(stmt)

        for stmt in tree.body:
            if isinstance(stmt, ast.ClassDef):
                self._extract_class(stmt)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._extract_function(
                    stmt, f"{self.dotted}.{stmt.name}", None, {}
                )
        return self.summary

    def _module_lock(self, stmt: ast.Assign) -> None:
        if not isinstance(stmt.value, ast.Call):
            return
        kind = _lock_kind(self._canon(stmt.value.func) or "")
        if kind is None:
            return
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                self.summary["module_locks"][target.id] = {
                    "kind": kind,
                    "line": stmt.lineno,
                }

    # ------------------------------------------------------------- classes

    def _extract_class(self, cls: ast.ClassDef) -> None:
        bases = []
        for base in cls.bases:
            name = self._canon(base)
            if name:
                bases.append(name)
        lock_attrs: Dict[str, Dict] = {}
        methods: List[str] = []
        for stmt in cls.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                methods.append(stmt.name)
            elif isinstance(stmt, ast.Assign) and isinstance(
                stmt.value, ast.Call
            ):
                kind = _lock_kind(self._canon(stmt.value.func) or "")
                if kind:
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            lock_attrs[target.id] = {
                                "kind": kind,
                                "line": stmt.lineno,
                                "alias": None,
                            }
        # Locks and typed attributes built in __init__:
        # ``self._x = threading.Lock()``; ``threading.Condition(self._l)``
        # aliases onto the wrapped lock; ``self._store = ResultStore(...)``
        # and ``self._store = store`` (annotated param) type the attribute
        # so method calls through it resolve.
        attr_types: Dict[str, str] = {}
        for stmt in cls.body:
            if (
                isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt.name == "__init__"
            ):
                param_ann: Dict[str, str] = {}
                for arg in list(stmt.args.args) + list(stmt.args.kwonlyargs):
                    if arg.annotation is not None:
                        ann = self._canon(arg.annotation)
                        if ann:
                            param_ann[arg.arg] = ann
                for node in ast.walk(stmt):
                    if not isinstance(node, ast.Assign):
                        continue
                    if isinstance(node.value, ast.Name):
                        ann = param_ann.get(node.value.id)
                        if ann:
                            for target in node.targets:
                                attr = _self_attr(target)
                                if attr:
                                    attr_types.setdefault(attr, ann)
                        continue
                    if not isinstance(node.value, ast.Call):
                        continue
                    name = self._canon(node.value.func) or ""
                    kind = _lock_kind(name)
                    if kind is None:
                        if name and name.rsplit(".", 1)[-1][:1].isupper():
                            for target in node.targets:
                                attr = _self_attr(target)
                                if attr:
                                    attr_types.setdefault(attr, name)
                        continue
                    alias = None
                    if kind == "Condition" and node.value.args:
                        wrapped = node.value.args[0]
                        if (
                            isinstance(wrapped, ast.Attribute)
                            and isinstance(wrapped.value, ast.Name)
                            and wrapped.value.id == "self"
                        ):
                            alias = wrapped.attr
                    for target in node.targets:
                        attr = _self_attr(target)
                        if attr:
                            lock_attrs[attr] = {
                                "kind": kind,
                                "line": node.lineno,
                                "alias": alias,
                            }
        self.summary["classes"][cls.name] = {
            "line": cls.lineno,
            "bases": bases,
            "methods": sorted(methods),
            "lock_attrs": lock_attrs,
            "attr_types": attr_types,
        }
        for stmt in cls.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._extract_function(
                    stmt,
                    f"{self.dotted}.{cls.name}.{stmt.name}",
                    cls.name,
                    {},
                )

    # ----------------------------------------------------------- functions

    def _extract_function(
        self,
        fn: ast.AST,
        qname: str,
        cls_name: Optional[str],
        enclosing_locks: Dict[str, str],
    ) -> None:
        _FunctionExtractor(self, fn, qname, cls_name, enclosing_locks).run()


def _self_attr(node: ast.AST) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class _FunctionExtractor:
    """Single-pass, flow-sensitive walk of one function body.

    Tracks, along the statement order: the set of lock references held
    (``with`` scopes), local variable types (constructor calls,
    ``with ... as`` bindings, annotations), set-typed locals (for
    hash-order taint) and local taint descriptors.
    """

    def __init__(self, mx: _Extractor, fn, qname, cls_name, enclosing_locks):
        self.mx = mx
        self.fn = fn
        self.qname = qname
        self.cls_name = cls_name
        self.enclosing_locks = dict(enclosing_locks)
        self.params: List[str] = [a.arg for a in fn.args.args]
        self.local_locks: Dict[str, Dict] = {}
        self.var_types: Dict[str, str] = {}
        self.var_calls: Dict[str, str] = {}
        self.set_vars: Set[str] = set()
        self.taint: Dict[str, List[Dict]] = {}
        self.local_defs: Set[str] = set()
        self.out: Dict = {
            "line": fn.lineno,
            "cls": cls_name,
            "name": fn.name,
            "params": self.params,
            "returns_cls": None,
            "acquires": [],
            "calls": [],
            "blocking": [],
            "returns": [],
            "self_sets": [],
            "local_locks": {},
        }
        returns = getattr(fn, "returns", None)
        if returns is not None:
            ann = canonical(dotted_name(returns), mx.imports)
            if ann and ann not in ("None",):
                self.out["returns_cls"] = ann
        for arg in list(fn.args.args) + list(fn.args.kwonlyargs):
            if arg.annotation is not None:
                ann = canonical(dotted_name(arg.annotation), mx.imports)
                if ann:
                    self.var_types[arg.arg] = ann
        for stmt in fn.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.local_defs.add(stmt.name)

    def run(self) -> None:
        for stmt in self.fn.body:
            self._stmt(stmt, [])
        self.mx.summary["functions"][self.qname] = self.out

    # ------------------------------------------------------------ lock refs

    def _lock_ref(self, node: ast.AST) -> Optional[Dict]:
        """A lock-acquisition *candidate* reference, or None."""
        attr = _self_attr(node)
        if attr is not None:
            if self.cls_name is None:
                return None
            return {"k": "self", "attr": attr, "cls": self.cls_name}
        if isinstance(node, ast.Name):
            if node.id in self.local_locks:
                return {"k": "lockid", "id": f"{self.qname}.{node.id}"}
            if node.id in self.enclosing_locks:
                return {"k": "lockid", "id": self.enclosing_locks[node.id]}
            if node.id in self.mx.summary["module_locks"]:
                return {"k": "global", "name": f"{self.mx.dotted}.{node.id}"}
            mapped = self.mx.imports.get(node.id)
            if mapped and mapped.split(".")[0] == self.mx.root_pkg:
                return {"k": "global", "name": mapped}
        return None

    # ------------------------------------------------------------ statements

    def _stmt(self, node: ast.AST, held: List[Dict]) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            new_held = list(held)
            for item in node.items:
                ctx_attr = _self_attr(item.context_expr)
                if ctx_attr is not None and "conn" in ctx_attr:
                    ref = None  # a connection, never a lock
                else:
                    ref = self._lock_ref(item.context_expr)
                if ref is None and isinstance(item.context_expr, ast.Call):
                    callee = item.context_expr.func
                    if isinstance(callee, ast.Attribute):
                        recv_ref = self._lock_ref(callee.value)
                        if recv_ref is not None and callee.attr in (
                            "acquire",
                        ):
                            ref = recv_ref
                if ref is not None:
                    self.out["acquires"].append(
                        {
                            "ref": ref,
                            "line": item.context_expr.lineno,
                            "held": list(new_held),
                            "snip": _snip(
                                self.mx.module, item.context_expr.lineno
                            ),
                        }
                    )
                    new_held.append(ref)
                else:
                    # ``with self._conn:`` — sqlite's connection context
                    # manager commits on exit: an implicit blocking write.
                    if ctx_attr is not None and "conn" in ctx_attr:
                        self.out["blocking"].append(
                            {
                                "what": "sqlite transaction (with conn)",
                                "line": item.context_expr.lineno,
                                "held": list(new_held),
                                "recv": None,
                                "snip": _snip(
                                    self.mx.module,
                                    item.context_expr.lineno,
                                ),
                            }
                        )
                    descs = self._expr(item.context_expr, new_held)
                    if item.optional_vars is not None and isinstance(
                        item.optional_vars, ast.Name
                    ):
                        self._bind(
                            item.optional_vars.id, item.context_expr, descs
                        )
            for stmt in node.body:
                self._stmt(stmt, new_held)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scope = dict(self.enclosing_locks)
            for var, info in self.local_locks.items():
                scope[var] = f"{self.qname}.{var}"
            self.mx._extract_function(
                node, f"{self.qname}.{node.name}", self.cls_name, scope
            )
            return
        if isinstance(node, ast.ClassDef):
            return  # function-local classes: out of scope
        if isinstance(node, ast.Assign):
            descs = self._expr(node.value, held)
            for target in node.targets:
                self._assign_target(target, node.value, descs, held)
            return
        if isinstance(node, ast.AugAssign):
            descs = self._expr(node.value, held)
            if isinstance(node.target, ast.Name):
                self._merge_taint(node.target.id, descs)
            return
        if isinstance(node, ast.AnnAssign):
            if node.value is not None:
                descs = self._expr(node.value, held)
                if isinstance(node.target, ast.Name):
                    self._assign_target(node.target, node.value, descs, held)
            if isinstance(node.target, ast.Name) and node.annotation is not None:
                ann = canonical(dotted_name(node.annotation), self.mx.imports)
                if ann:
                    self.var_types[node.target.id] = ann
            return
        if isinstance(node, ast.Return):
            if node.value is not None:
                descs = self._expr(node.value, held)
                for d in descs:
                    if d not in self.out["returns"]:
                        self.out["returns"].append(d)
            return
        if isinstance(node, (ast.For, ast.AsyncFor)):
            self._expr(node.iter, held)
            if self._is_set_expr(node.iter) and isinstance(
                node.target, ast.Name
            ):
                self._merge_taint(
                    node.target.id,
                    [
                        {
                            "t": "src",
                            "kind": "set-order",
                            "what": "iteration over a set",
                            "line": node.lineno,
                        }
                    ],
                )
            for stmt in node.body + node.orelse:
                self._stmt(stmt, held)
            return
        if isinstance(node, ast.Expr):
            self._expr(node.value, held)
            return
        # Generic statements: walk expression children, recurse statements.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                self._stmt(child, held)
            elif isinstance(child, ast.expr):
                self._expr(child, held)
            elif isinstance(
                child, (ast.excepthandler, ast.match_case)
            ):
                self._stmt(child, held)

    def _assign_target(self, target, value, descs, held) -> None:
        if isinstance(target, ast.Name):
            self._bind(target.id, value, descs)
            return
        attr = _self_attr(target)
        if attr is not None:
            local_src = [d for d in descs if d.get("t") == "src"]
            if local_src:
                entry = {
                    "attr": attr,
                    "taint": local_src[0],
                    "line": target.lineno,
                }
                if entry not in self.out["self_sets"]:
                    self.out["self_sets"].append(entry)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for el in target.elts:
                self._assign_target(el, value, descs, held)

    def _bind(self, var: str, value: ast.AST, descs: List[Dict]) -> None:
        self.taint[var] = list(descs)
        if self._is_set_expr(value):
            self.set_vars.add(var)
        else:
            self.set_vars.discard(var)
        self.var_types.pop(var, None)
        self.var_calls.pop(var, None)
        if isinstance(value, ast.Call):
            name = canonical(dotted_name(value.func), self.mx.imports)
            kind = _lock_kind(name or "")
            if kind is not None:
                self.local_locks[var] = {"kind": kind, "line": value.lineno}
                self.out["local_locks"][f"{self.qname}.{var}"] = {
                    "kind": kind,
                    "line": value.lineno,
                }
                return
            if name:
                if name.startswith("self.") and self.cls_name is not None:
                    # Self-method result: qualify so the assembler can
                    # chase the method's return annotation.
                    name = (
                        f"{self.mx.dotted}.{self.cls_name}."
                        + name.split(".", 1)[1]
                    )
                head = name.rsplit(".", 1)[-1]
                if head[:1].isupper():
                    self.var_types[var] = name  # constructor-ish
                else:
                    self.var_calls[var] = name  # typed via return annotation

    # ---------------------------------------------------------- expressions

    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.set_vars
        if isinstance(node, ast.Call):
            return canonical(dotted_name(node.func), self.mx.imports) in (
                "set",
                "frozenset",
            )
        return False

    def _merge_taint(self, var: str, descs: List[Dict]) -> None:
        cur = self.taint.setdefault(var, [])
        for d in descs:
            if d not in cur and len(cur) < 4:
                cur.append(d)

    def _expr(self, node: ast.AST, held: List[Dict]) -> List[Dict]:
        if node is None:
            return []
        if isinstance(node, ast.Call):
            return self._call(node, held)
        if isinstance(node, ast.Name):
            if node.id in self.taint:
                return list(self.taint[node.id])
            if node.id in self.params:
                return [{"t": "param", "i": self.params.index(node.id)}]
            return []
        if isinstance(node, ast.Attribute):
            attr = _self_attr(node)
            if attr is not None and self.cls_name is not None:
                return [{"t": "attr", "attr": attr}]
            return self._expr(node.value, held)
        if isinstance(node, ast.Lambda):
            return []
        descs: List[Dict] = []
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                for d in self._expr(child, held):
                    if d not in descs and len(descs) < 4:
                        descs.append(d)
            elif isinstance(child, ast.comprehension):
                self._expr(child.iter, held)
                if self._is_set_expr(child.iter):
                    descs.append(
                        {
                            "t": "src",
                            "kind": "set-order",
                            "what": "comprehension over a set",
                            "line": node.lineno,
                        }
                    )
        return descs

    def _call_ref(self, node: ast.Call) -> Optional[Dict]:
        """A project-resolvable callee reference, or None."""
        func = node.func
        if isinstance(func, ast.Name):
            name = func.id
            if name in self.local_defs:
                return {"k": "direct", "name": f"{self.qname}.{name}"}
            if (
                name in self.mx.toplevel_funcs
                or name in self.mx.toplevel_classes
            ):
                return {"k": "direct", "name": f"{self.mx.dotted}.{name}"}
            mapped = self.mx.imports.get(name)
            if mapped and mapped.split(".")[0] == self.mx.root_pkg:
                return {"k": "direct", "name": mapped}
            return None
        if isinstance(func, ast.Attribute):
            recv = func.value
            recv_attr = _self_attr(recv)
            if recv_attr is None and isinstance(recv, ast.Name):
                if recv.id == "self" and self.cls_name:
                    pass  # handled below as method
                if recv.id in self.var_types:
                    return {
                        "k": "typed",
                        "cls": self.var_types[recv.id],
                        "attr": func.attr,
                    }
                if recv.id in self.var_calls:
                    return {
                        "k": "var",
                        "callee": self.var_calls[recv.id],
                        "attr": func.attr,
                    }
            if (
                isinstance(recv, ast.Name)
                and recv.id == "self"
                and self.cls_name is not None
            ):
                return {
                    "k": "method",
                    "cls": self.cls_name,
                    "attr": func.attr,
                }
            recv_attr = _self_attr(recv)
            if recv_attr is not None and self.cls_name is not None:
                # self._store.write_transaction(...): resolved through
                # the class's inferred attribute types at assembly time.
                return {
                    "k": "selfattr",
                    "cls": self.cls_name,
                    "attr": recv_attr,
                    "method": func.attr,
                }
            name = canonical(dotted_name(func), self.mx.imports)
            if name and name.split(".")[0] == self.mx.root_pkg:
                return {"k": "direct", "name": name}
        return None

    def _call(self, node: ast.Call, held: List[Dict]) -> List[Dict]:
        name = canonical(dotted_name(node.func), self.mx.imports) or ""
        func = node.func

        # Lock .acquire() outside a with: an ordering event, unscoped.
        if isinstance(func, ast.Attribute) and func.attr == "acquire":
            recv_ref = self._lock_ref(func.value)
            if recv_ref is not None:
                self.out["acquires"].append(
                    {
                        "ref": recv_ref,
                        "line": node.lineno,
                        "held": list(held),
                        "snip": _snip(self.mx.module, node.lineno),
                    }
                )

        # Blocking primitives.
        blocked = None
        recv_ref = None
        if name in BLOCKING_CALLS:
            blocked = name
        elif name.startswith(BLOCKING_PREFIXES):
            blocked = name
        elif isinstance(func, ast.Attribute):
            if func.attr == "commit":
                blocked = "sqlite commit"
            elif func.attr in _BLOCKING_ATTR_RECV:
                recv_name = (dotted_name(func.value) or "").split(".")[-1]
                if _BLOCKING_ATTR_RECV[func.attr].search(recv_name or ""):
                    blocked = f"{recv_name}.{func.attr}()"
                recv_ref = self._lock_ref(func.value)
                if func.attr == "wait" and recv_ref is not None:
                    blocked = f"{dotted_name(func.value)}.wait()"
        if blocked is not None:
            self.out["blocking"].append(
                {
                    "what": blocked,
                    "line": node.lineno,
                    "held": list(held),
                    "recv": recv_ref,
                    "snip": _snip(self.mx.module, node.lineno),
                }
            )

        # Taint sources.
        src = TAINT_SOURCE_CALLS.get(name)
        if src is None and name.startswith("random."):
            src = ("random", f"{name}()")
        if src is None and name.startswith("numpy.random."):
            src = ("random", f"{name}()")
        if src is None and name == "id" and isinstance(func, ast.Name):
            src = ("id", "id()")
        if src is None and isinstance(func, ast.Attribute):
            attr = _self_attr(func.value)
            if attr is None and func.attr in CLOCK_ATTR_NAMES:
                pass
            if func.attr in CLOCK_ATTR_NAMES and not node.args:
                recv_txt = dotted_name(func) or func.attr
                src = ("clock", f"{recv_txt}()")
        if (
            src is None
            and isinstance(func, ast.Name)
            and func.id in CLOCK_ATTR_NAMES
            and not node.args
        ):
            src = ("clock", f"{func.id}()")
        if src is not None:
            for arg in node.args:
                self._expr(arg, held)
            return [
                {
                    "t": "src",
                    "kind": src[0],
                    "what": src[1],
                    "line": node.lineno,
                }
            ]

        # Evaluate arguments (always, for nested calls/sources).
        arg_descs: List[Tuple[object, List[Dict]]] = []
        for i, arg in enumerate(node.args):
            if isinstance(arg, ast.Starred):
                self._expr(arg.value, held)
                continue
            arg_descs.append((i, self._expr(arg, held)))
        for kw in node.keywords:
            arg_descs.append((kw.arg or "**", self._expr(kw.value, held)))

        # A local function passed as an argument is (for a may-analysis)
        # assumed to be invoked by the callee — this is how transaction
        # callbacks (``self._retry(attempt)``) join the call graph.
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if isinstance(arg, ast.Name) and arg.id in self.local_defs:
                self.out["calls"].append(
                    {
                        "callee": {
                            "k": "direct",
                            "name": f"{self.qname}.{arg.id}",
                        },
                        "line": node.lineno,
                        "held": list(held),
                        "args": [],
                        "snip": _snip(self.mx.module, node.lineno),
                    }
                )

        ref = self._call_ref(node)
        if ref is not None:
            entry = {
                "callee": ref,
                "line": node.lineno,
                "held": list(held),
                "args": [
                    [key, descs[0]]
                    for key, descs in arg_descs
                    if descs
                ],
                "snip": _snip(self.mx.module, node.lineno),
            }
            self.out["calls"].append(entry)
            return [{"t": "call", "c": len(self.out["calls"]) - 1}]

        # External/builtin call: heuristic pass-through of argument taint
        # (sorted() launders set-order; everything else propagates).
        merged: List[Dict] = []
        for _, descs in arg_descs:
            for d in descs:
                if name == "sorted" and d.get("kind") == "set-order":
                    continue
                if d not in merged and len(merged) < 4:
                    merged.append(d)
        if name in ("list", "tuple", "enumerate") and node.args:
            if self._is_set_expr(node.args[0]):
                merged.append(
                    {
                        "t": "src",
                        "kind": "set-order",
                        "what": f"{name}(<set>)",
                        "line": node.lineno,
                    }
                )
        return merged


def extract_summary(module: ModuleSource, root_pkg: str = "repro") -> Dict:
    """Extract the analysis summary for one parsed module."""
    return _Extractor(module, root_pkg).extract()


# ======================================================== graph assembly


class ProjectGraph:
    """Whole-program view assembled from per-module summaries."""

    def __init__(self, summaries: Sequence[Dict], root_pkg: str = "repro"):
        self.root_pkg = root_pkg
        self.modules: Dict[str, Dict] = {}
        for s in summaries:
            self.modules[s["module"]] = s
        # Class index: dotted class name -> record.
        self.classes: Dict[str, Dict] = {}
        self._bare_classes: Dict[str, List[str]] = {}
        self.functions: Dict[str, Dict] = {}
        self._bare_funcs: Dict[str, List[str]] = {}
        for mod, s in self.modules.items():
            for cname, c in s["classes"].items():
                dotted = f"{mod}.{cname}"
                self.classes[dotted] = {**c, "module": mod, "name": cname}
                self._bare_classes.setdefault(cname, []).append(dotted)
            for qname, f in s["functions"].items():
                self.functions[qname] = f
                self._bare_funcs.setdefault(
                    qname.rsplit(".", 1)[-1], []
                ).append(qname)
        # Resolve bases + subclass map.
        self.subclasses: Dict[str, List[str]] = {}
        for dotted, c in sorted(self.classes.items()):
            for base in c["bases"]:
                resolved = self.resolve_class(base)
                if resolved:
                    self.subclasses.setdefault(resolved, []).append(dotted)
        self._lock_index: Optional[Dict[str, Dict]] = None
        self._import_edges: Optional[List[Tuple[str, str]]] = None
        self._call_edges: Optional[Dict[str, List[Tuple[str, int]]]] = None
        self._lock_analysis = None

    # ----------------------------------------------------------- resolution

    def _chase_reexport(self, name: str) -> Optional[str]:
        """``repro.store.ResultStore`` -> ``repro.store.warehouse.ResultStore``."""
        head, _, tail = name.rpartition(".")
        mod = self.modules.get(head)
        if mod is None or not tail:
            return None
        target = mod["names"].get(tail)
        if target and target != name:
            return target
        return None

    def resolve_class(self, name: Optional[str], _depth: int = 0) -> Optional[str]:
        if not name or _depth > 4:
            return None
        if name in self.classes:
            return name
        chased = self._chase_reexport(name)
        if chased:
            return self.resolve_class(chased, _depth + 1)
        bare = name.rsplit(".", 1)[-1]
        candidates = self._bare_classes.get(bare, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def resolve_function(self, name: Optional[str], _depth: int = 0) -> Optional[str]:
        if not name or _depth > 4:
            return None
        if name in self.functions:
            return name
        chased = self._chase_reexport(name)
        if chased:
            return self.resolve_function(chased, _depth + 1)
        return None

    def mro(self, dotted_cls: str) -> List[str]:
        """Approximate linearisation: the class then BFS over bases."""
        out, queue = [], [dotted_cls]
        while queue:
            cur = queue.pop(0)
            if cur in out:
                continue
            out.append(cur)
            c = self.classes.get(cur)
            if c:
                for base in c["bases"]:
                    resolved = self.resolve_class(base)
                    if resolved:
                        queue.append(resolved)
        return out

    def resolve_method(self, dotted_cls: str, attr: str) -> Optional[str]:
        for cls in self.mro(dotted_cls):
            c = self.classes.get(cls)
            if c and attr in c["methods"]:
                return f"{cls}.{attr}"
        return None

    def _method_with_overrides(self, dotted_cls: str, attr: str) -> List[str]:
        """The statically-resolved method plus project subclass overrides."""
        out: List[str] = []
        base = self.resolve_method(dotted_cls, attr)
        if base:
            out.append(base)
        stack = [dotted_cls]
        seen = set()
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            for sub in self.subclasses.get(cur, []):
                c = self.classes.get(sub)
                if c and attr in c["methods"]:
                    q = f"{sub}.{attr}"
                    if q not in out:
                        out.append(q)
                stack.append(sub)
        return out

    def resolve_call(self, ref: Dict, module: str) -> List[str]:
        """Callee qnames for one extracted call reference (may be [])."""
        kind = ref.get("k")
        if kind == "direct":
            name = ref["name"]
            fn = self.resolve_function(name)
            if fn:
                return [fn]
            cls = self.resolve_class(name)
            if cls:
                init = self.resolve_method(cls, "__init__")
                return [init] if init else []
            # Maybe a method spelled Class.method or mod.Class.method.
            head, _, tail = name.rpartition(".")
            cls = self.resolve_class(head)
            if cls and tail:
                return self._method_with_overrides(cls, tail)
            return []
        if kind == "method":
            cls = self.resolve_class(f"{module}.{ref['cls']}")
            if cls:
                return self._method_with_overrides(cls, ref["attr"])
            return []
        if kind == "typed":
            cls = self.resolve_class(ref["cls"])
            if cls:
                return self._method_with_overrides(cls, ref["attr"])
            return []
        if kind == "selfattr":
            cls = self.resolve_class(f"{module}.{ref['cls']}")
            if cls:
                for candidate in self.mro(cls):
                    c = self.classes.get(candidate)
                    ann = (c or {}).get("attr_types", {}).get(ref["attr"])
                    if ann:
                        owner = self.resolve_class(ann)
                        if owner:
                            return self._method_with_overrides(
                                owner, ref["method"]
                            )
                        break
            return []
        if kind == "var":
            fn = self.resolve_function(ref["callee"])
            if fn is None:
                # Inherited method: resolve the class, then the MRO.
                head, _, tail = ref["callee"].rpartition(".")
                owner = self.resolve_class(head)
                if owner and tail:
                    fn = self.resolve_method(owner, tail)
            if fn:
                ann = self.functions[fn].get("returns_cls")
                cls = self.resolve_class(ann)
                if cls:
                    return self._method_with_overrides(cls, ref["attr"])
            return []
        return []

    # ----------------------------------------------------------- lock model

    def lock_index(self) -> Dict[str, Dict]:
        """Every abstract lock: id -> {kind, rel, display, line}."""
        if self._lock_index is not None:
            return self._lock_index
        index: Dict[str, Dict] = {}
        for mod, s in sorted(self.modules.items()):
            for name, info in sorted(s["module_locks"].items()):
                index[f"{mod}.{name}"] = {
                    "kind": info["kind"],
                    "rel": s["rel"],
                    "display": s["display"],
                    "line": info["line"],
                }
            for cname, c in sorted(s["classes"].items()):
                for attr, info in sorted(c["lock_attrs"].items()):
                    if info.get("alias"):
                        continue  # Condition(self._x): not its own lock
                    index[f"{mod}.{cname}.{attr}"] = {
                        "kind": info["kind"],
                        "rel": s["rel"],
                        "display": s["display"],
                        "line": info["line"],
                    }
            for qname, f in sorted(s["functions"].items()):
                for lock_id, info in sorted(
                    f.get("local_locks", {}).items()
                ):
                    index[lock_id] = {
                        "kind": info["kind"],
                        "rel": s["rel"],
                        "display": s["display"],
                        "line": info["line"],
                    }
        # Backstop for lockid refs pointing at enclosing-scope locks.
        for mod, s in sorted(self.modules.items()):
            for qname, f in sorted(s["functions"].items()):
                for acq in f["acquires"]:
                    ref = acq["ref"]
                    if ref.get("k") == "lockid" and ref["id"] not in index:
                        index[ref["id"]] = {
                            "kind": "Lock",
                            "rel": s["rel"],
                            "display": s["display"],
                            "line": acq["line"],
                        }
        self._lock_index = index
        return index

    def resolve_lock(self, ref: Dict, module: str) -> Optional[str]:
        """Lock id for an acquisition reference, chasing Condition aliases."""
        kind = ref.get("k")
        index = self.lock_index()
        if kind == "lockid":
            return ref["id"] if ref["id"] in index else None
        if kind == "global":
            name = ref["name"]
            if name in index:
                return name
            chased = self._chase_reexport(name)
            if chased and chased in index:
                return chased
            return None
        if kind == "self":
            cls = self.resolve_class(f"{module}.{ref['cls']}")
            if cls is None:
                return None
            attr = ref["attr"]
            for candidate in self.mro(cls):
                c = self.classes.get(candidate)
                if not c:
                    continue
                info = c["lock_attrs"].get(attr)
                if info is None:
                    continue
                if info.get("alias"):
                    attr = info["alias"]
                    info = c["lock_attrs"].get(attr)
                    if info is None:
                        continue
                return f"{candidate}.{attr}"
            return None
        return None

    # --------------------------------------------------------------- graphs

    def import_edges(self) -> List[Tuple[str, str]]:
        """Sorted (importer, imported) pairs over project modules."""
        if self._import_edges is not None:
            return self._import_edges
        known = set(self.modules)
        edges: Set[Tuple[str, str]] = set()
        for mod, s in self.modules.items():
            for raw in s["imports"]:
                target = raw
                while target and target not in known:
                    target = target.rpartition(".")[0]
                if target and target != mod:
                    edges.add((mod, target))
        self._import_edges = sorted(edges)
        return self._import_edges

    def call_edges(self) -> Dict[str, List[Tuple[str, int]]]:
        """Resolved call graph: qname -> sorted (callee qname, line)."""
        if self._call_edges is not None:
            return self._call_edges
        edges: Dict[str, List[Tuple[str, int]]] = {}
        for mod, s in sorted(self.modules.items()):
            for qname, f in sorted(s["functions"].items()):
                out: Set[Tuple[str, int]] = set()
                for call in f["calls"]:
                    for callee in self.resolve_call(call["callee"], mod):
                        if callee != qname:
                            out.add((callee, call["line"]))
                edges[qname] = sorted(out)
        self._call_edges = edges
        return edges

    def module_of_function(self, qname: str) -> Optional[Dict]:
        parts = qname.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            mod = ".".join(parts[:cut])
            if mod in self.modules:
                return self.modules[mod]
        return None

    def lock_analysis(self, config: Optional[LintConfig] = None):
        if self._lock_analysis is None:
            self._lock_analysis = LockAnalysis(self)
        return self._lock_analysis

    def to_json(self) -> Dict:
        """Deterministic dump used by golden tests and ``--dump-graph``."""
        analysis = self.lock_analysis()
        return {
            "modules": sorted(self.modules),
            "imports": [list(e) for e in self.import_edges()],
            "calls": {
                q: [list(e) for e in edges]
                for q, edges in sorted(self.call_edges().items())
                if edges
            },
            "locks": {
                lid: {"kind": info["kind"], "line": info["line"]}
                for lid, info in sorted(self.lock_index().items())
            },
            "lock_edges": analysis.edges_json(),
        }


# ===================================================== lock-order analysis


class LockAnalysis:
    """Interprocedural lock-order + blocking-under-lock analysis."""

    def __init__(self, graph: ProjectGraph):
        self.graph = graph
        #: qname -> {lock_id: ("local", line) | ("via", callee, line)}
        self.may_acquire: Dict[str, Dict[str, Tuple]] = {}
        #: qname -> {what: ("local", line) | ("via", callee, line)}
        self.may_block: Dict[str, Dict[str, Tuple]] = {}
        #: (src_lock, dst_lock) -> witness dict
        self.edges: Dict[Tuple[str, str], Dict] = {}
        #: blocking findings raw material
        self.blocking_sites: List[Dict] = []
        self._run()

    # ------------------------------------------------------------- fixpoint

    def _resolved_events(self, qname: str, f: Dict, module: str):
        acquires = []
        for acq in f["acquires"]:
            lock = self.graph.resolve_lock(acq["ref"], module)
            if lock is None:
                continue
            held = []
            for ref in acq["held"]:
                h = self.graph.resolve_lock(ref, module)
                if h is not None and h not in held:
                    held.append(h)
            acquires.append(
                {
                    "lock": lock,
                    "line": acq["line"],
                    "held": held,
                    "snip": acq.get("snip", ""),
                }
            )
        calls = []
        for call in f["calls"]:
            callees = self.graph.resolve_call(call["callee"], module)
            if not callees:
                continue
            held = []
            for ref in call["held"]:
                h = self.graph.resolve_lock(ref, module)
                if h is not None and h not in held:
                    held.append(h)
            calls.append(
                {
                    "callees": [c for c in callees if c != qname],
                    "line": call["line"],
                    "held": held,
                    "snip": call.get("snip", ""),
                }
            )
        blocking = []
        for blk in f["blocking"]:
            held = []
            for ref in blk["held"]:
                h = self.graph.resolve_lock(ref, module)
                if h is not None and h not in held:
                    held.append(h)
            recv_lock = (
                self.graph.resolve_lock(blk["recv"], module)
                if blk.get("recv")
                else None
            )
            # Condition.wait on a held lock *releases* it: sanctioned.
            if recv_lock is not None and recv_lock in held:
                continue
            blocking.append(
                {
                    "what": blk["what"],
                    "line": blk["line"],
                    "held": held,
                    "snip": blk.get("snip", ""),
                }
            )
        return acquires, calls, blocking

    def _run(self) -> None:
        graph = self.graph
        resolved: Dict[str, Tuple] = {}
        for mod, s in sorted(graph.modules.items()):
            for qname, f in sorted(s["functions"].items()):
                resolved[qname] = self._resolved_events(qname, f, mod)

        # Fixpoint: may_acquire / may_block close over the call graph.
        may_acquire = {q: {} for q in resolved}
        may_block = {q: {} for q in resolved}
        for qname, (acquires, calls, blocking) in resolved.items():
            for acq in acquires:
                may_acquire[qname].setdefault(
                    acq["lock"], ("local", acq["line"])
                )
            for blk in blocking:
                may_block[qname].setdefault(
                    blk["what"], ("local", blk["line"])
                )
        changed = True
        iterations = 0
        while changed and iterations < 50:
            changed = False
            iterations += 1
            for qname, (acquires, calls, blocking) in resolved.items():
                for call in calls:
                    for callee in call["callees"]:
                        for lock in may_acquire.get(callee, ()):  # noqa: B007
                            if lock not in may_acquire[qname]:
                                may_acquire[qname][lock] = (
                                    "via", callee, call["line"],
                                )
                                changed = True
                        for what in may_block.get(callee, ()):
                            if what not in may_block[qname]:
                                may_block[qname][what] = (
                                    "via", callee, call["line"],
                                )
                                changed = True
        self.may_acquire = may_acquire
        self.may_block = may_block

        # Edges + blocking sites.
        index = graph.lock_index()
        for qname in sorted(resolved):
            acquires, calls, blocking = resolved[qname]
            s = graph.module_of_function(qname) or {}
            display = s.get("display", "")
            for acq in acquires:
                for held in acq["held"]:
                    self._edge(
                        held, acq["lock"], qname, display, acq["line"],
                        acq["snip"], [],
                    )
            for call in calls:
                if not call["held"]:
                    continue
                for callee in call["callees"]:
                    for lock, wit in sorted(
                        self.may_acquire.get(callee, {}).items()
                    ):
                        for held in call["held"]:
                            self._edge(
                                held, lock, qname, display, call["line"],
                                call["snip"], [callee],
                            )
                    blocks = self.may_block.get(callee, {})
                    if blocks:
                        what = sorted(blocks)[0]
                        self.blocking_sites.append(
                            {
                                "fn": qname,
                                "display": display,
                                "line": call["line"],
                                "snip": call["snip"],
                                "held": call["held"],
                                "what": what,
                                "via": callee,
                                "chain": self._chain(callee, what),
                                "hop": 1,
                            }
                        )
            for blk in blocking:
                if not blk["held"]:
                    continue
                self.blocking_sites.append(
                    {
                        "fn": qname,
                        "display": display,
                        "line": blk["line"],
                        "snip": blk["snip"],
                        "held": blk["held"],
                        "what": blk["what"],
                        "via": None,
                        "chain": [],
                        "hop": 0,
                    }
                )

    def _edge(self, src, dst, qname, display, line, snip, via) -> None:
        if src == dst:
            kind = self.graph.lock_index().get(src, {}).get("kind", "Lock")
            if kind in ("RLock", "Condition"):
                return  # re-entrant: not a self-deadlock
        key = (src, dst)
        if key in self.edges:
            return
        self.edges[key] = {
            "fn": qname,
            "display": display,
            "line": line,
            "snip": snip,
            "via": list(via),
        }

    def _chain(self, callee: str, what: str, limit: int = 6) -> List[str]:
        """Witness call chain from ``callee`` down to a blocking primitive."""
        chain = [callee]
        cur = callee
        for _ in range(limit):
            wit = self.may_block.get(cur, {}).get(what)
            if wit is None or wit[0] == "local":
                break
            cur = wit[1]
            chain.append(cur)
        return chain

    def acquire_chain(self, qname: str, lock: str, limit: int = 6) -> List[str]:
        chain: List[str] = []
        cur = qname
        for _ in range(limit):
            wit = self.may_acquire.get(cur, {}).get(lock)
            if wit is None or wit[0] == "local":
                break
            cur = wit[1]
            chain.append(cur)
        return chain

    # --------------------------------------------------------------- cycles

    def cycles(self) -> List[List[str]]:
        """Elementary cycles (as sorted SCCs) in the lock-order graph."""
        adj: Dict[str, Set[str]] = {}
        nodes: Set[str] = set()
        for (src, dst) in self.edges:
            nodes.add(src)
            nodes.add(dst)
            adj.setdefault(src, set()).add(dst)
        # Tarjan SCC, iterative, deterministic by sorted node order.
        index: Dict[str, int] = {}
        low: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        sccs: List[List[str]] = []
        counter = [0]

        def strongconnect(start: str) -> None:
            work = [(start, iter(sorted(adj.get(start, ()))))]
            index[start] = low[start] = counter[0]
            counter[0] += 1
            stack.append(start)
            on_stack.add(start)
            while work:
                v, it = work[-1]
                advanced = False
                for w in it:
                    if w not in index:
                        index[w] = low[w] = counter[0]
                        counter[0] += 1
                        stack.append(w)
                        on_stack.add(w)
                        work.append((w, iter(sorted(adj.get(w, ())))))
                        advanced = True
                        break
                    if w in on_stack:
                        low[v] = min(low[v], index[w])
                if advanced:
                    continue
                work.pop()
                if low[v] == index[v]:
                    scc = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        scc.append(w)
                        if w == v:
                            break
                    if len(scc) > 1 or (v, v) in self.edges:
                        sccs.append(sorted(scc))
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[v])

        for node in sorted(nodes):
            if node not in index:
                strongconnect(node)
        return sorted(sccs)

    def edges_json(self) -> List[Dict]:
        out = []
        for (src, dst), wit in sorted(self.edges.items()):
            out.append(
                {
                    "from": src,
                    "to": dst,
                    "fn": wit["fn"],
                    "line": wit["line"],
                    "via": wit["via"],
                }
            )
        return out

    # ------------------------------------------------------------- findings

    def cycle_findings(self, rule_id: str) -> List[Finding]:
        findings = []
        for scc in self.cycles():
            witness_edges = [
                (src, dst)
                for (src, dst) in sorted(self.edges)
                if src in scc and dst in scc
            ]
            first = witness_edges[0]
            wit = self.edges[first]
            steps = "; ".join(
                f"{s} -> {d} ({self.edges[(s, d)]['fn']}:"
                f"{self.edges[(s, d)]['line']})"
                for s, d in witness_edges
            )
            findings.append(
                Finding(
                    rule=rule_id,
                    path=wit["display"],
                    line=wit["line"],
                    message=(
                        "potential deadlock: lock-order cycle over "
                        + " / ".join(scc)
                        + f" — {steps}"
                    ),
                    snippet=wit["snip"],
                )
            )
        return findings

    def blocking_findings(self, rule_id: str) -> List[Finding]:
        findings = []
        seen: Set[Tuple[str, int, str]] = set()
        from repro.lint.rules.concurrency import (
            _BLOCKING_CALLS as _PER_METHOD_CALLS,
            _BLOCKING_PREFIXES as _PER_METHOD_PREFIXES,
        )

        for site in self.blocking_sites:
            if site["hop"] == 0:
                # The per-method blocking-under-lock rule owns the case
                # where the held lock belongs to the same class AND the
                # call is in its (narrower) vocabulary; this
                # interprocedural rule adds foreign/global locks,
                # call-chain reachability, and the sqlite/queue
                # heuristics the per-method rule cannot see.
                fn_cls_prefix = site["fn"].rsplit(".", 1)[0]
                covered = site["what"] in _PER_METHOD_CALLS or site[
                    "what"
                ].startswith(_PER_METHOD_PREFIXES)
                if covered and all(
                    held.rsplit(".", 1)[0] == fn_cls_prefix
                    for held in site["held"]
                ):
                    continue
            key = (site["display"], site["line"], site["what"])
            if key in seen:
                continue
            seen.add(key)
            held = ", ".join(sorted(site["held"]))
            if site["via"]:
                chain = " -> ".join(site["chain"])
                message = (
                    f"{site['what']} reached while holding {held}: "
                    f"call chain {chain} blocks with the lock held"
                )
            else:
                message = f"{site['what']} while holding {held}"
            findings.append(
                Finding(
                    rule=rule_id,
                    path=site["display"],
                    line=site["line"],
                    message=message,
                    snippet=site["snip"],
                )
            )
        return findings


def build_graph(
    summaries: Sequence[Dict], root_pkg: str = "repro"
) -> ProjectGraph:
    """Assemble the project graph from extracted (or cached) summaries."""
    return ProjectGraph(summaries, root_pkg=root_pkg)


def render_graph(graph: ProjectGraph, what: str) -> str:
    """Deterministic text dump for ``repro lint --dump-graph``."""
    lines: List[str] = []
    if what == "imports":
        for src, dst in graph.import_edges():
            lines.append(f"{src} -> {dst}")
    elif what == "calls":
        for qname, edges in sorted(graph.call_edges().items()):
            for callee, line in edges:
                lines.append(f"{qname}:{line} -> {callee}")
    elif what == "locks":
        analysis = graph.lock_analysis()
        for lid, info in sorted(graph.lock_index().items()):
            lines.append(
                f"lock {lid} [{info['kind']}] {info['display']}:{info['line']}"
            )
        for edge in analysis.edges_json():
            via = f" via {'>'.join(edge['via'])}" if edge["via"] else ""
            lines.append(
                f"order {edge['from']} -> {edge['to']} "
                f"({edge['fn']}:{edge['line']}{via})"
            )
        for scc in analysis.cycles():
            lines.append("CYCLE " + " / ".join(scc))
    else:
        raise ValueError(f"unknown graph {what!r}")
    return "\n".join(lines)


__all__ = [
    "BLOCKING_CALLS",
    "LockAnalysis",
    "ProjectGraph",
    "SUMMARY_VERSION",
    "TAINT_SOURCE_CALLS",
    "build_graph",
    "extract_summary",
    "module_dotted",
    "render_graph",
]
