"""Contract rule pack: project-level completeness checks.

These rules keep the registry, the CCA hook surface and the docs in
lockstep with the code:

* ``stack-profile-fields`` — every ``PROFILE = StackProfile(...)`` in
  ``stacks/`` passes the full required field set, so a new stack cannot
  silently fall back to defaults the paper's tables disagree with.
* ``cca-hook-surface`` — every direct ``CongestionController`` subclass
  implements the hooks the sender drives (``cwnd``, ``on_ack``,
  ``on_congestion_event``) and declares its ``name``.
* ``cli-doc-coverage`` — every CLI subcommand registered in
  ``cli.py`` appears somewhere in README.md / docs/*.md.
* ``queue-sql-confinement`` — SQL touching the fabric queue tables
  (``fabric_tasks`` / ``fabric_tenants``) lives only in
  ``fabric/queue.py`` and the schema ladder; every other module goes
  through :class:`repro.fabric.queue.WorkQueue`, so lease/state
  invariants have exactly one enforcement point.
"""

from __future__ import annotations

import ast
import re
from typing import List, Optional, Set

from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.rules import ModuleSource, Rule, dotted_name

#: StackProfile keywords a registered stack must pass explicitly.
REQUIRED_PROFILE_FIELDS = ("name", "organization", "version", "ccas")

#: Hook surface every direct CongestionController subclass must define.
REQUIRED_CCA_HOOKS = ("cwnd", "on_ack", "on_congestion_event")

#: Stacks-package modules that do not register a profile.
_STACKS_EXEMPT = {"stacks/__init__.py", "stacks/base.py",
                  "stacks/registry.py", "stacks/_common.py"}


class StackProfileFieldsRule(Rule):
    id = "stack-profile-fields"
    pack = "contracts"
    description = (
        "registered StackProfile(...) calls must pass "
        + "/".join(REQUIRED_PROFILE_FIELDS)
        + " explicitly"
    )

    def check(self, modules, config):
        findings: List[Finding] = []
        for module in modules:
            if not module.rel.startswith("stacks/"):
                continue
            if module.rel in _STACKS_EXEMPT:
                continue
            profile_call = self._profile_call(module.tree)
            if profile_call is None:
                findings.append(
                    Finding(
                        rule=self.id,
                        path=module.display,
                        line=1,
                        message=(
                            "stacks module registers no "
                            "'PROFILE = StackProfile(...)'"
                        ),
                        snippet=module.snippet(1),
                    )
                )
                continue
            passed = {kw.arg for kw in profile_call.keywords if kw.arg}
            missing = [
                fieldname
                for fieldname in REQUIRED_PROFILE_FIELDS
                if fieldname not in passed
            ]
            if missing:
                findings.append(
                    module.finding(
                        self.id,
                        profile_call,
                        "StackProfile is missing required field(s): "
                        + ", ".join(missing),
                    )
                )
        return findings

    @staticmethod
    def _profile_call(tree: ast.AST) -> Optional[ast.Call]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Assign):
                continue
            if not any(
                isinstance(t, ast.Name) and t.id == "PROFILE"
                for t in node.targets
            ):
                continue
            value = node.value
            if isinstance(value, ast.Call):
                name = dotted_name(value.func) or ""
                if name.split(".")[-1] == "StackProfile":
                    return value
        return None


class CCAHookSurfaceRule(Rule):
    id = "cca-hook-surface"
    pack = "contracts"
    description = (
        "direct CongestionController subclasses must define "
        + "/".join(REQUIRED_CCA_HOOKS)
        + " and a class-level name"
    )

    def check(self, modules, config):
        findings: List[Finding] = []
        for module in modules:
            if not module.rel.startswith("cca/"):
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                bases = {
                    (dotted_name(base) or "").split(".")[-1]
                    for base in node.bases
                }
                if "CongestionController" not in bases:
                    continue
                defined = self._defined_names(node)
                missing = [
                    hook for hook in REQUIRED_CCA_HOOKS if hook not in defined
                ]
                if "name" not in defined:
                    missing.append("name")
                if missing:
                    findings.append(
                        module.finding(
                            self.id,
                            node,
                            f"CCA class {node.name} is missing: "
                            + ", ".join(missing),
                        )
                    )
        return findings

    @staticmethod
    def _defined_names(cls: ast.ClassDef) -> Set[str]:
        defined: Set[str] = set()
        for stmt in cls.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defined.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        defined.add(target.id)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                defined.add(stmt.target.id)
        return defined


class CliDocCoverageRule(Rule):
    id = "cli-doc-coverage"
    pack = "contracts"
    description = (
        "every CLI subcommand registered via add_parser must be "
        "documented in README.md or docs/"
    )

    def check(self, modules, config):
        cli_modules = [
            m for m in modules
            if m.rel == "cli.py" or m.rel.endswith("/cli.py")
        ]
        if not cli_modules:
            return []
        corpus = config.doc_corpus()
        if not corpus:
            return []
        findings: List[Finding] = []
        for cli_module in cli_modules:
            findings.extend(self._check_module(cli_module, corpus))
        return findings

    def _check_module(self, cli_module, corpus):
        findings: List[Finding] = []
        for node in ast.walk(cli_module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func) or ""
            if not name.endswith("add_parser"):
                continue
            if not node.args:
                continue
            first = node.args[0]
            if not isinstance(first, ast.Constant) or not isinstance(
                first.value, str
            ):
                continue
            command = first.value
            if not re.search(rf"\b{re.escape(command)}\b", corpus):
                findings.append(
                    cli_module.finding(
                        self.id,
                        node,
                        f"subcommand {command!r} is not mentioned in "
                        "README.md or docs/*.md",
                    )
                )
        return findings


#: The fabric queue tables and the only modules allowed to name them in
#: SQL (the queue itself, and the schema migration ladder).  The worker
#: registry rides the same confinement: drain directives and liveness
#: stamps must go through WorkQueue so their invariants audit in one
#: file.
QUEUE_TABLES = ("fabric_tasks", "fabric_tenants", "fabric_workers")
_QUEUE_SQL_ALLOWED = {
    "fabric/queue.py",
    "store/schema.py",
    # The rule's own definition names the tables it polices.
    "lint/rules/contracts.py",
}


class QueueSqlConfinementRule(Rule):
    id = "queue-sql-confinement"
    pack = "contracts"
    description = (
        "SQL against the fabric queue tables ("
        + "/".join(QUEUE_TABLES)
        + ") is confined to fabric/queue.py and store/schema.py"
    )

    def check(self, modules, config):
        findings: List[Finding] = []
        for module in modules:
            if module.rel in _QUEUE_SQL_ALLOWED:
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Constant) or not isinstance(
                    node.value, str
                ):
                    continue
                named = [t for t in QUEUE_TABLES if t in node.value]
                if not named:
                    continue
                findings.append(
                    module.finding(
                        self.id,
                        node,
                        "queue-table SQL ("
                        + ", ".join(named)
                        + ") outside fabric/queue.py — go through "
                        "repro.fabric.queue.WorkQueue",
                    )
                )
        return findings


RULES = (
    StackProfileFieldsRule,
    CCAHookSurfaceRule,
    CliDocCoverageRule,
    QueueSqlConfinementRule,
)

__all__ = [
    "RULES",
    "REQUIRED_PROFILE_FIELDS",
    "REQUIRED_CCA_HOOKS",
    "QUEUE_TABLES",
] + [cls.__name__ for cls in RULES]
