"""Concurrency rule pack.

Applied to the threaded packages (``service/``, ``exec/``, ``store/``):

* ``lock-discipline`` — for every class that builds a ``threading``
  lock/condition in ``__init__``, *learn* which ``self._*`` attributes
  are written while that lock is held, then report any access to those
  attributes outside a locked region.  Attributes built from internally
  synchronised types (queues, events, ...) are exempt, as is
  ``__init__`` itself (construction happens-before publication).
* ``sqlite-thread`` — ``sqlite3`` connections are thread-bound: flag
  ``check_same_thread=False``, connections handed to ``threading.Thread``
  via ``args=``, and thread-target methods that use a connection
  attribute created elsewhere.
* ``blocking-under-lock`` — sleeping, joining threads/processes, HTTP
  requests or subprocesses while holding a lock stalls every other
  thread; ``Condition.wait`` on the held lock is the sanctioned
  exception (it releases the lock).
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.config import LOCK_FACTORIES, LintConfig
from repro.lint.findings import Finding
from repro.lint.rules import (
    ModuleSource,
    Rule,
    call_name,
    canonical,
    dotted_name,
    import_map,
)

#: Methods where unlocked access is allowed: construction and teardown
#: happen before/after the object is shared between threads.
_EXEMPT_METHODS = frozenset({"__init__", "__del__", "__post_init__"})


def _self_attr(node: ast.AST) -> Optional[str]:
    """``X`` for an ``self.X`` attribute expression, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _init_factories(cls: ast.ClassDef, imports) -> Dict[str, str]:
    """Map ``self.X`` -> canonical factory name for ``self.X = Fac(...)``."""
    factories: Dict[str, str] = {}
    for method in cls.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if method.name != "__init__":
            continue
        for node in ast.walk(method):
            if not isinstance(node, ast.Assign) or not isinstance(
                node.value, ast.Call
            ):
                continue
            name = call_name(node.value, imports)
            if not name:
                continue
            for target in node.targets:
                attr = _self_attr(target)
                if attr:
                    factories[attr] = name
    return factories


class _Access:
    __slots__ = ("attr", "write", "locked", "method", "node")

    def __init__(self, attr, write, locked, method, node):
        self.attr = attr
        self.write = write
        self.locked = locked
        self.method = method
        self.node = node


def _with_lock_attrs(node: ast.With, lock_attrs: Set[str]) -> bool:
    """True when a ``with`` statement acquires one of the class locks."""
    for item in node.items:
        attr = _self_attr(item.context_expr)
        if attr in lock_attrs:
            return True
        # `with self._lock.acquire():` style — treat any call on the
        # lock attribute as acquisition too.
        if isinstance(item.context_expr, ast.Call):
            callee = item.context_expr.func
            if isinstance(callee, ast.Attribute) and _self_attr(
                callee.value
            ) in lock_attrs:
                return True
    return False


#: Method calls that mutate their receiver in place: ``self._x.append(y)``
#: is a write to ``self._x`` for lock-learning purposes.
_MUTATOR_METHODS = frozenset(
    {
        "append", "extend", "insert", "add", "update", "setdefault",
        "pop", "popitem", "popleft", "appendleft", "clear", "remove",
        "discard", "sort", "reverse",
    }
)


def _collect_accesses(
    method: ast.FunctionDef, lock_attrs: Set[str]
) -> List[_Access]:
    """Every ``self._*`` access in a method, tagged locked/unlocked.

    Writes are direct assignments (``self._x = ...``), subscript or
    attribute stores through the attribute (``self._x[k] = ...``),
    augmented assignments, and in-place mutator calls
    (``self._x.append(...)``).
    """
    accesses: List[_Access] = []

    def record(attr: Optional[str], write: bool, locked: bool, node) -> None:
        if attr is not None and attr.startswith("_"):
            accesses.append(_Access(attr, write, locked, method.name, node))

    def walk(node: ast.AST, locked: bool) -> None:
        if isinstance(node, ast.With) and _with_lock_attrs(node, lock_attrs):
            for item in node.items:
                walk(item.context_expr, locked)
            for stmt in node.body:
                walk(stmt, True)
            return
        if isinstance(node, ast.Subscript) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            record(_self_attr(node.value), True, locked, node)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATOR_METHODS
        ):
            record(_self_attr(node.func.value), True, locked, node)
        attr = _self_attr(node)
        if attr is not None:
            write = isinstance(node.ctx, (ast.Store, ast.Del))
            record(attr, write, locked, node)
        for child in ast.iter_child_nodes(node):
            walk(child, locked)

    for stmt in method.body:
        walk(stmt, False)
    return accesses


class LockDisciplineRule(Rule):
    id = "lock-discipline"
    pack = "concurrency"
    description = (
        "attributes written under a class's lock must never be accessed "
        "without it"
    )

    def check(self, modules, config):
        findings: List[Finding] = []
        for module in modules:
            if not module.in_dirs(config.concurrency_dirs):
                continue
            imports = import_map(module.tree)
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    findings.extend(
                        self._check_class(module, node, imports, config)
                    )
        return findings

    def _check_class(
        self,
        module: ModuleSource,
        cls: ast.ClassDef,
        imports,
        config: LintConfig,
    ) -> List[Finding]:
        factories = _init_factories(cls, imports)
        lock_attrs = {
            attr
            for attr, factory in factories.items()
            if factory in LOCK_FACTORIES
        }
        if not lock_attrs:
            return []
        thread_safe = {
            attr
            for attr, factory in factories.items()
            if factory in config.thread_safe_factories
        }
        methods = [
            stmt
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        accesses: List[_Access] = []
        for method in methods:
            accesses.extend(_collect_accesses(method, lock_attrs))
        # Learn the protected set: attributes somebody writes while
        # holding the lock (outside __init__).
        protected: Dict[str, Tuple[str, int]] = {}
        for acc in accesses:
            if (
                acc.write
                and acc.locked
                and acc.method not in _EXEMPT_METHODS
                and acc.attr not in lock_attrs
                and acc.attr not in thread_safe
            ):
                protected.setdefault(
                    acc.attr, (acc.method, acc.node.lineno)
                )
        findings: List[Finding] = []
        reported: Set[Tuple[str, int]] = set()
        for acc in accesses:
            if (
                acc.attr in protected
                and not acc.locked
                and acc.method not in _EXEMPT_METHODS
                # One finding per (attribute, line): a subscript store
                # records both the store and the inner attribute load.
                and (acc.attr, acc.node.lineno) not in reported
            ):
                reported.add((acc.attr, acc.node.lineno))
                where, line = protected[acc.attr]
                lock_names = ", ".join(
                    f"self.{name}" for name in sorted(lock_attrs)
                )
                findings.append(
                    module.finding(
                        self.id,
                        acc.node,
                        f"{cls.name}.{acc.method} accesses self.{acc.attr} "
                        f"without holding {lock_names}, but "
                        f"{cls.name}.{where} (line {line}) writes it "
                        "under the lock",
                    )
                )
        return findings


class SqliteThreadRule(Rule):
    id = "sqlite-thread"
    pack = "concurrency"
    description = (
        "sqlite3 connections are thread-bound; open one per thread "
        "instead of sharing"
    )

    def check(self, modules, config):
        findings: List[Finding] = []
        for module in modules:
            if not module.in_dirs(config.concurrency_dirs):
                continue
            imports = import_map(module.tree)
            conn_names: Set[str] = set()  # "x" locals and "self.x" attrs
            func_defs: Dict[str, ast.FunctionDef] = {}
            for node in ast.walk(module.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    func_defs.setdefault(node.name, node)
                if not isinstance(node, ast.Assign):
                    continue
                if (
                    isinstance(node.value, ast.Call)
                    and call_name(node.value, imports) == "sqlite3.connect"
                ):
                    for target in node.targets:
                        name = dotted_name(target)
                        if name:
                            conn_names.add(name)
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = call_name(node, imports)
                if name == "sqlite3.connect":
                    for kw in node.keywords:
                        if (
                            kw.arg == "check_same_thread"
                            and isinstance(kw.value, ast.Constant)
                            and kw.value.value is False
                        ):
                            findings.append(
                                module.finding(
                                    self.id,
                                    node,
                                    "check_same_thread=False disables "
                                    "sqlite3's thread guard; open one "
                                    "connection per thread instead",
                                )
                            )
                elif name == "threading.Thread":
                    findings.extend(
                        self._check_thread_call(
                            module, node, conn_names, func_defs
                        )
                    )
        return findings

    def _check_thread_call(
        self, module, node: ast.Call, conn_names, func_defs
    ) -> List[Finding]:
        findings: List[Finding] = []
        target_name = None
        for kw in node.keywords:
            if kw.arg == "args" and isinstance(kw.value, (ast.Tuple, ast.List)):
                for element in kw.value.elts:
                    if dotted_name(element) in conn_names:
                        findings.append(
                            module.finding(
                                self.id,
                                node,
                                "sqlite3 connection passed into a thread "
                                "via args=; the target thread cannot use "
                                "it",
                            )
                        )
            elif kw.arg == "target":
                target_name = dotted_name(kw.value)
        if target_name:
            func = func_defs.get(target_name.split(".")[-1])
            if func is not None:
                # A connection the target opens in its own body belongs
                # to the worker thread — the sanctioned pattern.
                own: Set[str] = set()
                for inner in ast.walk(func):
                    if isinstance(inner, ast.Assign):
                        for target in inner.targets:
                            name = dotted_name(target)
                            if name:
                                own.add(name)
                for inner in ast.walk(func):
                    used = dotted_name(inner)
                    if used in conn_names and used not in own:
                        findings.append(
                            module.finding(
                                self.id,
                                node,
                                f"thread target {func.name}() uses the "
                                f"sqlite3 connection {used} opened on "
                                "another thread",
                            )
                        )
                        break
        return findings


#: Canonical callables that block the calling thread.
_BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "urllib.request.urlopen",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "socket.create_connection",
    }
)
_BLOCKING_PREFIXES = ("requests.", "http.client.")
#: ``.join()`` receivers that look like threads/processes/pools.
_JOINABLE = re.compile(r"(thread|proc|worker|pool|executor)", re.IGNORECASE)


class BlockingUnderLockRule(Rule):
    id = "blocking-under-lock"
    pack = "concurrency"
    description = (
        "sleep/join/HTTP/subprocess calls while holding a lock stall "
        "every other thread"
    )

    def check(self, modules, config):
        findings: List[Finding] = []
        for module in modules:
            if not module.in_dirs(config.concurrency_dirs):
                continue
            imports = import_map(module.tree)
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                factories = _init_factories(node, imports)
                lock_attrs = {
                    attr
                    for attr, factory in factories.items()
                    if factory in LOCK_FACTORIES
                }
                if not lock_attrs:
                    continue
                for method in node.body:
                    if isinstance(
                        method, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        self._scan_method(
                            module, method, lock_attrs, imports, findings
                        )
        return findings

    def _scan_method(self, module, method, lock_attrs, imports, findings):
        def walk(node, locked):
            if isinstance(node, ast.With) and _with_lock_attrs(
                node, lock_attrs
            ):
                for stmt in node.body:
                    walk(stmt, True)
                return
            if locked and isinstance(node, ast.Call):
                message = self._blocking_call(node, lock_attrs, imports)
                if message:
                    findings.append(module.finding(self.id, node, message))
            for child in ast.iter_child_nodes(node):
                walk(child, locked)

        for stmt in method.body:
            walk(stmt, False)

    @staticmethod
    def _blocking_call(node: ast.Call, lock_attrs, imports) -> Optional[str]:
        name = call_name(node, imports) or ""
        if name in _BLOCKING_CALLS or name.startswith(_BLOCKING_PREFIXES):
            return f"{name}() blocks while a lock is held"
        if isinstance(node.func, ast.Attribute):
            receiver = node.func.value
            receiver_attr = _self_attr(receiver)
            # Condition.wait on the held lock *releases* it: sanctioned.
            if receiver_attr in lock_attrs:
                return None
            method = node.func.attr
            receiver_name = (dotted_name(receiver) or "").split(".")[-1]
            if method == "join" and _JOINABLE.search(receiver_name or ""):
                return (
                    f"{receiver_name}.join() while a lock is held can "
                    "deadlock if the joined thread needs the same lock"
                )
            if method == "result" and _JOINABLE.search(receiver_name or ""):
                return (
                    f"{receiver_name}.result() blocks on another task "
                    "while a lock is held"
                )
        return None


class RawSleepRetryRule(Rule):
    id = "raw-sleep-retry"
    pack = "concurrency"
    description = (
        "raw time.sleep in the pipeline packages is a hand-rolled retry "
        "loop; route pauses through repro.faults.retry.RetryPolicy"
    )

    def check(self, modules, config):
        findings: List[Finding] = []
        allowed = getattr(config, "sleep_allowed_files", ())
        sanctioned = getattr(
            config, "sanctioned_sleep", "repro.faults.retry.default_sleep"
        )
        for module in modules:
            if not module.in_dirs(config.concurrency_dirs):
                continue
            if module.rel in allowed:
                continue
            imports = import_map(module.tree)
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                if call_name(node, imports) == "time.sleep":
                    findings.append(
                        module.finding(
                            self.id,
                            node,
                            "time.sleep() outside RetryPolicy: retry "
                            "pauses must go through the policy's "
                            f"injectable sleep seam ({sanctioned})",
                        )
                    )
        return findings


RULES = (
    LockDisciplineRule,
    SqliteThreadRule,
    BlockingUnderLockRule,
    RawSleepRetryRule,
)

__all__ = ["RULES"] + [cls.__name__ for cls in RULES]
