"""Determinism rule pack.

Applied to the simulation and metric packages (``netsim/``, ``cca/``,
``stacks/``, ``core/``, ``harness/``, ...): anything that can make two
runs of the same seeded experiment differ — wall-clock reads, unseeded
randomness, set-iteration order, ``id()`` keys, environment reads — is
reported, because the paper's methodology attributes every deviation to
the implementation under test, never to environmental noise.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.rules import (
    ModuleSource,
    Rule,
    call_name,
    canonical,
    dotted_name,
    import_map,
)

#: Canonical names whose call reads a clock that differs between runs.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.clock_gettime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


class WallClockRule(Rule):
    id = "wall-clock"
    pack = "determinism"
    description = (
        "wall-clock reads (time.time/monotonic/perf_counter, datetime.now) "
        "are forbidden in simulation paths; telemetry injects the "
        "sanctioned clock seam instead"
    )

    def _applies(self, module: ModuleSource, config: LintConfig) -> bool:
        return (
            module.in_dirs(config.determinism_dirs)
            or module.rel in config.wallclock_extra_files
        )

    def check(self, modules, config):
        findings: List[Finding] = []
        for module in modules:
            if not self._applies(module, config):
                continue
            imports = import_map(module.tree)
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = call_name(node, imports)
                if name in WALL_CLOCK_CALLS:
                    findings.append(
                        module.finding(
                            self.id,
                            node,
                            f"{name}() reads the wall clock; inject "
                            f"{config.sanctioned_clock} (or simulated "
                            "time) instead",
                        )
                    )
        return findings


class UnseededRandomRule(Rule):
    id = "unseeded-random"
    pack = "determinism"
    description = (
        "module-level random.* calls and numpy global RNG use are "
        "forbidden; build random.Random(seed) / np.random.default_rng(seed)"
    )

    def check(self, modules, config):
        findings: List[Finding] = []
        for module in modules:
            if not module.in_dirs(config.determinism_dirs):
                continue
            imports = import_map(module.tree)
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = call_name(node, imports)
                if not name:
                    continue
                message = self._verdict(name, node)
                if message:
                    findings.append(module.finding(self.id, node, message))
        return findings

    @staticmethod
    def _verdict(name: str, node: ast.Call) -> Optional[str]:
        seeded = bool(node.args) or bool(node.keywords)
        if name == "random.Random":
            if not seeded:
                return "random.Random() without a seed is nondeterministic"
            return None
        if name == "random.SystemRandom":
            return "random.SystemRandom draws OS entropy (never reproducible)"
        if name.startswith("random."):
            tail = name.split(".", 1)[1]
            return (
                f"module-level random.{tail}() uses the shared unseeded "
                "RNG; derive a random.Random(seed) instance instead"
            )
        if name.startswith("numpy.random."):
            tail = name[len("numpy.random."):]
            if tail == "default_rng":
                if not seeded:
                    return (
                        "np.random.default_rng() without a seed is "
                        "nondeterministic"
                    )
                return None
            if tail in ("Generator", "SeedSequence", "PCG64", "Philox"):
                return None  # explicit bit-generator plumbing is seeded upstream
            return (
                f"np.random.{tail} uses numpy's global RNG; use "
                "np.random.default_rng(seed)"
            )
        return None


#: Consumers for which a set argument is order-insensitive.
_ORDER_FREE = frozenset(
    {
        "sorted", "len", "sum", "min", "max", "any", "all", "bool",
        "set", "frozenset",
    }
)


class _SetScan(ast.NodeVisitor):
    """Scope-aware scan for order-sensitive consumption of sets.

    Tracks, per function/class scope, which local names were last
    assigned a set-valued expression; nested scopes inherit the taint of
    their enclosing scope at definition point.
    """

    def __init__(self, rule, module, imports, findings, inherited=()):
        self.rule = rule
        self.module = module
        self.imports = imports
        self.findings = findings
        self.set_vars: Set[str] = set(inherited)

    def scan(self, scope) -> None:
        for stmt in scope.body:
            self.visit(stmt)

    def _nested(self, node) -> None:
        _SetScan(
            self.rule, self.module, self.imports, self.findings, self.set_vars
        ).scan(node)

    def visit_FunctionDef(self, node):
        self._nested(node)

    visit_AsyncFunctionDef = visit_FunctionDef
    visit_ClassDef = visit_FunctionDef

    def _is_set_expr(self, node) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.set_vars
        if isinstance(node, ast.Call):
            return canonical(dotted_name(node.func), self.imports) in (
                "set",
                "frozenset",
            )
        return False

    def _report(self, node, message) -> None:
        self.findings.append(self.module.finding(self.rule.id, node, message))

    def visit_Assign(self, node):
        self.generic_visit(node)
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            if self._is_set_expr(node.value):
                self.set_vars.add(node.targets[0].id)
            else:
                self.set_vars.discard(node.targets[0].id)

    def visit_For(self, node):
        if self._is_set_expr(node.iter):
            self._report(
                node,
                "for-loop over a set: iteration order is hash order; "
                "wrap in sorted(...)",
            )
        self.generic_visit(node)

    def _visit_comp(self, node):
        for gen in node.generators:
            if self._is_set_expr(gen.iter):
                self._report(
                    node,
                    "comprehension over a set produces hash-ordered "
                    "output; wrap in sorted(...)",
                )
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_GeneratorExp = _visit_comp
    visit_DictComp = _visit_comp

    def visit_Call(self, node):
        name = canonical(dotted_name(node.func), self.imports) or ""
        ordered_sink = (
            name in ("list", "tuple", "enumerate", "dict.fromkeys")
            or name.endswith(".join")
        )
        if ordered_sink and node.args and self._is_set_expr(node.args[0]):
            self._report(
                node,
                f"{name}(<set>) freezes hash order into an ordered "
                "result; sort first",
            )
        self.generic_visit(node)


class SetIterationRule(Rule):
    id = "set-iteration"
    pack = "determinism"
    description = (
        "iterating a set/frozenset feeds hash order into results; sort "
        "first (sorted(...)) or keep a list"
    )

    def check(self, modules, config):
        findings: List[Finding] = []
        for module in modules:
            if not module.in_dirs(config.determinism_dirs):
                continue
            imports = import_map(module.tree)
            _SetScan(self, module, imports, findings).scan(module.tree)
        return findings


class IdKeyedDictRule(Rule):
    id = "id-keyed-dict"
    pack = "determinism"
    description = (
        "id() values vary between runs; key containers by stable "
        "identity (names, tuples) instead"
    )

    def check(self, modules, config):
        findings: List[Finding] = []
        for module in modules:
            if not module.in_dirs(config.determinism_dirs):
                continue
            for node in ast.walk(module.tree):
                spot = self._id_key_site(node)
                if spot is not None:
                    findings.append(
                        module.finding(
                            self.id, spot,
                            "container keyed by id(...): addresses differ "
                            "between runs and resurrect freed ids",
                        )
                    )
        return findings

    @staticmethod
    def _is_id_call(node) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "id"
        )

    def _id_key_site(self, node):
        if isinstance(node, ast.Subscript) and self._is_id_call(node.slice):
            return node
        if isinstance(node, ast.Dict) and any(
            self._is_id_call(k) for k in node.keys if k is not None
        ):
            return node
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("get", "setdefault", "pop", "add")
            and node.args
            and self._is_id_call(node.args[0])
        ):
            return node
        return None


class EnvironReadRule(Rule):
    id = "environ-read"
    pack = "determinism"
    description = (
        "os.environ is hidden global state; read it only in the "
        "config/cache seams and pass values down explicitly"
    )

    def check(self, modules, config):
        findings: List[Finding] = []
        for module in modules:
            if module.rel in config.environ_allowed_files:
                continue
            imports = import_map(module.tree)
            for node in ast.walk(module.tree):
                name = None
                if isinstance(node, ast.Call):
                    name = call_name(node, imports)
                    if name is not None and not (
                        name == "os.getenv"
                        or name.startswith("os.environ.")
                    ):
                        name = None
                elif isinstance(node, ast.Subscript):
                    base = canonical(dotted_name(node.value), imports)
                    if base == "os.environ":
                        name = "os.environ[...]"
                if name:
                    allowed = ", ".join(config.environ_allowed_files)
                    findings.append(
                        module.finding(
                            self.id, node,
                            f"{name} read outside the sanctioned files "
                            f"({allowed})",
                        )
                    )
        return findings


RULES = (
    WallClockRule,
    UnseededRandomRule,
    SetIterationRule,
    IdKeyedDictRule,
    EnvironReadRule,
)

__all__ = ["RULES"] + [cls.__name__ for cls in RULES]
