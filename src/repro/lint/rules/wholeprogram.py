"""Whole-program rules: lock-order deadlocks, held-lock blocking, taint.

These rules are ``scope = "project"``: instead of a list of parsed
modules they receive the assembled :class:`repro.lint.graph.ProjectGraph`
(import graph, call graph, lock model) and reason across module
boundaries.  They live in their own module — not ``concurrency.py`` /
``determinism.py`` — because the graph layer itself imports those packs'
vocabularies (``WALL_CLOCK_CALLS``), and rules are the leaves of that
import tree.

* ``lock-order-cycle`` — cycles in the interprocedural
  lock-acquisition-order graph: two code paths that take the same locks
  in opposite orders can deadlock under concurrency, even when each
  path is individually correct.
* ``lock-held-blocking`` — a blocking primitive (sqlite commit, HTTP
  I/O, ``sleep``, subprocess, ``queue.get``/``join``) reached *through
  a call chain* while a lock is held; the per-method
  ``blocking-under-lock`` rule cannot see past the first call.
* ``taint-identity`` — a nondeterminism source (wall clock, RNG,
  ``os.urandom``, ``id()``, set iteration order) flows into an identity
  sink (``trial_identity``, ``cache_key``, spec fingerprints, the
  content-addressed trial writes); trial identity must be a pure
  function of the spec or dedup/diff/bit-identical replay all break.
"""

from __future__ import annotations

from typing import List

from repro.lint.findings import Finding
from repro.lint.rules import ProjectRule


class LockOrderCycleRule(ProjectRule):
    id = "lock-order-cycle"
    pack = "concurrency"
    version = 1
    description = (
        "the interprocedural lock-acquisition-order graph must be "
        "acyclic (a cycle is a potential deadlock)"
    )

    def check_project(self, graph, config) -> List[Finding]:
        return graph.lock_analysis().cycle_findings(self.id)


class LockHeldBlockingRule(ProjectRule):
    id = "lock-held-blocking"
    pack = "concurrency"
    version = 1
    description = (
        "no lock may be held across a blocking call reached through "
        "any resolved call chain (sqlite commit, HTTP, sleep, "
        "subprocess, queue waits)"
    )

    def check_project(self, graph, config) -> List[Finding]:
        return graph.lock_analysis().blocking_findings(self.id)


class TaintIdentityRule(ProjectRule):
    id = "taint-identity"
    pack = "determinism"
    version = 1
    description = (
        "nondeterminism sources (clock/RNG/urandom/id()/set order) "
        "must not flow into identity sinks (trial_identity, "
        "cache_key, fingerprints, put_trial)"
    )

    def check_project(self, graph, config) -> List[Finding]:
        from repro.lint.taint import TaintAnalysis

        return TaintAnalysis(graph, config).findings(self.id)


RULES = (
    LockOrderCycleRule,
    LockHeldBlockingRule,
    TaintIdentityRule,
)

__all__ = ["RULES"] + [cls.__name__ for cls in RULES]
