"""Rule infrastructure: parsed modules, AST helpers, and the registry.

A rule is a class with an ``id``, a ``pack`` and a
``check(modules, config) -> List[Finding]`` method.  Rules receive every
parsed module plus the :class:`~repro.lint.config.LintConfig` and decide
their own scoping, so per-module packs and whole-project contract rules
share one interface.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.lint.config import LintConfig
from repro.lint.findings import Finding


@dataclass
class ModuleSource:
    """One parsed source file presented to every rule."""

    path: Path  # absolute
    rel: str  # posix path relative to the analysed package root
    display: str  # repo-relative posix path used in findings
    text: str
    tree: ast.AST
    lines: List[str] = field(default_factory=list)

    def snippet(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        return Finding(
            rule=rule,
            path=self.display,
            line=line,
            message=message,
            snippet=self.snippet(line),
        )

    def in_dirs(self, dirs) -> bool:
        head = self.rel.split("/", 1)[0]
        return head in dirs


def parse_module(path: Path, rel: str, display: str) -> Optional[ModuleSource]:
    """Parse one file; returns None when the source does not parse."""
    text = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError:
        return None
    return ModuleSource(
        path=path,
        rel=rel,
        display=display,
        text=text,
        tree=tree,
        lines=text.splitlines(),
    )


# ------------------------------------------------------------- AST helpers


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an Attribute/Name chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def import_map(tree: ast.AST) -> Dict[str, str]:
    """Local name -> canonical dotted prefix, from a module's imports."""
    mapping: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                mapping[alias.asname or alias.name.split(".", 1)[0]] = (
                    alias.name if alias.asname else alias.name.split(".", 1)[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                if alias.name == "*":
                    continue
                mapping[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return mapping


def canonical(dotted: Optional[str], imports: Dict[str, str]) -> Optional[str]:
    """Rewrite a dotted name's first segment through the import map."""
    if not dotted:
        return None
    head, _, rest = dotted.partition(".")
    mapped = imports.get(head)
    if mapped is None:
        return dotted
    return f"{mapped}.{rest}" if rest else mapped


def call_name(node: ast.Call, imports: Dict[str, str]) -> Optional[str]:
    return canonical(dotted_name(node.func), imports)


class Rule:
    """Base class; subclasses set ``id``/``pack`` and implement check().

    ``scope`` partitions rules: ``"file"`` rules see parsed modules one
    file at a time (their findings are cacheable per content hash);
    ``"project"`` rules implement :meth:`check_project` against the
    assembled whole-program graph instead.  ``version`` participates in
    the analysis-cache signature — bump it whenever a rule's behaviour
    changes, so stale cached findings are discarded.
    """

    id: str = ""
    pack: str = ""
    description: str = ""
    scope: str = "file"
    version: int = 1

    def check(
        self, modules: List[ModuleSource], config: LintConfig
    ) -> List[Finding]:  # pragma: no cover - interface
        raise NotImplementedError


class ProjectRule(Rule):
    """A whole-program rule: runs once per lint against the project graph."""

    scope = "project"

    def check(self, modules, config) -> List[Finding]:
        return []

    def check_project(
        self, graph, config: LintConfig
    ) -> List[Finding]:  # pragma: no cover - interface
        raise NotImplementedError


def all_rules() -> List[Rule]:
    """Instantiate every registered rule (import cycles kept local)."""
    from repro.lint.rules import (
        concurrency,
        contracts,
        determinism,
        wholeprogram,
    )

    rules: List[Rule] = []
    for module in (determinism, concurrency, contracts, wholeprogram):
        for cls in module.RULES:
            rules.append(cls())
    return rules


__all__ = [
    "ModuleSource",
    "ProjectRule",
    "Rule",
    "all_rules",
    "call_name",
    "canonical",
    "dotted_name",
    "import_map",
    "parse_module",
]
