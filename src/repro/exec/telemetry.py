"""Run telemetry: per-job records, campaign aggregates, JSONL manifests.

Every :meth:`repro.exec.Executor.run` call is one *campaign*.  The
executor produces a :class:`JobRecord` per job (status, attempts,
wall-clock, worker-side cache hits/misses); :class:`CampaignTelemetry`
aggregates them across campaigns; :class:`RunManifest` appends the whole
story — a ``campaign_start`` line, one line per job, a ``campaign_end``
summary — to a JSONL file for offline inspection.  The optional
:class:`ProgressPrinter` renders per-job progress lines for the CLI.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import IO, List, Optional, Union

#: Job terminal states.  ``cached`` jobs were satisfied from the campaign
#: cache without running; ``timeout``/``crashed``/``failed`` describe the
#: *final* attempt of a job that exhausted its retries.
STATUS_OK = "ok"
STATUS_CACHED = "cached"
STATUS_FAILED = "failed"
STATUS_TIMEOUT = "timeout"
STATUS_CRASHED = "crashed"


@dataclass
class JobRecord:
    """Telemetry of one job across all its attempts."""

    index: int
    label: str = ""
    key: str = ""
    status: str = "pending"
    attempts: int = 0
    wall_s: float = 0.0
    worker_hits: int = 0
    worker_misses: int = 0
    error: Optional[str] = None
    retried: bool = False

    def row(self) -> dict:
        return asdict(self)


@dataclass
class CampaignTelemetry:
    """Aggregate counters over every campaign an executor has run."""

    campaigns: int = 0
    jobs: int = 0
    ok: int = 0
    cached: int = 0
    failed: int = 0
    retries: int = 0
    wall_s: float = 0.0
    job_wall_s: float = 0.0
    worker_hits: int = 0
    worker_misses: int = 0
    mode: str = ""

    def absorb(self, records: List[JobRecord], wall_s: float, mode: str) -> None:
        self.campaigns += 1
        self.wall_s += wall_s
        self.mode = mode
        for record in records:
            self.jobs += 1
            self.job_wall_s += record.wall_s
            self.worker_hits += record.worker_hits
            self.worker_misses += record.worker_misses
            self.retries += max(0, record.attempts - 1)
            if record.status == STATUS_CACHED:
                self.cached += 1
            elif record.status == STATUS_OK:
                self.ok += 1
            else:
                self.failed += 1

    def summary(self) -> str:
        parts = [
            f"{self.jobs} jobs ({self.ok} run, {self.cached} cached"
            + (f", {self.failed} failed" if self.failed else "")
            + ")",
            f"{self.wall_s:.1f}s wall / {self.job_wall_s:.1f}s cpu",
        ]
        if self.retries:
            parts.append(f"{self.retries} retries")
        if self.worker_hits or self.worker_misses:
            parts.append(
                f"worker cache {self.worker_hits} hits / "
                f"{self.worker_misses} misses"
            )
        if self.mode:
            parts.append(f"mode={self.mode}")
        return "exec: " + ", ".join(parts)


class RunManifest:
    """Append-only JSONL journal of executor campaigns."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)

    def _append(self, record: dict) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")

    def campaign_start(self, campaign: str, jobs: int, workers: int, mode: str) -> None:
        self._append(
            {
                "event": "campaign_start",
                "campaign": campaign,
                "jobs": jobs,
                "workers": workers,
                "mode": mode,
                "time": time.time(),
            }
        )

    def job(self, campaign: str, record: JobRecord) -> None:
        self._append({"event": "job", "campaign": campaign, **record.row()})

    def campaign_end(
        self, campaign: str, records: List[JobRecord], wall_s: float, cache: dict
    ) -> None:
        statuses: dict = {}
        for record in records:
            statuses[record.status] = statuses.get(record.status, 0) + 1
        self._append(
            {
                "event": "campaign_end",
                "campaign": campaign,
                "statuses": statuses,
                "wall_s": round(wall_s, 4),
                "cache": cache,
                "time": time.time(),
            }
        )


class ProgressPrinter:
    """Minimal CLI progress renderer: one line per finished job."""

    def __init__(self, stream: Optional[IO] = None):
        self.stream = stream if stream is not None else sys.stderr

    def __call__(self, record: JobRecord, done: int, total: int) -> None:
        label = record.label or record.key or f"job {record.index}"
        note = f" ({record.error})" if record.error else ""
        print(
            f"[{done}/{total}] {label}: {record.status} "
            f"{record.wall_s:.2f}s{note}",
            file=self.stream,
            flush=True,
        )


__all__ = [
    "JobRecord",
    "CampaignTelemetry",
    "RunManifest",
    "ProgressPrinter",
    "STATUS_OK",
    "STATUS_CACHED",
    "STATUS_FAILED",
    "STATUS_TIMEOUT",
    "STATUS_CRASHED",
]
