"""Run telemetry: per-job records, campaign aggregates, JSONL manifests.

Every :meth:`repro.exec.Executor.run` call is one *campaign*.  The
executor produces a :class:`JobRecord` per job (status, attempts,
wall-clock, worker-side cache hits/misses); :class:`CampaignTelemetry`
aggregates them across campaigns; :class:`RunManifest` appends the whole
story — a ``campaign_start`` line, one line per job, a ``campaign_end``
summary — to a JSONL file for offline inspection.  The optional
:class:`ProgressPrinter` renders per-job progress lines for the CLI.
"""

from __future__ import annotations

import base64
import json
import os
import sqlite3
import sys
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import IO, TYPE_CHECKING, Callable, List, Optional, Union

from repro.faults import inject
from repro.faults.breaker import CircuitBreaker, get_breaker

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.store.warehouse import ResultStore


def default_clock() -> float:
    """The one sanctioned wall-clock read in the codebase.

    Everything under ``repro.exec`` / ``repro.service`` that stamps
    telemetry takes an injectable ``clock`` callable defaulting to this
    function, so tests substitute a fake clock instead of sleeping and
    racing on real time, and the lint ``wall-clock`` rule can forbid
    ``time.time()`` everywhere else (``LintConfig.sanctioned_clock``
    names exactly this seam).
    """
    return time.time()  # lint: disable=wall-clock -- the sanctioned clock seam all telemetry injects

#: Job terminal states.  ``cached`` jobs were satisfied from the campaign
#: cache without running; ``timeout``/``crashed``/``failed`` describe the
#: *final* attempt of a job that exhausted its retries; ``quarantined``
#: marks a poison job pulled from rotation after repeatedly crashing its
#: worker (see ``Executor.poison_crashes``).
STATUS_OK = "ok"
STATUS_CACHED = "cached"
STATUS_FAILED = "failed"
STATUS_TIMEOUT = "timeout"
STATUS_CRASHED = "crashed"
STATUS_QUARANTINED = "quarantined"


@dataclass
class JobRecord:
    """Telemetry of one job across all its attempts."""

    index: int
    label: str = ""
    key: str = ""
    status: str = "pending"
    attempts: int = 0
    wall_s: float = 0.0
    worker_hits: int = 0
    worker_misses: int = 0
    error: Optional[str] = None
    retried: bool = False

    def row(self) -> dict:
        return asdict(self)


@dataclass
class CampaignTelemetry:
    """Aggregate counters over every campaign an executor has run."""

    campaigns: int = 0
    jobs: int = 0
    ok: int = 0
    cached: int = 0
    failed: int = 0
    retries: int = 0
    wall_s: float = 0.0
    job_wall_s: float = 0.0
    worker_hits: int = 0
    worker_misses: int = 0
    mode: str = ""

    def absorb(self, records: List[JobRecord], wall_s: float, mode: str) -> None:
        self.campaigns += 1
        self.wall_s += wall_s
        self.mode = mode
        for record in records:
            self.jobs += 1
            self.job_wall_s += record.wall_s
            self.worker_hits += record.worker_hits
            self.worker_misses += record.worker_misses
            self.retries += max(0, record.attempts - 1)
            if record.status == STATUS_CACHED:
                self.cached += 1
            elif record.status == STATUS_OK:
                self.ok += 1
            else:
                self.failed += 1

    def summary(self) -> str:
        parts = [
            f"{self.jobs} jobs ({self.ok} run, {self.cached} cached"
            + (f", {self.failed} failed" if self.failed else "")
            + ")",
            f"{self.wall_s:.1f}s wall / {self.job_wall_s:.1f}s cpu",
        ]
        if self.retries:
            parts.append(f"{self.retries} retries")
        if self.worker_hits or self.worker_misses:
            parts.append(
                f"worker cache {self.worker_hits} hits / "
                f"{self.worker_misses} misses"
            )
        if self.mode:
            parts.append(f"mode={self.mode}")
        return "exec: " + ", ".join(parts)


class RunManifest:
    """Append-only JSONL journal of executor campaigns.

    Crash tolerance: the file handle is kept open across records, every
    record is written with a single ``write`` call and flushed to the OS
    immediately, and :meth:`close` fsyncs before closing.  A campaign
    that dies mid-run therefore leaves a readable prefix of complete
    lines rather than a truncated final record.
    """

    def __init__(
        self,
        path: Union[str, Path],
        clock: Callable[[], float] = default_clock,
    ):
        self.path = Path(path)
        self._handle: Optional[IO] = None
        self._clock = clock

    def _append(self, record: dict) -> None:
        if self._handle is None or self._handle.closed:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a")
        # Fault seam: journal-truncate/journal-corrupt tear this line the
        # way a crash mid-write would; readers must skip it, not die.
        line = inject.fault_value(
            "exec.manifest.line", json.dumps(record, sort_keys=True)
        )
        self._handle.write(line + "\n")
        self._handle.flush()

    def close(self) -> None:
        """Flush, fsync, and close the journal (reopens lazily if reused)."""
        if self._handle is None or self._handle.closed:
            return
        try:
            self._handle.flush()
            inject.fault_point("exec.manifest.fsync")
            os.fsync(self._handle.fileno())
        except OSError:  # fsync is best-effort (e.g. special files)
            pass
        finally:
            self._handle.close()

    def __enter__(self) -> "RunManifest":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown safety net
        try:
            self.close()
        except Exception:
            pass

    def _time(self) -> float:
        # Fault seam: clock-skew shifts this timestamp without touching
        # any payload — skewed telemetry must never change results.
        return inject.fault_value("exec.manifest.clock", self._clock())

    def campaign_start(self, campaign: str, jobs: int, workers: int, mode: str) -> None:
        self._append(
            {
                "event": "campaign_start",
                "campaign": campaign,
                "jobs": jobs,
                "workers": workers,
                "mode": mode,
                "time": self._time(),
            }
        )

    def job(self, campaign: str, record: JobRecord) -> None:
        self._append({"event": "job", "campaign": campaign, **record.row()})

    def campaign_end(
        self, campaign: str, records: List[JobRecord], wall_s: float, cache: dict
    ) -> None:
        statuses: dict = {}
        for record in records:
            statuses[record.status] = statuses.get(record.status, 0) + 1
        self._append(
            {
                "event": "campaign_end",
                "campaign": campaign,
                "statuses": statuses,
                "wall_s": round(wall_s, 4),
                "cache": cache,
                "time": self._time(),
            }
        )


class StoreSink:
    """Warehouse-backed campaign journal, the durable sibling of
    :class:`RunManifest`.

    Writes the same campaign_start / job / campaign_end story into a
    :class:`repro.store.ResultStore`'s events journal, groups each
    campaign under a store run (named after the campaign unless an
    explicit ``run_name`` pins every campaign to one run), and persists
    completed trial payloads as content-addressed ``trials`` rows.  All
    writes happen in the executor's parent process, so ``--jobs N``
    campaigns funnel through one connection.

    **Graceful degradation**: every store write goes through a named
    :class:`~repro.faults.breaker.CircuitBreaker`.  While the warehouse
    fails (locked beyond deadline, disk full, corrupt file) the breaker
    opens and writes *spill* to an append-only JSONL sideline file next
    to the store (``<store>.sideline.jsonl``) instead of being lost or
    crashing the campaign; ``repro store ingest --sideline`` replays the
    spill into the warehouse on recovery
    (:func:`repro.store.ingest.ingest_sideline`).  The breaker registers
    process-wide, so the service ``/healthz`` reports ``degraded`` with
    the cause while it is open.
    """

    def __init__(
        self,
        store: "ResultStore",
        run_name: Optional[str] = None,
        breaker: Optional[CircuitBreaker] = None,
        spill_path: Optional[Union[str, Path]] = None,
    ):
        self.store = store
        self.run_name = run_name
        self._campaign_runs: dict = {}
        store_path = getattr(store, "path", None)
        if spill_path is not None:
            self.spill_path: Optional[Path] = Path(spill_path)
        elif store_path is not None:
            self.spill_path = Path(f"{store_path}.sideline.jsonl")
        else:
            self.spill_path = None
        self.breaker = breaker if breaker is not None else get_breaker(
            f"store-sink:{store_path}"
        )
        self.spilled = 0
        self.spill_errors = 0

    def _run_for(self, campaign: str):
        name = self.run_name or campaign
        if name not in self._campaign_runs:
            self._campaign_runs[name] = self.store.ensure_run(name)
        return self._campaign_runs[name]

    # ----------------------------------------------------- breaker + spill

    def _protected(self, fn, spill_fn):
        """Run one store write through the breaker; spill on failure.

        Returns ``fn()``'s result, or None when the write was spilled
        (breaker open, or the write failed and tripped it further).
        """
        from repro.store.warehouse import StoreError

        if not self.breaker.allow():
            spill_fn()
            return None
        try:
            result = fn()
        except (StoreError, sqlite3.Error, OSError) as exc:
            self.breaker.record_failure(exc)
            spill_fn()
            return None
        self.breaker.record_success()
        return result

    def _spill(self, record: dict) -> None:
        if self.spill_path is None:
            return
        try:
            with open(self.spill_path, "a") as handle:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        except OSError:
            self.spill_errors += 1  # disk truly gone; counted, not fatal
        else:
            self.spilled += 1

    def _event(self, event: str, campaign: str, payload: dict) -> None:
        self._protected(
            lambda: self.store.record_event(
                event, campaign=campaign, payload=payload,
                run=self._run_for(campaign),
            ),
            lambda: self._spill(
                {
                    "kind": "event",
                    "event": event,
                    "campaign": campaign,
                    "run": self.run_name or campaign,
                    "payload": payload,
                }
            ),
        )

    # ------------------------------------------------------------- records

    def campaign_start(self, campaign: str, jobs: int, workers: int, mode: str) -> None:
        self._event(
            "campaign_start", campaign,
            {"jobs": jobs, "workers": workers, "mode": mode},
        )

    def job(self, campaign: str, record: JobRecord) -> None:
        self._event("job", campaign, record.row())

    def campaign_end(
        self, campaign: str, records: List[JobRecord], wall_s: float, cache: dict
    ) -> None:
        statuses: dict = {}
        for record in records:
            statuses[record.status] = statuses.get(record.status, 0) + 1
        self._event(
            "campaign_end", campaign,
            {"statuses": statuses, "wall_s": round(wall_s, 4), "cache": cache},
        )

    def trials(self, campaign: str, items) -> int:
        """Persist completed (key, value) payloads; returns newly stored.

        Payloads that cannot reach the warehouse spill losslessly to the
        sideline (dtype + shape + base64 bytes), ready for replay.
        """
        import numpy as np

        items = [(key, np.ascontiguousarray(np.asarray(v))) for key, v in items]
        if not items:
            return 0

        def spill_all():
            run = self.run_name or campaign
            for key, array in items:
                self._spill(
                    {
                        "kind": "trial",
                        "key": key,
                        "run": run,
                        "dtype": array.dtype.str,
                        "shape": list(array.shape),
                        "data": base64.b64encode(array.tobytes()).decode("ascii"),
                    }
                )

        stored = self._protected(
            lambda: self.store.put_trials(items, run=self._run_for(campaign)),
            spill_all,
        )
        return int(stored or 0)


class ProgressPrinter:
    """Minimal CLI progress renderer: one line per finished job.

    Each update is emitted as a **single** ``write()`` call (newline
    included) followed by a flush.  ``print()`` would issue separate
    writes for the text and the line ending, and with ``jobs>1`` (or a
    service running several campaigns) concurrent progress callbacks
    interleave those partial writes into garbled lines; one atomic write
    per update keeps every line intact regardless of how many threads
    share the stream.
    """

    def __init__(self, stream: Optional[IO] = None):
        self.stream = stream if stream is not None else sys.stderr

    def __call__(self, record: JobRecord, done: int, total: int) -> None:
        label = record.label or record.key or f"job {record.index}"
        note = f" ({record.error})" if record.error else ""
        self.stream.write(
            f"[{done}/{total}] {label}: {record.status} "
            f"{record.wall_s:.2f}s{note}\n"
        )
        self.stream.flush()


__all__ = [
    "JobRecord",
    "CampaignTelemetry",
    "RunManifest",
    "StoreSink",
    "ProgressPrinter",
    "STATUS_OK",
    "STATUS_CACHED",
    "STATUS_FAILED",
    "STATUS_TIMEOUT",
    "STATUS_CRASHED",
    "STATUS_QUARANTINED",
]
