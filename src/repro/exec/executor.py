"""The experiment executor: a crash-tolerant process pool for trial jobs.

``Executor.run(jobs)`` takes a list of :class:`repro.exec.jobs.Job` and
returns their values in submission order.  Scheduling model:

* Jobs whose cache key is already present in the campaign cache are
  satisfied immediately (status ``cached``) without touching the pool.
* With ``jobs=1`` (the default) everything runs in-process, serially —
  the exact code path the harness uses without an executor.
* With ``jobs=N`` a pool of N ``multiprocessing`` workers (``spawn``
  start method, so everything crossing the boundary must pickle) pulls
  jobs from a queue.  Workers hold their own worker-local
  :class:`~repro.harness.cache.ResultCache` sharing the parent's disk
  directory; computed values are shipped back and inserted into the
  parent cache.
* Each job attempt has an optional wall-clock ``timeout_s``; a timed-out
  or crashed worker is terminated and replaced, and the job is retried
  with exponential backoff up to ``retries`` extra attempts.
* If the pool cannot start at all (or keeps dying), the executor
  degrades gracefully to in-process serial execution of the remaining
  jobs and records ``mode="serial-fallback"``.

Determinism: the executor never derives seeds or keys itself — jobs
carry them, computed by the same helpers the serial harness uses — so a
parallel campaign produces bit-identical arrays to a serial one.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import time
import warnings
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.faults import inject
from repro.faults.inject import InjectedFault
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy
from repro.harness.cache import DEFAULT_CACHE, ResultCache
from repro.exec.jobs import Job
from repro.exec.telemetry import (
    STATUS_CACHED,
    STATUS_CRASHED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_QUARANTINED,
    STATUS_TIMEOUT,
    CampaignTelemetry,
    JobRecord,
    RunManifest,
    StoreSink,
)


class ExecutionError(RuntimeError):
    """One or more jobs exhausted their retries."""

    def __init__(self, failures: List[JobRecord]):
        self.failures = failures
        lines = ", ".join(
            f"{r.label or r.index}: {r.status} ({r.error})" for r in failures[:5]
        )
        more = "" if len(failures) <= 5 else f" (+{len(failures) - 5} more)"
        super().__init__(f"{len(failures)} job(s) failed: {lines}{more}")


class _PoolBroken(Exception):
    """Internal: the worker pool cannot start or keeps dying."""


def _worker_main(
    task_q,
    result_q,
    cache_dir: Optional[str],
    cache_enabled: bool,
    fault_plan: Optional[FaultPlan] = None,
):
    """Worker loop: pull (index, job, attempt) tasks until the None sentinel.

    Runs in a spawned child process; must only touch picklable state.
    The parent's fault plan (if any) crosses the spawn boundary as data
    and is activated locally, so worker-side injection seams fire on the
    same deterministic schedule in every worker generation.
    """
    if fault_plan is not None:
        inject.activate(fault_plan)
    inject.fault_point("exec.worker.start")
    cache = ResultCache(directory=cache_dir, enabled=cache_enabled)
    pid = os.getpid()
    while True:
        task = task_q.get()
        if task is None:
            return
        index, job, attempt = task
        result_q.put(("start", pid, index, attempt))
        start = time.perf_counter()
        hits0, misses0 = cache.hits, cache.misses
        try:
            inject.fault_point("exec.worker.trial", index=index, attempt=attempt)
            value = np.asarray(job.fn(*job.args, cache=cache, **job.kwargs))
        except BaseException as exc:  # report *any* job failure to the parent
            result_q.put(
                (
                    "err",
                    pid,
                    index,
                    attempt,
                    f"{type(exc).__name__}: {exc}",
                    time.perf_counter() - start,
                )
            )
        else:
            result_q.put(
                (
                    "ok",
                    pid,
                    index,
                    attempt,
                    value,
                    time.perf_counter() - start,
                    cache.hits - hits0,
                    cache.misses - misses0,
                )
            )


class _Progress:
    """Per-run done/total tracking feeding the progress callback."""

    def __init__(self, total: int, callback):
        self.total = total
        self.done = 0
        self.callback = callback

    def emit(self, record: JobRecord) -> None:
        self.done += 1
        if self.callback is not None:
            self.callback(record, self.done, self.total)


class Executor:
    """Runs experiment jobs across worker processes with retry/timeout.

    Parameters
    ----------
    jobs:
        Worker-process count.  ``1`` (default) executes in-process.
    cache:
        Campaign :class:`ResultCache`; results of every job land here.
        Defaults to the process-wide ``DEFAULT_CACHE``.
    timeout_s:
        Per-attempt wall-clock limit, enforced in pool mode by
        terminating the worker.  ``None`` disables.  (Serial mode cannot
        preempt a running job; timeouts apply between attempts only.)
    retries:
        Extra attempts after a failed/timed-out/crashed attempt.
    backoff_s:
        Base of the exponential retry backoff (``backoff_s * 2**(n-1)``).
    retry:
        Optional :class:`repro.faults.retry.RetryPolicy` overriding
        ``retries``/``backoff_s``; its injectable sleep/clock seams are
        the only way retry pauses ever happen, so tests pass a fake pair
        and retry paths run instantly.
    poison_crashes:
        Quarantine threshold: a job whose attempts *crash the worker*
        this many times is pulled from rotation with a typed
        ``quarantined`` record instead of burning respawn budget on
        every remaining retry.  ``None`` disables quarantine.
    fault_plan:
        Optional :class:`repro.faults.plan.FaultPlan` shipped to every
        spawned worker (the parent process activates plans separately
        via :func:`repro.faults.inject.activate`).
    start_method:
        ``multiprocessing`` start method; ``spawn`` is the portable,
        deterministic default.
    progress:
        Optional callback ``(record, done, total)`` fired as each job
        finishes (see :class:`repro.exec.telemetry.ProgressPrinter`).
    manifest_path:
        If set, every campaign appends JSONL records here.
    store:
        Optional results warehouse — a :class:`repro.store.ResultStore`
        or a database path.  Campaign telemetry is journalled to its
        events table and every completed trial payload is persisted,
        deduped by content-addressed key (see
        :class:`repro.exec.telemetry.StoreSink`).
    store_run:
        Store-run name grouping every campaign of this executor; by
        default each campaign gets its own run named after itself.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        timeout_s: Optional[float] = None,
        retries: int = 2,
        backoff_s: float = 0.05,
        retry: Optional[RetryPolicy] = None,
        poison_crashes: Optional[int] = 3,
        fault_plan: Optional[FaultPlan] = None,
        start_method: str = "spawn",
        progress=None,
        manifest_path: Optional[Union[str, "os.PathLike"]] = None,
        store=None,
        store_run: Optional[str] = None,
    ):
        self.jobs = max(1, int(jobs))
        self.cache = cache if cache is not None else DEFAULT_CACHE
        self.timeout_s = timeout_s
        if retry is None:
            retry = RetryPolicy(
                max_attempts=max(0, int(retries)) + 1, backoff_s=backoff_s
            )
        self.retry = retry
        # Attempt bookkeeping below speaks in "extra attempts"; derive it
        # from whichever policy won so there is one source of truth.
        self.retries = max(0, (retry.max_attempts or 1) - 1)
        self.backoff_s = retry.backoff_s
        self.poison_crashes = poison_crashes
        self.fault_plan = fault_plan
        self.start_method = start_method
        self.progress = progress
        self.manifest = RunManifest(manifest_path) if manifest_path else None
        self._owns_store = False
        self.store_sink: Optional[StoreSink] = None
        if store is not None:
            if isinstance(store, (str, Path)):
                # Autodetects sharded layouts (a shards.json directory)
                # as well as classic single-file warehouses.
                from repro.store.sharded import open_store

                store = open_store(store)
                self._owns_store = True
            self.store_sink = StoreSink(store, run_name=store_run)
        self.telemetry = CampaignTelemetry()
        self.last_records: List[JobRecord] = []
        self.last_mode: str = ""

    def _sinks(self):
        return [s for s in (self.manifest, self.store_sink) if s is not None]

    def close(self) -> None:
        """Flush and close the manifest and any owned store connection."""
        if self.manifest is not None:
            self.manifest.close()
        if self.store_sink is not None and self._owns_store:
            self.store_sink.store.close()

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ api

    def run(self, jobs: Sequence[Job], campaign: str = "campaign") -> List[np.ndarray]:
        """Execute ``jobs`` and return their values in submission order.

        Raises :class:`ExecutionError` if any job exhausts its retries;
        telemetry and the manifest are still written in that case.
        """
        joblist = list(jobs)
        records = [
            JobRecord(index=i, label=j.label, key=j.key)
            for i, j in enumerate(joblist)
        ]
        values: List[Optional[np.ndarray]] = [None] * len(joblist)
        state = _Progress(len(joblist), self.progress)
        start = time.perf_counter()

        pending: List[int] = []
        first_by_key: Dict[str, int] = {}
        duplicates: Dict[int, int] = {}
        for i, job in enumerate(joblist):
            if job.key and job.key in first_by_key:
                # Same key submitted twice in one campaign (e.g. shared
                # reference trials): compute once, copy the result.
                duplicates[i] = first_by_key[job.key]
                continue
            if job.key:
                first_by_key[job.key] = i
            cached = self.cache.get(job.key) if job.key else None
            if cached is not None:
                values[i] = cached
                records[i].status = STATUS_CACHED
                state.emit(records[i])
            else:
                pending.append(i)

        mode = "serial"
        if self.jobs > 1 and pending:
            mode = f"pool-{self.start_method}x{self.jobs}"
        for sink in self._sinks():
            sink.campaign_start(campaign, len(joblist), self.jobs, mode)

        if pending:
            if self.jobs > 1:
                try:
                    self._run_pool(joblist, pending, values, records, state)
                except _PoolBroken as exc:
                    warnings.warn(
                        f"repro.exec: worker pool unavailable ({exc}); "
                        "falling back to in-process serial execution"
                    )
                    mode = "serial-fallback"
                    unresolved = [
                        i for i in pending if records[i].status == "pending"
                    ]
                    self._run_serial(joblist, unresolved, values, records, state)
            else:
                self._run_serial(joblist, pending, values, records, state)

        for i, source in duplicates.items():
            values[i] = values[source]
            if records[source].status in (STATUS_OK, STATUS_CACHED):
                records[i].status = STATUS_CACHED
            else:
                records[i].status = records[source].status
                records[i].error = records[source].error
            state.emit(records[i])

        wall = time.perf_counter() - start
        self.telemetry.absorb(records, wall, mode)
        self.last_records = records
        self.last_mode = mode
        for sink in self._sinks():
            for record in records:
                sink.job(campaign, record)
            sink.campaign_end(campaign, records, wall, self.cache.counters())
        if self.store_sink is not None:
            # Persist every completed payload (computed *and* cache-served:
            # a first store-backed run over a warm disk cache should still
            # fill the warehouse).  Content-addressed keys dedupe re-runs.
            self.store_sink.trials(
                campaign,
                [
                    (joblist[i].key, values[i])
                    for i, record in enumerate(records)
                    if joblist[i].key
                    and values[i] is not None
                    and record.status in (STATUS_OK, STATUS_CACHED)
                ],
            )
        failures = [
            r for r in records if r.status not in (STATUS_OK, STATUS_CACHED)
        ]
        if failures:
            raise ExecutionError(failures)
        return values  # type: ignore[return-value]

    # --------------------------------------------------------------- serial

    def _run_serial(self, joblist, indices, values, records, state) -> None:
        for i in indices:
            job, record = joblist[i], records[i]
            while True:
                record.attempts += 1
                hits0, misses0 = self.cache.hits, self.cache.misses
                start = time.perf_counter()
                try:
                    value = np.asarray(
                        job.fn(*job.args, cache=self.cache, **job.kwargs)
                    )
                except Exception as exc:
                    record.wall_s += time.perf_counter() - start
                    record.error = f"{type(exc).__name__}: {exc}"
                    if record.attempts <= self.retries:
                        record.retried = True
                        self.retry.sleep(self.retry.backoff(record.attempts))
                        continue
                    record.status = STATUS_FAILED
                else:
                    record.wall_s += time.perf_counter() - start
                    record.worker_hits += self.cache.hits - hits0
                    record.worker_misses += self.cache.misses - misses0
                    record.error = None
                    record.status = STATUS_OK
                    values[i] = value
                    if job.key:
                        self.cache.put(job.key, value)
                state.emit(record)
                break

    # ----------------------------------------------------------------- pool

    def _run_pool(self, joblist, indices, values, records, state) -> None:
        try:
            ctx = multiprocessing.get_context(self.start_method)
        except ValueError as exc:
            raise _PoolBroken(f"unknown start method: {exc}")

        try:
            task_q = ctx.Queue()
            result_q = ctx.Queue()
        except OSError as exc:
            raise _PoolBroken(f"cannot create queues: {exc}")

        cache_dir = self.cache.directory
        worker_args = (
            task_q,
            result_q,
            None if cache_dir is None else str(cache_dir),
            self.cache.enabled,
            self.fault_plan,
        )
        procs: Dict[int, multiprocessing.process.BaseProcess] = {}
        respawn_budget = len(indices) * (self.retries + 1)

        def spawn(count: int) -> int:
            started = 0
            for _ in range(count):
                try:
                    proc = ctx.Process(
                        target=_worker_main, args=worker_args, daemon=True
                    )
                    proc.start()
                except OSError:
                    break
                procs[proc.pid] = proc
                started += 1
            return started

        attempts: Dict[int, int] = {i: 0 for i in indices}
        crashes: Dict[int, int] = {i: 0 for i in indices}
        resolved: Set[int] = set()
        requeue: List[Tuple[float, int]] = []
        running: Dict[int, Tuple[int, int, float]] = {}  # pid -> (idx, att, t0)
        started: Set[Tuple[int, int]] = set()  # (idx, att) that reported in
        stall_budget = len(indices) * (self.retries + 1)
        last_activity = time.monotonic()

        for i in indices:
            attempts[i] += 1
            task_q.put((i, joblist[i], attempts[i]))

        if spawn(min(self.jobs, len(indices))) == 0:
            raise _PoolBroken("no worker process could start")

        def fail_attempt(i: int, errmsg: str, final_status: str, wall: float) -> None:
            record = records[i]
            record.error = errmsg
            record.wall_s += wall
            record.attempts = attempts[i]
            if attempts[i] <= self.retries:
                record.retried = True
                requeue.append(
                    (time.monotonic() + self.retry.backoff(attempts[i]), i)
                )
            else:
                record.status = final_status
                resolved.add(i)
                state.emit(record)

        try:
            while len(resolved) < len(indices):
                now = time.monotonic()
                # Release retry attempts whose backoff has elapsed.
                for due, i in list(requeue):
                    if i in resolved:
                        requeue.remove((due, i))
                    elif due <= now:
                        requeue.remove((due, i))
                        attempts[i] += 1
                        task_q.put((i, joblist[i], attempts[i]))
                        last_activity = now

                try:
                    msg = result_q.get(timeout=0.05)
                except queue.Empty:
                    msg = None
                if msg is not None and msg[0] == "start":
                    # Injection seam: drop a worker's "start" report, as if
                    # it died before the message flushed.  Exercises the
                    # stall-recovery resubmission path below.
                    try:
                        inject.fault_point("exec.result", kind="start")
                    except InjectedFault:
                        msg = None
                if msg is not None:
                    last_activity = time.monotonic()
                    kind = msg[0]
                    if kind == "start":
                        _, pid, i, att = msg
                        running[pid] = (i, att, time.monotonic())
                        started.add((i, att))
                    elif kind == "ok":
                        _, pid, i, att, value, wall, hits, misses = msg
                        running.pop(pid, None)
                        if i not in resolved:
                            record = records[i]
                            record.status = STATUS_OK
                            record.error = None
                            record.attempts = max(record.attempts, att)
                            record.wall_s += wall
                            record.worker_hits += hits
                            record.worker_misses += misses
                            values[i] = value
                            if joblist[i].key:
                                self.cache.put(joblist[i].key, value)
                            resolved.add(i)
                            state.emit(record)
                    elif kind == "err":
                        _, pid, i, att, errmsg, wall = msg
                        running.pop(pid, None)
                        if i not in resolved and att == attempts[i]:
                            fail_attempt(i, errmsg, STATUS_FAILED, wall)

                # Enforce per-attempt timeouts by terminating the worker.
                if self.timeout_s is not None:
                    now = time.monotonic()
                    for pid, (i, att, t0) in list(running.items()):
                        if now - t0 > self.timeout_s:
                            running.pop(pid, None)
                            proc = procs.pop(pid, None)
                            if proc is not None:
                                proc.terminate()
                                proc.join(1.0)
                            if i not in resolved and att == attempts[i]:
                                fail_attempt(
                                    i,
                                    f"timed out after {self.timeout_s:g}s",
                                    STATUS_TIMEOUT,
                                    now - t0,
                                )

                # Reap workers that died (crash, os._exit, OOM-kill...).
                for pid, proc in list(procs.items()):
                    if not proc.is_alive():
                        procs.pop(pid, None)
                        proc.join(0.1)
                        if pid in running:
                            i, att, t0 = running.pop(pid)
                            if i not in resolved and att == attempts[i]:
                                crashes[i] += 1
                                if (
                                    self.poison_crashes is not None
                                    and crashes[i] >= self.poison_crashes
                                ):
                                    # Poison job: it keeps taking workers
                                    # down with it.  Quarantine instead of
                                    # burning the respawn budget retrying.
                                    record = records[i]
                                    record.error = (
                                        f"quarantined after {crashes[i]} worker "
                                        f"crashes (exit code {proc.exitcode})"
                                    )
                                    record.status = STATUS_QUARANTINED
                                    record.attempts = attempts[i]
                                    record.wall_s += time.monotonic() - t0
                                    resolved.add(i)
                                    state.emit(record)
                                else:
                                    fail_attempt(
                                        i,
                                        f"worker crashed (exit code {proc.exitcode})",
                                        STATUS_CRASHED,
                                        time.monotonic() - t0,
                                    )

                # Keep the pool staffed while work remains.
                unresolved = len(indices) - len(resolved)
                if unresolved:
                    want = min(self.jobs, unresolved)
                    missing = want - len(procs)
                    if missing > 0 and respawn_budget > 0:
                        respawn_budget -= spawn(min(missing, respawn_budget))
                    if not procs:
                        raise _PoolBroken("all workers died and none restart")

                # Stall recovery: a worker that dies before its "start"
                # message flushes takes the task with it silently.  If
                # nothing is running, nothing is awaiting backoff, and no
                # message has arrived for a while, resubmit every
                # unresolved attempt that never reported in.
                if (
                    not running
                    and not requeue
                    and time.monotonic() - last_activity > 2.0
                    and task_q.empty()  # consumed, not merely unclaimed
                ):
                    for i in indices:
                        if i in resolved or (i, attempts[i]) in started:
                            continue
                        if stall_budget <= 0:
                            raise _PoolBroken("jobs vanish without starting")
                        stall_budget -= 1
                        task_q.put((i, joblist[i], attempts[i]))
                    last_activity = time.monotonic()
        finally:
            self._shutdown(task_q, result_q, procs)

    @staticmethod
    def _shutdown(task_q, result_q, procs) -> None:
        # Drain stale tasks so idle workers see the sentinels promptly.
        while True:
            try:
                task_q.get_nowait()
            except (queue.Empty, OSError):
                break
        for _ in procs:
            try:
                task_q.put(None)
            except (ValueError, OSError):
                break
        deadline = time.monotonic() + 2.0
        for proc in procs.values():
            proc.join(max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.terminate()
                proc.join(0.5)
        for q in (task_q, result_q):
            try:
                q.cancel_join_thread()
                q.close()
            except (ValueError, OSError):
                pass


__all__ = ["Executor", "ExecutionError"]
