"""Job specifications for the experiment executor.

A :class:`Job` is the executor's unit of work: a picklable module-level
callable plus its arguments, a cache key identifying the result, and a
human-readable label for telemetry.  Job functions must accept a
``cache`` keyword (the worker-local :class:`~repro.harness.cache.ResultCache`)
and return a numpy array; everything they receive and return crosses a
process boundary, so it must pickle under the ``spawn`` start method.

:class:`TrialJob` is the canonical spec for the harness's primitive —
one 2-flow trial (impl pair, network condition, experiment config, trial
index, optional cross-traffic/netem) — and derives its seed and cache
key from :func:`repro.harness.runner.trial_identity`, the same
derivation the serial path uses.  That shared identity is what makes
parallel campaigns bit-identical to serial ones.

The builder functions at the bottom turn whole harness campaigns
(conformance cells, fairness pairs, BBR gain sweeps) into job lists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.harness.config import ExperimentConfig, NetworkCondition
from repro.harness.runner import Impl, sampled_points, trial_identity
from repro.netsim.crosstraffic import CrossTrafficConfig
from repro.netsim.path import NetemConfig
from repro.stacks import registry


@dataclass(frozen=True)
class Job:
    """One schedulable unit of work.

    ``fn`` must be a module-level callable (picklable by qualified name)
    with signature ``fn(*args, cache=..., **kwargs) -> np.ndarray``.
    ``key`` is the result's cache key; jobs whose key is already present
    in the campaign cache are satisfied without running.
    """

    fn: Callable
    args: Tuple = ()
    kwargs: Dict = field(default_factory=dict)
    key: str = ""
    label: str = ""


@dataclass(frozen=True)
class TrialJob:
    """One 2-flow trial of ``test`` vs ``competitor`` (the paper's primitive)."""

    test: Impl
    competitor: Impl
    condition: NetworkCondition
    config: ExperimentConfig
    trial: int
    cross_traffic: Optional[CrossTrafficConfig] = None
    wan_netem: Optional[NetemConfig] = None

    def identity(self) -> Tuple[int, str]:
        """(seed, cache key) — identical to the serial path's derivation."""
        return trial_identity(
            self.test,
            self.competitor,
            self.condition,
            self.config,
            self.trial,
            self.cross_traffic,
            self.wan_netem,
        )

    @property
    def seed(self) -> int:
        return self.identity()[0]

    @property
    def cache_key(self) -> str:
        return self.identity()[1]

    def label(self) -> str:
        return (
            f"{self.test} vs {self.competitor} @ "
            f"{self.condition.describe()} trial {self.trial}"
        )

    def to_job(self) -> Job:
        return Job(
            fn=sampled_points,
            args=(self.test, self.competitor, self.condition, self.config, self.trial),
            kwargs={
                "cross_traffic": self.cross_traffic,
                "wan_netem": self.wan_netem,
            },
            key=self.cache_key,
            label=self.label(),
        )


def pair_trial_jobs(
    test: Impl,
    competitor: Impl,
    condition: NetworkCondition,
    config: ExperimentConfig,
    cross_traffic: Optional[CrossTrafficConfig] = None,
    wan_netem: Optional[NetemConfig] = None,
) -> List[Job]:
    """One job per trial of a (test, competitor) pair — mirrors
    :func:`repro.harness.conformance.gather_trials`."""
    return [
        TrialJob(
            test, competitor, condition, config, trial, cross_traffic, wan_netem
        ).to_job()
        for trial in range(config.trials)
    ]


def measurement_trial_jobs(
    stack: str,
    cca: str,
    condition: NetworkCondition,
    config: ExperimentConfig,
    variant: str = "default",
    reference_variant: str = "default",
    cross_traffic: Optional[CrossTrafficConfig] = None,
    wan_netem: Optional[NetemConfig] = None,
) -> List[Job]:
    """All trials behind one conformance cell: test-vs-reference plus the
    reference-vs-reference runs defining the reference envelope."""
    impl = Impl(stack, cca, variant)
    reference = Impl(registry.REFERENCE_STACK, cca, reference_variant)
    jobs = pair_trial_jobs(
        impl, reference, condition, config, cross_traffic, wan_netem
    )
    jobs += pair_trial_jobs(
        reference, reference, condition, config, cross_traffic, wan_netem
    )
    return jobs


def share_job(
    first: Impl,
    second: Impl,
    condition: NetworkCondition,
    config: ExperimentConfig,
) -> Job:
    """One fairness pair: the full trial loop of one bandwidth-share cell."""
    from repro.harness.fairness import compute_share_array, share_cache_key

    return Job(
        fn=compute_share_array,
        args=(first, second, condition, config),
        key=share_cache_key(first, second, condition, config),
        label=f"share {first} vs {second} @ {condition.describe()}",
    )


def sweep_trial_jobs(
    gains: Sequence[float],
    condition: NetworkCondition,
    config: ExperimentConfig,
) -> List[Job]:
    """All trials of the Fig. 5 cwnd-gain sweep (reference runs included)."""
    from repro.analysis.sweeps import compute_gain_trial, sweep_cache_key

    jobs: List[Job] = []
    seen = set()
    pairs = [(2.0, trial + 1000) for trial in range(config.trials)]
    pairs += [(gain, trial) for gain in gains for trial in range(config.trials)]
    for gain, trial in pairs:
        key = sweep_cache_key(gain, condition, config, trial)
        if key in seen:
            continue
        seen.add(key)
        jobs.append(
            Job(
                fn=compute_gain_trial,
                args=(gain, condition, config, trial),
                key=key,
                label=f"bbr gain {gain:g} trial {trial} @ {condition.describe()}",
            )
        )
    return jobs


__all__ = [
    "Job",
    "TrialJob",
    "pair_trial_jobs",
    "measurement_trial_jobs",
    "share_job",
    "sweep_trial_jobs",
]
