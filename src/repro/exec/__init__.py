"""repro.exec — parallel experiment-execution engine.

The harness's measurements all reduce to independent 2-flow trials; this
package turns those implicit loops into an explicit job layer: build
:class:`Job`/:class:`TrialJob` specs (``repro.exec.jobs``), run them on
an :class:`Executor` with N worker processes, per-job timeouts and
bounded retries (``repro.exec.executor``), and collect per-job telemetry
plus a JSONL run manifest and an optional durable results-warehouse sink
(``repro.exec.telemetry``; see :mod:`repro.store`).

Seeds and cache keys come from the same derivations as the serial
harness, so parallel campaigns are bit-identical to serial ones — an
executor only changes *where* and *when* trials run.

Quick start::

    from repro.exec import Executor
    from repro.harness.conformance import conformance_heatmap

    ex = Executor(jobs=4, manifest_path="runs.jsonl")
    heatmap = conformance_heatmap(condition, config, executor=ex)
    print(ex.telemetry.summary())
"""

from repro.exec.executor import ExecutionError, Executor
from repro.exec.jobs import (
    Job,
    TrialJob,
    measurement_trial_jobs,
    pair_trial_jobs,
    share_job,
    sweep_trial_jobs,
)
from repro.exec.telemetry import (
    CampaignTelemetry,
    JobRecord,
    ProgressPrinter,
    RunManifest,
    StoreSink,
)

__all__ = [
    "Executor",
    "ExecutionError",
    "Job",
    "TrialJob",
    "pair_trial_jobs",
    "measurement_trial_jobs",
    "share_job",
    "sweep_trial_jobs",
    "JobRecord",
    "CampaignTelemetry",
    "RunManifest",
    "StoreSink",
    "ProgressPrinter",
]
