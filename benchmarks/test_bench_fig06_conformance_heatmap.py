"""Figure 6: conformance of every stack x CCA in shallow and deep buffers.

Paper's headline: most implementations are conformant at 1 BDP (Fig. 6b)
with seven low-conformance outliers (Table 3), and *every* implementation
degrades at 5 BDP (Fig. 6a).
"""

import numpy as np
from conftest import emit_bench, run_once

from repro.harness import reporting, scenarios
from repro.harness.conformance import conformance_heatmap
from repro.stacks import registry


def _render(measurements, title):
    values = {key: m.conformance for key, m in measurements.items()}
    bars = reporting.format_conformance_bars(values, title=title)
    stacks = [p.name for p in registry.quic_stacks()]
    grid = np.full((len(stacks), len(registry.CCAS)), np.nan)
    for (stack, cca), m in measurements.items():
        grid[stacks.index(stack), registry.CCAS.index(cca)] = m.conformance
    heat = reporting.format_heatmap(stacks, list(registry.CCAS), grid)
    return bars + "\n\n" + heat, values


def test_fig6b_shallow_buffer(
    benchmark, bench_config, bench_cache, bench_executor, save_artifact
):
    condition = scenarios.shallow_buffer()

    def run():
        return conformance_heatmap(
            condition, bench_config, cache=bench_cache, executor=bench_executor
        )

    measurements = run_once(benchmark, run)
    text, values = _render(
        measurements, "Fig 6b: conformance, 1 BDP (shallow) buffer, 10 ms RTT, 20 Mbps"
    )
    save_artifact("fig06b_heatmap_shallow", text)

    # Paper: the majority of stacks are conformant in shallow buffers...
    conformant = [v for v in values.values() if v >= 0.5]
    assert len(conformant) >= len(values) / 2
    # ...with the known low-conformance outliers below 0.5.
    for key in (("quiche", "cubic"), ("neqo", "cubic"), ("mvfst", "bbr")):
        assert values[key] < 0.5, f"{key} should be low-conformance"


def test_fig6a_deep_buffer(
    benchmark, bench_config, bench_cache, bench_executor, save_artifact
):
    shallow = conformance_heatmap(
        scenarios.shallow_buffer(),
        bench_config,
        cache=bench_cache,
        executor=bench_executor,
    )

    def run():
        return conformance_heatmap(
            scenarios.deep_buffer(),
            bench_config,
            cache=bench_cache,
            executor=bench_executor,
        )

    deep = run_once(benchmark, run)
    text, deep_values = _render(
        deep, "Fig 6a: conformance, 5 BDP (deep) buffer, 10 ms RTT, 20 Mbps"
    )
    save_artifact("fig06a_heatmap_deep", text)

    shallow_values = {k: m.conformance for k, m in shallow.items()}
    mean_shallow = np.mean(list(shallow_values.values()))
    mean_deep = np.mean(list(deep_values.values()))
    summary = (
        f"mean conformance shallow={mean_shallow:.2f} deep={mean_deep:.2f}\n"
        "(paper: conformance becomes significantly worse in deep buffers; "
        "the universal degradation reproduces only partially here — see "
        "EXPERIMENTS.md 'Known fidelity gaps')"
    )
    save_artifact("fig06_summary", summary)
    emit_bench(__file__, mean_shallow=round(float(mean_shallow), 3),
               mean_deep=round(float(mean_deep), 3), cells=len(deep_values))
    # The per-implementation deep-buffer claims the paper makes explicitly:
    # xquic BBR's lack of conformance "became worse in deep buffers"
    # (Fig 10)...
    assert deep_values[("xquic", "bbr")] < shallow_values[("xquic", "bbr")] + 0.05
    # ...while "conformance for mvfst was better for deep buffers" (Fig 9).
    assert deep_values[("mvfst", "bbr")] > shallow_values[("mvfst", "bbr")] - 0.05
    # Reno stays comparatively conformant in deep buffers (§4.1.3).
    reno_deep = [v for (s, c), v in deep_values.items() if c == "reno" and s not in ("neqo", "xquic")]
    assert np.mean(reno_deep) > 0.5
