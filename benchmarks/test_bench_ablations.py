"""Ablations of the PE design choices DESIGN.md calls out.

* clustered multi-hull vs single hull (the Fig 1 argument, quantified
  over several implementations);
* intersection-over-trials outlier removal vs the legacy 5 % trim;
* sampling period sensitivity (paper §3.1: denser sampling does not
  substantially change the PE);
* point-weighted overlap vs plain area overlap.
"""

import numpy as np
from conftest import emit_bench, run_once

from repro.core.conformance import conformance, conformance_post_translation
from repro.core.envelope import EnvelopeConfig, build_envelope
from repro.core.geometry import convex_intersection, polygon_area
from repro.core.sampling import SamplingConfig
from repro.harness import reporting, scenarios
from repro.harness.config import ExperimentConfig
from repro.harness.conformance import gather_trials, reference_trials
from repro.harness.runner import Impl, reference_impl


def test_ablation_clustering_and_outliers(benchmark, bench_config, bench_cache, save_artifact):
    condition = scenarios.shallow_buffer()

    def run():
        rows = []
        for stack in ("quicgo", "quiche", "neqo"):
            test = gather_trials(
                Impl(stack, "cubic"), reference_impl("cubic"), condition,
                bench_config, cache=bench_cache,
            )
            ref = reference_trials("cubic", condition, bench_config, cache=bench_cache)
            clustered = conformance(
                build_envelope(test), build_envelope(ref)
            )
            single = conformance(
                build_envelope(test, EnvelopeConfig(single_hull=True)),
                build_envelope(ref, EnvelopeConfig(single_hull=True)),
            )
            pooled_test = [np.vstack(test)]
            pooled_ref = [np.vstack(ref)]
            no_outlier_removal = conformance(
                build_envelope(pooled_test, EnvelopeConfig(k=1)),
                build_envelope(pooled_ref, EnvelopeConfig(k=1)),
            )
            rows.append([stack, round(clustered, 2), round(single, 2),
                         round(no_outlier_removal, 2)])
        return rows

    rows = run_once(benchmark, run)
    text = reporting.format_table(
        ["Stack (CUBIC)", "clustered+trials", "single hull", "pooled (no removal)"],
        rows,
        title="Ablation: PE construction choices vs measured conformance",
    )
    save_artifact("ablation_pe_construction", text)
    emit_bench(__file__, pe_construction={
        r[0]: {"clustered": r[1], "single_hull": r[2], "pooled": r[3]}
        for r in rows
    })
    by_stack = {r[0]: r for r in rows}
    # Single hull inflates the low-conformance cases.
    assert by_stack["quiche"][2] >= by_stack["quiche"][1]


def test_ablation_sampling_period(benchmark, bench_cache, save_artifact):
    """Paper §3.1: sampling more often than every 10 RTTs does not
    substantially change the PE."""
    condition = scenarios.shallow_buffer()

    def run():
        rows = []
        base_ref = None
        for rtts in (5.0, 10.0, 20.0):
            cfg = ExperimentConfig(
                duration_s=100.0, trials=3, sampling=SamplingConfig(sample_rtts=rtts)
            )
            test = gather_trials(
                Impl("quicgo", "cubic"), reference_impl("cubic"), condition,
                cfg, cache=bench_cache,
            )
            ref = reference_trials("cubic", condition, cfg, cache=bench_cache)
            value = conformance(build_envelope(test), build_envelope(ref))
            rows.append([rtts, round(value, 2)])
        return rows

    rows = run_once(benchmark, run)
    text = reporting.format_table(
        ["sampling period (RTTs)", "conformance (quicgo CUBIC)"],
        rows,
        title="Ablation: sampling-period sensitivity",
    )
    save_artifact("ablation_sampling_period", text)
    values = [r[1] for r in rows]
    assert max(values) - min(values) < 0.45


def test_ablation_area_vs_point_overlap(benchmark, bench_config, bench_cache, save_artifact):
    """Area-based overlap ignores point density; the paper weighs overlap
    by points for exactly that reason."""
    condition = scenarios.shallow_buffer()

    def run():
        test = gather_trials(
            Impl("quiche", "cubic"), reference_impl("cubic"), condition,
            bench_config, cache=bench_cache,
        )
        ref = reference_trials("cubic", condition, bench_config, cache=bench_cache)
        t_pe = build_envelope(test, EnvelopeConfig(single_hull=True))
        r_pe = build_envelope(ref, EnvelopeConfig(single_hull=True))
        point_based = conformance(t_pe, r_pe)
        inter = convex_intersection(t_pe.hulls[0], r_pe.hulls[0]) if t_pe.hulls and r_pe.hulls else []
        union_area = (
            polygon_area(t_pe.hulls[0]) + polygon_area(r_pe.hulls[0]) - polygon_area(inter)
            if t_pe.hulls and r_pe.hulls
            else 0.0
        )
        area_based = polygon_area(inter) / union_area if union_area > 0 else 0.0
        return point_based, area_based

    point_based, area_based = run_once(benchmark, run)
    text = (
        "Ablation: overlap weighting for quiche CUBIC (single hulls)\n"
        f"  point-weighted overlap: {point_based:.2f}\n"
        f"  plain area IoU:        {area_based:.2f}"
    )
    save_artifact("ablation_overlap_weighting", text)
    assert 0.0 <= area_based <= 1.0
