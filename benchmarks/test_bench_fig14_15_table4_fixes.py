"""Table 4 and Figures 14-15: fixing the low-conformance implementations.

Re-measures every fix of Table 4 (before/after) plus the xquic CUBIC
root-cause verification against kernel CUBIC without HyStart, and renders
the quiche CUBIC cwnd time series of Fig. 15 (rollback keeps the window
from ever backing off).
"""

import numpy as np
from conftest import emit_bench, run_once

from repro.analysis.fixes import FIXES, cwnd_time_series, evaluate_all_fixes
from repro.harness import reporting, scenarios


def test_table4_fixes(benchmark, bench_config, bench_cache, save_artifact):
    condition = scenarios.shallow_buffer()

    def run():
        return evaluate_all_fixes(condition, bench_config, cache=bench_cache)

    outcomes = run_once(benchmark, run)

    rows = []
    for outcome in outcomes:
        r = outcome.row()
        rows.append(
            [
                r["stack"], r["cca"],
                r["conf_before"], r["conf_t_before"],
                f"{r['dtput_before']:+.1f}", f"{r['ddelay_before']:+.1f}",
                r.get("conf_after", "-"), r.get("conf_t_after", "-"),
                r["loc"] if r["loc"] is not None else "-",
                r["remark"],
            ]
        )
    text = reporting.format_table(
        ["Stack", "Type", "Conf", "Conf-T", "d-tput", "d-delay",
         "Conf'", "Conf-T'", "LoC", "Remark"],
        rows,
        title="Table 4: modifications to low-conformant implementations "
        "(primed columns = after the fix / verification reference)",
    )
    save_artifact("table4_fixes", text)
    emit_bench(__file__, fixes=len(outcomes), improved=sum(
        1 for o in outcomes
        if o.after is not None
        and o.after.conformance > o.before.conformance
    ))

    by_key = {(o.case.stack, o.case.cca): o for o in outcomes}
    # Each applied fix improves conformance (paper Table 4 / Figs 14-15).
    for key in (("mvfst", "bbr"), ("xquic", "bbr"), ("quiche", "cubic"), ("chromium", "cubic")):
        outcome = by_key[key]
        assert outcome.after is not None
        assert outcome.after.conformance > outcome.before.conformance, key
    # xquic CUBIC: conformance against HyStart-less kernel CUBIC is higher
    # than against the stock kernel (the "missing mechanism" verification).
    xquic = by_key[("xquic", "cubic")]
    assert xquic.after is not None
    assert xquic.after.conformance >= xquic.before.conformance - 0.05


def test_fig15_quiche_cwnd_time_series(benchmark, save_artifact):
    condition = scenarios.shallow_buffer()

    def run():
        broken = cwnd_time_series("quiche", "cubic", "default", condition, duration_s=30.0)
        fixed = cwnd_time_series("quiche", "cubic", "fixed", condition, duration_s=30.0)
        return broken, fixed

    broken, fixed = run_once(benchmark, run)

    def backoff_count(series):
        cwnd = series[:, 1]
        drops = np.sum((cwnd[1:] - cwnd[:-1]) < -0.2 * cwnd[:-1])
        return int(drops)

    text = (
        "Fig 15: quiche CUBIC congestion-window behaviour (30 s vs kernel CUBIC)\n"
        f"  rollback enabled : mean cwnd {broken[:,1].mean()/1448:6.1f} pkts, "
        f"sustained backoffs {backoff_count(broken)}\n"
        f"  rollback disabled: mean cwnd {fixed[:,1].mean()/1448:6.1f} pkts, "
        f"sustained backoffs {backoff_count(fixed)}\n"
        "  -> with RFC8312bis rollback the multiplicative decreases are "
        "undone, keeping the window inflated (paper Fig 15a vs 15b)"
    )
    save_artifact("fig15_quiche_cwnd", text)
    assert broken[:, 1].mean() > fixed[:, 1].mean()
