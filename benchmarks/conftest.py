"""Shared benchmark infrastructure.

Every benchmark regenerates one table or figure of the paper.  Simulation
results (sampled point clouds, bandwidth shares) are cached on disk under
``benchmarks/.quicbench_cache`` so re-runs only pay for the analysis; the
rendered text artifacts land in ``benchmarks/output/`` for inspection.

Benchmarks run the underlying experiment exactly once
(``benchmark.pedantic(..., rounds=1)``) — the interesting output is the
reproduced numbers, not the timing.
"""

import os
from pathlib import Path

import pytest

from repro.harness.cache import ResultCache
from repro.harness.config import ExperimentConfig

BENCH_DIR = Path(__file__).parent
OUTPUT_DIR = BENCH_DIR / "output"
CACHE_DIR = BENCH_DIR / ".quicbench_cache"

#: Bench-scale protocol: long enough for BBR's 10 s ProbeRTT cycles to
#: repeat within every trial (see DESIGN.md scaling note).
BENCH_CONFIG = ExperimentConfig(duration_s=100.0, trials=3)

#: Shorter protocol for the big pairwise matrices, where only mean shares
#: matter.
SHARE_CONFIG = ExperimentConfig(duration_s=40.0, trials=2)

_SHARED_CACHE = ResultCache(directory=CACHE_DIR)

#: Worker-process count for the experiment executor; ``JOBS=N make bench``
#: (or ``QUICBENCH_JOBS=N pytest benchmarks/``) parallelises the trial
#: campaigns.  Results are numerically identical at any job count.
_JOBS = int(os.environ.get("QUICBENCH_JOBS", "1") or "1")


@pytest.fixture(scope="session")
def bench_cache():
    return _SHARED_CACHE


@pytest.fixture(scope="session")
def bench_executor():
    """A shared :class:`repro.exec.Executor`, or ``None`` when serial.

    ``None`` keeps the historical single-process code path byte-for-byte
    when ``QUICBENCH_JOBS`` is unset or 1.
    """
    if _JOBS <= 1:
        return None
    from repro.exec import Executor

    OUTPUT_DIR.mkdir(exist_ok=True)
    return Executor(
        jobs=_JOBS,
        cache=_SHARED_CACHE,
        manifest_path=OUTPUT_DIR / "run_manifest.jsonl",
    )


@pytest.fixture(scope="session")
def bench_config():
    return BENCH_CONFIG


@pytest.fixture(scope="session")
def share_config():
    return SHARE_CONFIG


@pytest.fixture(scope="session")
def save_artifact():
    OUTPUT_DIR.mkdir(exist_ok=True)

    def save(name: str, text: str) -> None:
        (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n[saved to benchmarks/output/{name}.txt]")

    return save


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
