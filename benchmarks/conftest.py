"""Shared benchmark infrastructure.

Every benchmark regenerates one table or figure of the paper.  Simulation
results (sampled point clouds, bandwidth shares) are cached on disk under
``benchmarks/.quicbench_cache`` so re-runs only pay for the analysis; the
rendered text artifacts land in ``benchmarks/output/`` for inspection.

Benchmarks run the underlying experiment exactly once
(``benchmark.pedantic(..., rounds=1)``) — the interesting output is the
reproduced numbers, not the timing.

Every ``test_bench_*`` module additionally emits one machine-readable
``output/BENCH_<module>.json`` record: an autouse fixture times every
test, :func:`emit_bench` lets a module attach richer fields
(packets/sec and the like), and the session-finish hook writes the
merged record — so CI history can diff wall times per module without
each benchmark hand-rolling its own JSON.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.harness.cache import ResultCache
from repro.harness.config import ExperimentConfig

BENCH_DIR = Path(__file__).parent
OUTPUT_DIR = BENCH_DIR / "output"
CACHE_DIR = BENCH_DIR / ".quicbench_cache"

#: Bench-scale protocol: long enough for BBR's 10 s ProbeRTT cycles to
#: repeat within every trial (see DESIGN.md scaling note).
BENCH_CONFIG = ExperimentConfig(duration_s=100.0, trials=3)

#: Shorter protocol for the big pairwise matrices, where only mean shares
#: matter.
SHARE_CONFIG = ExperimentConfig(duration_s=40.0, trials=2)

_SHARED_CACHE = ResultCache(directory=CACHE_DIR)

#: Worker-process count for the experiment executor; ``JOBS=N make bench``
#: (or ``QUICBENCH_JOBS=N pytest benchmarks/``) parallelises the trial
#: campaigns.  Results are numerically identical at any job count.
_JOBS = int(os.environ.get("QUICBENCH_JOBS", "1") or "1")


@pytest.fixture(scope="session")
def bench_cache():
    return _SHARED_CACHE


@pytest.fixture(scope="session")
def bench_executor():
    """A shared :class:`repro.exec.Executor`, or ``None`` when serial.

    ``None`` keeps the historical single-process code path byte-for-byte
    when ``QUICBENCH_JOBS`` is unset or 1.
    """
    if _JOBS <= 1:
        return None
    from repro.exec import Executor

    OUTPUT_DIR.mkdir(exist_ok=True)
    return Executor(
        jobs=_JOBS,
        cache=_SHARED_CACHE,
        manifest_path=OUTPUT_DIR / "run_manifest.jsonl",
    )


@pytest.fixture(scope="session")
def bench_config():
    return BENCH_CONFIG


@pytest.fixture(scope="session")
def share_config():
    return SHARE_CONFIG


@pytest.fixture(scope="session")
def save_artifact():
    OUTPUT_DIR.mkdir(exist_ok=True)

    def save(name: str, text: str) -> None:
        (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n[saved to benchmarks/output/{name}.txt]")

    return save


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


# --------------------------------------------------- BENCH_*.json records

#: module basename (e.g. "topology") -> {test name -> wall seconds}.
_BENCH_TIMES = {}
#: module basename -> extra fields attached via :func:`emit_bench`.
_BENCH_EXTRA = {}


def _bench_name(module_name: str) -> str:
    short = module_name.rsplit(".", 1)[-1]
    prefix = "test_bench_"
    return short[len(prefix):] if short.startswith(prefix) else short


def emit_bench(module_file: str, **payload) -> None:
    """Attach module-specific fields to the module's BENCH record.

    ``module_file`` is the calling module's ``__file__``; keyword fields
    (packets, packets_per_s, ...) are merged into the
    ``BENCH_<module>.json`` written at session end.
    """
    name = _bench_name(Path(module_file).stem)
    _BENCH_EXTRA.setdefault(name, {}).update(payload)


@pytest.fixture(autouse=True)
def _bench_timer(request):
    """Record every benchmark test's wall time for the module record."""
    start = time.perf_counter()
    yield
    wall_s = time.perf_counter() - start
    name = _bench_name(request.module.__name__)
    _BENCH_TIMES.setdefault(name, {})[request.node.name] = round(wall_s, 4)


def pytest_sessionfinish(session, exitstatus):
    """Write one ``output/BENCH_<module>.json`` per benchmark module."""
    if not _BENCH_TIMES and not _BENCH_EXTRA:
        return
    OUTPUT_DIR.mkdir(exist_ok=True)
    for name in sorted(set(_BENCH_TIMES) | set(_BENCH_EXTRA)):
        tests = _BENCH_TIMES.get(name, {})
        payload = {
            "module": f"test_bench_{name}",
            "tests": tests,
            "wall_s": round(sum(tests.values()), 4),
        }
        payload.update(_BENCH_EXTRA.get(name, {}))
        (OUTPUT_DIR / f"BENCH_{name}.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
