"""repro.topo: multi-bottleneck simulation throughput.

Runs the parking-lot shape (three bottleneck hops, one long flow plus a
cross flow per hop) for a fixed simulated horizon and reports how many
delivered packets the topology compiler pushes per wall-clock second.
Numbers land in ``output/BENCH_topology.json`` so CI history can catch a
pathological slowdown in the multi-hop queue wiring; functional
guarantees (bit-identity with the dumbbell Network, byte conservation)
live in tier-1 tests.
"""

import time

from conftest import emit_bench, run_once

from repro.topo import TopoNetwork, parking_lot

SIM_S = 10.0


def test_parking_lot_throughput(benchmark):
    spec = parking_lot("cubic")

    def run():
        start = time.perf_counter()
        results = TopoNetwork(spec, seed=0).run(SIM_S)
        wall_s = time.perf_counter() - start
        packets = sum(len(r.trace.records) for r in results)
        return packets, wall_s

    packets, wall_s = run_once(benchmark, run)
    assert packets > 0
    emit_bench(
        __file__,
        topology=spec.name,
        links=len(spec.links),
        flows=len(spec.flows),
        sim_s=SIM_S,
        packets=packets,
        sim_wall_s=round(wall_s, 4),
        packets_per_s=round(packets / wall_s, 1),
    )
