"""Figures 7-10: envelopes of the non-conformant implementations across
buffer depths (0.5, 1, 3, 5 BDP).

* Fig 7 — non-compliant CUBIC impls (neqo, quiche, xquic)
* Fig 8 — xquic Reno
* Fig 9 — mvfst BBR (paper: Conf ~0 at every depth, Conf-T ~0.7)
* Fig 10 — xquic BBR (paper: worse in deep buffers)
"""

from conftest import emit_bench, run_once

from repro.harness import reporting, scenarios
from repro.harness.conformance import measure_conformance

IMPLS = [
    ("fig07", "neqo", "cubic"),
    ("fig07", "quiche", "cubic"),
    ("fig07", "xquic", "cubic"),
    ("fig08", "xquic", "reno"),
    ("fig09", "mvfst", "bbr"),
    ("fig10", "xquic", "bbr"),
]

BUFFERS = (0.5, 1.0, 3.0, 5.0)


def test_fig7_to_10_buffer_sweep(benchmark, bench_config, bench_cache, save_artifact):
    def run():
        results = {}
        for fig, stack, cca in IMPLS:
            for condition in scenarios.buffer_sweep():
                results[(fig, stack, cca, condition.buffer_bdp)] = measure_conformance(
                    stack, cca, condition, bench_config, cache=bench_cache
                )
        return results

    results = run_once(benchmark, run)

    rows = []
    for (fig, stack, cca, buf), m in sorted(results.items()):
        r = m.result
        rows.append(
            [fig, stack, cca, buf, round(r.conformance, 2), round(r.conformance_t, 2),
             f"{r.delta_throughput_mbps:+.1f}", f"{r.delta_delay_ms:+.1f}"]
        )
    text = reporting.format_table(
        ["Figure", "Stack", "CCA", "Buffer (BDP)", "Conf", "Conf-T", "d-tput", "d-delay"],
        rows,
        title="Figs 7-10: non-conformant implementations across buffer depths",
    )
    save_artifact("fig07_10_envelopes", text)
    emit_bench(__file__, cells=len(results), low_conformance_cells=sum(
        1 for m in results.values() if m.conformance < 0.5
    ))

    # Fig 9: mvfst BBR shows high Conf-T at every buffer depth.
    for buf in BUFFERS:
        m = results[("fig09", "mvfst", "bbr", buf)]
        assert m.conformance_t >= m.conformance
    # mvfst BBR is non-conformant at 1 BDP with a positive pacing offset.
    m1 = results[("fig09", "mvfst", "bbr", 1.0)]
    assert m1.conformance < 0.5
    assert m1.result.delta_throughput_mbps > 0
    # quiche CUBIC low conformance at 1 BDP.
    assert results[("fig07", "quiche", "cubic", 1.0)].conformance < 0.5
