"""Figure 1: a single convex hull overestimates quiche CUBIC's conformance.

The paper's motivating example: with the legacy single-hull PE quiche
CUBIC scores 0.48; the clustered definition drops it to 0.08 because the
single hull's overlap is mostly empty space.
"""

import numpy as np
from conftest import emit_bench, run_once

from repro.core.conformance import conformance, conformance_legacy
from repro.core.envelope import EnvelopeConfig, build_envelope
from repro.harness import scenarios
from repro.harness.conformance import gather_trials, reference_trials
from repro.harness.runner import Impl, reference_impl


def test_fig1_single_hull_vs_clustered(benchmark, bench_config, bench_cache, save_artifact):
    condition = scenarios.shallow_buffer()

    def run():
        test_trials = gather_trials(
            Impl("quiche", "cubic"), reference_impl("cubic"), condition,
            bench_config, cache=bench_cache,
        )
        ref_trials = reference_trials("cubic", condition, bench_config, cache=bench_cache)
        clustered = conformance(
            build_envelope(test_trials, EnvelopeConfig()),
            build_envelope(ref_trials, EnvelopeConfig()),
        )
        single = conformance(
            build_envelope(test_trials, EnvelopeConfig(single_hull=True)),
            build_envelope(ref_trials, EnvelopeConfig(single_hull=True)),
        )
        legacy = conformance_legacy(np.vstack(test_trials), np.vstack(ref_trials))
        return single, clustered, legacy

    single, clustered, legacy = run_once(benchmark, run)
    text = (
        "Fig 1: quiche CUBIC conformance under the two PE definitions\n"
        f"  single convex hull (Fig 1a style): {single:.2f}   [paper: 0.48]\n"
        f"  legacy metric (5% trim, one hull): {legacy:.2f}\n"
        f"  clustering-based (Fig 1b style):   {clustered:.2f}   [paper: 0.12]\n"
        "  -> the single hull overestimates conformance for clustered clouds"
    )
    save_artifact("fig01_clustered_pe", text)
    emit_bench(__file__, single_hull=round(single, 3),
               clustered=round(clustered, 3), legacy=round(legacy, 3))
    assert clustered < single
    assert clustered < 0.5
