"""Render the headline figures as SVG files.

Produces viewable counterparts of the paper's key plots from the same
cached measurements the other benchmarks use:

* ``fig06b_heatmap.svg`` — the 1-BDP conformance heatmap,
* ``fig09_mvfst_envelope.svg`` / ``fig15_quiche_envelope.svg`` — test vs
  reference envelope overlays,
* ``fig05_sweep.svg`` — the cwnd-gain sweep curves.
"""

import numpy as np
from conftest import OUTPUT_DIR, emit_bench, run_once

from repro.analysis.sweeps import cwnd_gain_sweep
from repro.harness import scenarios
from repro.harness.conformance import conformance_heatmap, measure_conformance
from repro.stacks import registry
from repro.viz.charts import envelope_figure, heatmap_figure, line_figure


def test_svg_figures(benchmark, bench_config, bench_cache, save_artifact):
    condition = scenarios.shallow_buffer()
    OUTPUT_DIR.mkdir(exist_ok=True)

    def run():
        heat = conformance_heatmap(condition, bench_config, cache=bench_cache)
        quiche = measure_conformance("quiche", "cubic", condition, bench_config, cache=bench_cache)
        mvfst = measure_conformance("mvfst", "bbr", condition, bench_config, cache=bench_cache)
        sweep = cwnd_gain_sweep(config=bench_config, cache=bench_cache)
        return heat, quiche, mvfst, sweep

    heat, quiche, mvfst, sweep = run_once(benchmark, run)

    stacks = [p.name for p in registry.quic_stacks()]
    grid = np.full((len(stacks), len(registry.CCAS)), np.nan)
    for (stack, cca), m in heat.items():
        grid[stacks.index(stack), registry.CCAS.index(cca)] = m.conformance
    heatmap_figure(
        stacks, list(registry.CCAS), grid,
        title="Fig 6b: conformance at 1 BDP (10 ms RTT, 20 Mbps)",
    ).save(str(OUTPUT_DIR / "fig06b_heatmap.svg"))

    envelope_figure(
        {
            "quiche CUBIC": quiche.result.test_envelope,
            "kernel CUBIC": quiche.result.reference_envelope,
        },
        title=f"Fig 15-style: quiche CUBIC vs reference (Conf={quiche.conformance:.2f})",
    ).save(str(OUTPUT_DIR / "fig15_quiche_envelope.svg"))

    envelope_figure(
        {
            "mvfst BBR": mvfst.result.test_envelope,
            "kernel BBR": mvfst.result.reference_envelope,
        },
        title=f"Fig 9-style: mvfst BBR vs reference (Conf={mvfst.conformance:.2f})",
    ).save(str(OUTPUT_DIR / "fig09_mvfst_envelope.svg"))

    line_figure(
        {
            "Conformance": [(p.cwnd_gain, p.conformance) for p in sweep],
            "Conformance-T": [(p.cwnd_gain, p.conformance_t) for p in sweep],
        },
        title="Fig 5: modified kernel BBR vs vanilla",
        x_label="cwnd gain",
        y_label="conformance",
        y_range=(0.0, 1.0),
    ).save(str(OUTPUT_DIR / "fig05_sweep.svg"))

    save_artifact(
        "svg_figures",
        "rendered: fig06b_heatmap.svg, fig09_mvfst_envelope.svg, "
        "fig15_quiche_envelope.svg, fig05_sweep.svg",
    )
    emit_bench(__file__, figures=4, heatmap_cells=len(heat))
    for name in (
        "fig06b_heatmap.svg",
        "fig09_mvfst_envelope.svg",
        "fig15_quiche_envelope.svg",
        "fig05_sweep.svg",
    ):
        assert (OUTPUT_DIR / name).stat().st_size > 1000
