"""Table 3: the low-conformance implementations at 1 BDP.

Prints Conf-old / Conf / Conf-T / Δ-tput / Δ-delay for the seven paper
rows next to the paper's own values.  Shapes that must reproduce: which
implementations are low-conformance, Conformance-T far above Conformance,
and the sign of the Δ offsets.
"""

from conftest import emit_bench, run_once

from repro.harness import reporting, scenarios
from repro.harness.conformance import measure_conformance

#: (stack, cca) -> paper's (conf_old, conf, conf_t, dtput, ddelay).
PAPER_ROWS = {
    ("chromium", "cubic"): (0.65, 0.60, 0.74, +3.0, 0.0),
    ("neqo", "cubic"): (0.00, 0.00, 0.62, -6.0, -5.0),
    ("quiche", "cubic"): (0.48, 0.08, 0.55, +5.5, 0.0),
    ("xquic", "cubic"): (0.60, 0.55, 0.64, 0.0, -5.0),
    ("mvfst", "bbr"): (0.00, 0.00, 0.70, +9.0, 0.0),
    ("xquic", "bbr"): (0.37, 0.15, 0.42, +4.0, 0.0),
    ("xquic", "reno"): (0.43, 0.38, 0.81, -4.0, -3.0),
}


def test_table3(benchmark, bench_config, bench_cache, save_artifact):
    condition = scenarios.shallow_buffer()

    def run():
        return {
            key: measure_conformance(key[0], key[1], condition, bench_config, cache=bench_cache)
            for key in PAPER_ROWS
        }

    measurements = run_once(benchmark, run)

    rows = []
    for key, paper in PAPER_ROWS.items():
        m = measurements[key]
        r = m.result
        rows.append(
            [
                key[0], key[1],
                round(r.conformance_legacy, 2), round(r.conformance, 2),
                round(r.conformance_t, 2),
                f"{r.delta_throughput_mbps:+.1f}", f"{r.delta_delay_ms:+.1f}",
                paper[0], paper[1], paper[2], f"{paper[3]:+.1f}", f"{paper[4]:+.1f}",
            ]
        )
    text = reporting.format_table(
        ["Stack", "Type", "Conf-old", "Conf", "Conf-T", "d-tput", "d-delay",
         "p:old", "p:Conf", "p:Conf-T", "p:d-tput", "p:d-delay"],
        rows,
        title="Table 3: low-conformance implementations at 1 BDP "
        "(measured vs paper 'p:' columns)",
    )
    save_artifact("table3_low_conformance", text)
    emit_bench(__file__, conformance={
        f"{stack}-{cca}": round(
            measurements[(stack, cca)].result.conformance, 3
        )
        for stack, cca in PAPER_ROWS
    })

    for key, m in measurements.items():
        r = m.result
        # Conformance-T must indicate fixability by translation.
        assert r.conformance_t >= r.conformance - 1e-9
        paper = PAPER_ROWS[key]
        # Sign of the throughput offset is the paper's root-cause hint.
        if abs(paper[3]) >= 3.0:
            assert r.delta_throughput_mbps * paper[3] > 0, (
                f"{key}: Δ-tput sign should match paper "
                f"({r.delta_throughput_mbps:+.1f} vs {paper[3]:+.1f})"
            )
    # The aggressive implementations are the aggressive ones in the paper.
    assert measurements[("quiche", "cubic")].result.delta_throughput_mbps > 2
    assert measurements[("mvfst", "bbr")].result.delta_throughput_mbps > 4
