"""repro.store: ingest throughput and query latency at campaign scale.

Synthesises a 10k-trial run (the order of a full 22-implementation,
16-condition, 3-trial campaign with both envelopes), ingests it into a
fresh warehouse, and reports trials/s for the batched ingest path,
measurements/s for the metric upsert path, and the latency of the query
shapes the CLI exposes (filtered query, metric_table pivot, run diff).

Numbers are reported, not asserted — the functional guarantees
(round-trip fidelity, diff semantics) live in tier-1 tests; this
benchmark exists to catch pathological slowdowns in the SQLite layer.
"""

import time

import numpy as np

from conftest import OUTPUT_DIR, emit_bench, run_once

from repro.harness.config import NetworkCondition
from repro.store import ResultStore, diff_runs

N_TRIALS = 10_000
TRIAL_POINTS = 40  # sampled (delay, throughput) pairs per trial payload
N_STACKS, N_CCAS, N_CONDITIONS = 22, 3, 16


def _synthetic_trials(rng):
    return [
        (f"bench-{i:06d}", rng.standard_normal((TRIAL_POINTS, 2)))
        for i in range(N_TRIALS)
    ]


def _conditions():
    return [
        NetworkCondition(bandwidth_mbps=bw, rtt_ms=rtt, buffer_bdp=buf)
        for bw in (10.0, 20.0, 50.0, 100.0)
        for rtt, buf in ((10.0, 0.5), (10.0, 1.0), (50.0, 1.0), (50.0, 4.0))
    ]


def test_store_ingest_and_query(benchmark, save_artifact):
    path = OUTPUT_DIR / "bench_store.db"
    path.unlink(missing_ok=True)
    rng = np.random.default_rng(2023)
    trials = _synthetic_trials(rng)
    conditions = _conditions()

    with ResultStore(path) as store:
        run = store.ensure_run("bench", note="synthetic 10k-trial campaign")

        t0 = time.perf_counter()
        inserted = run_once(benchmark, lambda: store.put_trials(trials, run=run))
        ingest_wall = time.perf_counter() - t0
        assert inserted == N_TRIALS

        t0 = time.perf_counter()
        n_measurements = 0
        for s in range(N_STACKS):
            for c in range(N_CCAS):
                for condition in conditions:
                    store.record_metrics(
                        run,
                        stack=f"stack{s:02d}",
                        cca=f"cca{c}",
                        metrics={
                            "conf": rng.random(),
                            "conf_t": rng.random(),
                            "delta_tput_mbps": rng.standard_normal(),
                        },
                        condition=condition,
                    )
                    n_measurements += 1
        metrics_wall = time.perf_counter() - t0

        # A second run sharing ~half the verdicts, for the diff timing.
        other = store.ensure_run("bench-next")
        for s in range(N_STACKS):
            for c in range(N_CCAS):
                store.record_metrics(
                    other,
                    stack=f"stack{s:02d}",
                    cca=f"cca{c}",
                    metrics={"conf": rng.random()},
                    condition=conditions[0],
                )

        t0 = time.perf_counter()
        rows = store.query(run=run, metric="conf")
        query_all_ms = (time.perf_counter() - t0) * 1e3
        assert len(rows) == n_measurements

        t0 = time.perf_counter()
        filtered = store.query(run=run, stack="stack07", metric="conf")
        query_filtered_ms = (time.perf_counter() - t0) * 1e3
        assert len(filtered) == N_CCAS * len(conditions)

        t0 = time.perf_counter()
        table = store.metric_table(run, "conf")
        pivot_ms = (time.perf_counter() - t0) * 1e3
        assert len(table) == n_measurements

        t0 = time.perf_counter()
        diff = diff_runs(store, run, other)
        diff_ms = (time.perf_counter() - t0) * 1e3

        payload_mb = sum(t[1].nbytes for t in trials) / 1e6
        db_mb = path.stat().st_size / 1e6

    # The database is scratch state; only the report below is an artifact.
    path.unlink(missing_ok=True)
    for suffix in ("-wal", "-shm"):
        path.with_name(path.name + suffix).unlink(missing_ok=True)

    lines = [
        f"repro.store benchmark ({N_TRIALS} trials x {TRIAL_POINTS} points, "
        f"{n_measurements} measurements)",
        f"trial ingest:    {N_TRIALS / ingest_wall:,.0f} trials/s "
        f"({payload_mb:.1f} MB payload in {ingest_wall:.2f}s, one transaction)",
        f"metric upserts:  {n_measurements / metrics_wall:,.0f} measurements/s "
        f"({metrics_wall:.2f}s, one transaction each)",
        f"query all conf:  {query_all_ms:.1f} ms ({len(rows)} rows)",
        f"query filtered:  {query_filtered_ms:.2f} ms ({len(filtered)} rows)",
        f"metric_table:    {pivot_ms:.1f} ms ({len(table)} subjects)",
        f"diff two runs:   {diff_ms:.1f} ms ({diff.compared} shared subjects, "
        f"{len(diff.flips)} flips)",
        f"database size:   {db_mb:.1f} MB",
    ]
    save_artifact("store_throughput", "\n".join(lines))
    emit_bench(
        __file__,
        trials_per_s=round(N_TRIALS / ingest_wall, 1),
        measurements_per_s=round(n_measurements / metrics_wall, 1),
        query_all_ms=round(query_all_ms, 2),
        diff_ms=round(diff_ms, 2),
    )
