"""Figure 13: CUBIC x BBR interactions in shallow and deep buffers.

Expected textbook behaviour: BBR wins shallow buffers (Fig 13a "all red"),
CUBIC wins deep buffers (Fig 13b "all blue").  The paper shows the
low-conformance implementations subverting this: xquic CUBIC beats BBRs
in shallow buffers; xquic/mvfst BBR beat CUBICs in deep buffers.

To bound wall time the CUBIC axis uses a representative subset (kernel +
the low-conformance CUBICs + two conformant ones); the harness accepts
any subset.
"""

from conftest import emit_bench, run_once

from repro.harness import reporting, scenarios
from repro.harness.fairness import inter_cca_matrix

BBR_STACKS = ["linux", "mvfst", "chromium", "lsquic", "xquic"]
CUBIC_STACKS = ["linux", "chromium", "msquic", "quiche", "quicgo", "xquic"]


def test_fig13_inter_cca_matrices(
    benchmark, share_config, bench_cache, bench_executor, save_artifact
):
    def run():
        out = {}
        for name, condition in (
            ("shallow", scenarios.inter_cca_shallow()),
            ("deep", scenarios.inter_cca_deep()),
        ):
            out[name] = inter_cca_matrix(
                "bbr",
                "cubic",
                condition,
                share_config,
                row_stacks=BBR_STACKS,
                col_stacks=CUBIC_STACKS,
                cache=bench_cache,
                executor=bench_executor,
            )
        return out

    matrices = run_once(benchmark, run)

    sections = []
    for name, matrix in matrices.items():
        sections.append(
            reporting.format_heatmap(
                matrix.rows,
                matrix.cols,
                matrix.shares,
                title=f"Fig 13 ({name}): BBR row share vs CUBIC column "
                "(1=BBR starves CUBIC)",
            )
        )
    save_artifact("fig13_inter_cca", "\n\n".join(sections))

    shallow, deep = matrices["shallow"], matrices["deep"]
    emit_bench(__file__, kernel_bbr_vs_kernel_cubic={
        "shallow": round(shallow.share("linux-bbr", "linux-cubic"), 3),
        "deep": round(deep.share("linux-bbr", "linux-cubic"), 3),
    })
    # Textbook: kernel BBR beats kernel CUBIC in shallow buffers...
    assert shallow.share("linux-bbr", "linux-cubic") > 0.6
    # ...and loses in deep buffers.
    assert deep.share("linux-bbr", "linux-cubic") < 0.5
    # Subversion: mvfst BBR beats kernel CUBIC in the deep buffer where a
    # conformant BBR loses (paper Fig 13b).
    assert deep.share("mvfst-bbr", "linux-cubic") > deep.share(
        "linux-bbr", "linux-cubic"
    )
    # The paper's other subversion — xquic CUBIC resisting BBR in shallow
    # buffers — reproduces only partially here (see EXPERIMENTS.md "Known
    # fidelity gaps"); report it without asserting.
    delta = shallow.share("linux-bbr", "xquic-cubic") - shallow.share(
        "linux-bbr", "linux-cubic"
    )
    print(f"xquic-CUBIC shallow resistance vs kernel CUBIC: {delta:+.2f} "
          "(paper: negative)")
