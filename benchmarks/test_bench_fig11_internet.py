"""Figure 11: conformance "in the wild" (synthetic AWS-to-lab WAN).

The paper's finding: Internet conformance numbers track the 1-BDP
testbed results.  The WAN here is a 100 Mbps local limiter with a pinned
50 ms RTT plus jitter, sporadic loss and on/off cross traffic (see
repro.harness.internet for the substitution).

To bound benchmark wall time, the WAN sweep covers the CUBIC column — the
one CCA every stack implements; the harness function accepts any subset.
"""

import numpy as np
from conftest import emit_bench, run_once

from repro.harness import reporting, scenarios
from repro.harness.config import ExperimentConfig
from repro.harness.conformance import conformance_heatmap
from repro.harness.internet import internet_heatmap

WAN_CONFIG = ExperimentConfig(duration_s=40.0, trials=2)


def test_fig11_internet_conformance(
    benchmark, bench_config, bench_cache, bench_executor, save_artifact
):
    def run():
        return internet_heatmap(
            WAN_CONFIG, ccas=("cubic",), cache=bench_cache, executor=bench_executor
        )

    wan = run_once(benchmark, run)
    testbed = conformance_heatmap(
        scenarios.shallow_buffer(),
        bench_config,
        ccas=("cubic",),
        cache=bench_cache,
        executor=bench_executor,
    )

    rows = []
    agree = []
    for key in sorted(wan):
        w = wan[key].conformance
        t = testbed[key].conformance
        rows.append([key[0], key[1], round(w, 2), round(t, 2)])
        agree.append((w < 0.5) == (t < 0.5))
    text = reporting.format_table(
        ["Stack", "CCA", "Conf (internet)", "Conf (testbed 1BDP)"],
        rows,
        title="Fig 11: conformance over the synthetic WAN vs the 1-BDP testbed "
        "(paper: 'similar to our results for 1 BDP buffer')",
    )
    save_artifact("fig11_internet", text)
    emit_bench(__file__, stacks=len(rows),
               verdict_agreement=round(float(np.mean(agree)), 3))

    # The low/high conformance verdicts mostly agree with the testbed.
    assert np.mean(agree) >= 0.6
    # quiche's rollback stays visibly non-conformant in the wild.
    assert wan[("quiche", "cubic")].conformance < 0.65
