"""§6 "Transitivity": intra-CCA beats-relations are transitive, inter-CCA
relations need not be.

Uses the deep-buffer interaction setting of the paper's counterexample
(lsquic CUBIC > msquic CUBIC > chromium BBR, but lsquic CUBIC does not
beat chromium BBR in deep buffers).
"""

from conftest import emit_bench, run_once

from repro.analysis.transitivity import analyze
from repro.harness import reporting, scenarios
from repro.harness.runner import Impl

INTRA = [Impl(s, "cubic") for s in ("linux", "lsquic", "msquic", "quicgo", "quiche")]
INTER = [
    Impl("lsquic", "cubic"),
    Impl("msquic", "cubic"),
    Impl("chromium", "bbr"),
    Impl("linux", "bbr"),
    Impl("xquic", "cubic"),
]


def test_transitivity(benchmark, share_config, bench_cache, save_artifact):
    def run():
        intra = analyze(INTRA, scenarios.fairness_condition(), share_config, cache=bench_cache)
        inter = analyze(INTER, scenarios.inter_cca_deep(), share_config, cache=bench_cache)
        return intra, inter

    intra, inter = run_once(benchmark, run)

    lines = [
        "Transitivity of the beats relation (share > 0.5):",
        f"  intra-CCA (CUBIC impls): violations = {len(intra.violations)}",
        f"  inter-CCA (CUBIC+BBR, deep buffer): violations = {len(inter.violations)}",
    ]
    for x, y, z in inter.violations[:5]:
        lines.append(f"    counterexample: {x} > {y} > {z} but not {x} > {z}")
    matrix = reporting.format_heatmap(
        [str(i) for i in inter.impls],
        [str(i) for i in inter.impls],
        inter.beats.astype(float),
        title="inter-CCA beats matrix (1 = row beats column)",
        fmt="{:.0f}",
    )
    text = "\n".join(lines) + "\n\n" + matrix
    save_artifact("transitivity", text)
    emit_bench(__file__, intra_violations=len(intra.violations),
               inter_violations=len(inter.violations))

    # Paper: intra-CCA relations are (at most weakly) intransitive
    # compared to the cross-CCA ones.
    assert len(intra.violations) <= len(inter.violations) + 1
