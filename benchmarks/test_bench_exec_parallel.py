"""repro.exec: parallel campaigns reproduce serial numbers bit-for-bit.

Runs the same cold-cache conformance heatmap twice — once serially, once
through ``Executor(jobs=4)`` — asserts every cell is numerically
identical, and records both wall-clocks plus the executor telemetry.

The wall-clocks are reported, not asserted: on a single-core box the
``spawn`` start-up cost dominates and the pool is *slower*; the payoff
appears only with real cores.  The correctness claim (determinism under
parallelism) is what this benchmark pins down.
"""

import time

from conftest import emit_bench, run_once

from repro.exec import Executor
from repro.harness import scenarios
from repro.harness.cache import ResultCache
from repro.harness.config import ExperimentConfig
from repro.harness.conformance import conformance_heatmap

#: Deliberately small: both runs start from a cold cache, so the full
#: simulation cost is paid twice.
EXEC_CONFIG = ExperimentConfig(duration_s=8.0, trials=2)
STACKS = ("quiche", "mvfst", "chromium")
CCAS = ("cubic",)
CONDITION = scenarios.shallow_buffer()


def test_exec_parallel_matches_serial(benchmark, save_artifact):
    t0 = time.perf_counter()
    serial = conformance_heatmap(
        CONDITION, EXEC_CONFIG, ccas=CCAS, stacks=STACKS, cache=ResultCache()
    )
    serial_wall = time.perf_counter() - t0

    executor = Executor(jobs=4, cache=ResultCache())

    def run_parallel():
        return conformance_heatmap(
            CONDITION, EXEC_CONFIG, ccas=CCAS, stacks=STACKS, executor=executor
        )

    t0 = time.perf_counter()
    parallel = run_once(benchmark, run_parallel)
    parallel_wall = time.perf_counter() - t0

    assert set(serial) == set(parallel)
    for key in serial:
        a, b = serial[key].result, parallel[key].result
        assert a.conformance == b.conformance, f"{key} diverged"
        assert a.conformance_t == b.conformance_t, f"{key} diverged"
        assert a.delta_throughput_mbps == b.delta_throughput_mbps

    lines = [
        "repro.exec determinism benchmark (cold cache, "
        f"{len(serial)} cells x {EXEC_CONFIG.trials} trials, "
        f"{EXEC_CONFIG.duration_s:g}s flows)",
        f"serial wall:   {serial_wall:.2f}s",
        f"parallel wall: {parallel_wall:.2f}s (jobs=4, mode={executor.last_mode})",
        executor.telemetry.summary(),
        "all heatmap cells numerically identical: yes",
    ]
    save_artifact("exec_parallel", "\n".join(lines))
    emit_bench(
        __file__,
        cells=len(serial),
        serial_wall_s=round(serial_wall, 3),
        parallel_wall_s=round(parallel_wall, 3),
        exec_mode=executor.last_mode,
    )
