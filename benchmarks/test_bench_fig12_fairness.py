"""Figure 12: pairwise bandwidth shares for CUBIC, Reno and BBR.

Paper's reading: the low-conformance implementations (chromium, quiche
and xquic CUBIC; mvfst and xquic BBR; xquic Reno) are the unfair ones —
and lsquic CUBIC is mildly unfair despite high conformance, so high
conformance does not guarantee fairness.
"""

from conftest import emit_bench, run_once

from repro.harness import reporting, scenarios
from repro.harness.fairness import intra_cca_matrix


def test_fig12_intra_cca_share_matrices(
    benchmark, share_config, bench_cache, bench_executor, save_artifact
):
    condition = scenarios.fairness_condition()  # 20 Mbps, 50 ms, 1 BDP

    def run():
        return {
            cca: intra_cca_matrix(
                cca,
                condition,
                share_config,
                cache=bench_cache,
                executor=bench_executor,
            )
            for cca in ("cubic", "reno", "bbr")
        }

    matrices = run_once(benchmark, run)

    sections = []
    for cca, matrix in matrices.items():
        sections.append(
            reporting.format_heatmap(
                matrix.rows,
                matrix.cols,
                matrix.shares,
                title=f"Fig 12: bandwidth share of row vs column — {cca} "
                "(20 Mbps, 50 ms RTT, 1 BDP)",
            )
        )
        aggressive = matrix.unfair_rows(threshold=0.55)
        sections.append(f"overly aggressive ({cca}): {aggressive or 'none'}")
    text = "\n\n".join(sections)
    save_artifact("fig12_fairness", text)
    emit_bench(__file__, quiche_vs_kernel_cubic=round(
        matrices["cubic"].share("quiche-cubic", "linux-cubic"), 3
    ), mvfst_vs_kernel_bbr=round(
        matrices["bbr"].share("mvfst-bbr", "linux-bbr"), 3
    ))

    cubic = matrices["cubic"]
    # The aggressive CUBIC implementations beat the kernel.
    assert cubic.share("quiche-cubic", "linux-cubic") > 0.55
    # The weak stack artifacts lose to the kernel.
    assert cubic.share("neqo-cubic", "linux-cubic") < 0.45
    # Conformant stacks are near-fair against the kernel.
    assert 0.3 < cubic.share("quicgo-cubic", "linux-cubic") < 0.7
    # xquic Reno undershoots (Table 3's negative d-tput).
    assert matrices["reno"].share("xquic-reno", "linux-reno") < 0.45
    # mvfst BBR starves other BBRs.
    assert matrices["bbr"].share("mvfst-bbr", "linux-bbr") > 0.6
