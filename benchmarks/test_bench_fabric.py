"""repro.fabric: queue throughput and distributed campaign latency.

Two numbers the fabric must not quietly regress on:

* raw :class:`repro.fabric.queue.WorkQueue` throughput — every lease,
  heartbeat and completion is one SQLite transaction, so a schema or
  indexing slip shows up here long before it wedges a real fleet;
* end-to-end campaign latency through the coordinator at fleet sizes
  1, 2 and 4 — each fleet drains the same number of campaigns, every
  campaign seeded differently so the work is genuinely cold and the
  worker-count scaling stays visible.

Wall-clocks are reported (and floored loosely); the bit-identity and
protocol guarantees live in the tier-1 fabric test suite.
"""

import threading
import time

import numpy as np
from conftest import emit_bench, run_once

from repro.fabric.coordinator import Coordinator
from repro.fabric.queue import WorkQueue
from repro.fabric.worker import FabricWorker, LocalTransport
from repro.harness.cache import CACHE_DIR_ENV
from repro.service.scheduler import DONE, TERMINAL_STATES
from repro.service.specs import parse_campaign_spec
from repro.store import open_store

N_QUEUE_TASKS = 200
FLEET_SIZES = (1, 2, 4)
CAMPAIGNS_PER_FLEET = 4
N_STORE_TRIALS = 300
STORE_SHARDS = 4

SPEC = {
    "kind": "conformance",
    "stacks": ["xquic"],
    "ccas": ["cubic"],
    "duration_s": 3,
    "trials": 2,
    "run": "bench-fabric",
}


def test_queue_throughput(benchmark, tmp_path, save_artifact):
    """Full enqueue -> lease -> heartbeat -> complete cycle, serially."""
    spec = {"kind": "conformance", "stacks": ["quiche"], "ccas": ["cubic"]}

    def cycle():
        with WorkQueue(str(tmp_path / "queue.db")) as q:
            t0 = time.perf_counter()
            for i in range(N_QUEUE_TASKS):
                q.enqueue(f"bench-{i:05d}", spec, priority=i % 3)
            enqueue_wall = time.perf_counter() - t0

            t0 = time.perf_counter()
            drained = 0
            while True:
                lease = q.lease("bench-worker", ttl_s=600.0)
                if lease is None:
                    break
                q.heartbeat(lease.campaign, lease.lease_id, ttl_s=600.0)
                q.complete(lease.campaign, lease.lease_id, {"cells": 1})
                drained += 1
            drain_wall = time.perf_counter() - t0
        return enqueue_wall, drained, drain_wall

    enqueue_wall, drained, drain_wall = run_once(benchmark, cycle)
    assert drained == N_QUEUE_TASKS
    tasks_per_s = drained / drain_wall
    lines = [
        f"repro.fabric queue benchmark ({N_QUEUE_TASKS} tasks)",
        f"enqueue: {N_QUEUE_TASKS / enqueue_wall:,.0f} tasks/s "
        f"({enqueue_wall:.2f}s)",
        f"lease+heartbeat+complete: {tasks_per_s:,.0f} tasks/s "
        f"({drain_wall:.2f}s, 3 transactions per task)",
    ]
    save_artifact("fabric_queue", "\n".join(lines))
    emit_bench(
        __file__,
        queue_tasks=N_QUEUE_TASKS,
        queue_tasks_per_s=round(tasks_per_s, 1),
        queue_enqueue_per_s=round(N_QUEUE_TASKS / enqueue_wall, 1),
    )
    # Generous floor: a 10x regression in the SQLite layer trips this.
    assert tasks_per_s > 5


def test_sharded_store_throughput(benchmark, tmp_path, save_artifact):
    """Streaming ingest + full read-back through a sharded warehouse.

    Every trial is one content-addressed payload hash-routed to a shard
    plus a run link on the meta shard — the same write path a fleet of
    workers drives concurrently, so a dispatch or transaction slip in
    :class:`repro.store.ShardedResultStore` shows up here first.
    """
    payloads = [
        np.full((256,), float(i)) for i in range(N_STORE_TRIALS)
    ]

    def cycle():
        root = tmp_path / "warehouse"
        with open_store(root, shards=STORE_SHARDS) as store:
            run = store.ensure_run("bench")
            t0 = time.perf_counter()
            for i, payload in enumerate(payloads):
                store.put_trial(f"bench-{i:05d}", payload, run=run)
            write_wall = time.perf_counter() - t0

            t0 = time.perf_counter()
            read = sum(
                store.get_trial(f"bench-{i:05d}").shape[0]
                for i in range(N_STORE_TRIALS)
            )
            read_wall = time.perf_counter() - t0
            assert read == N_STORE_TRIALS * 256
            assert store.counts()["shards"] == STORE_SHARDS
            assert store.integrity_ok()
        return write_wall, read_wall

    write_wall, read_wall = run_once(benchmark, cycle)
    write_per_s = N_STORE_TRIALS / write_wall
    read_per_s = N_STORE_TRIALS / read_wall
    lines = [
        f"repro.store sharded warehouse benchmark "
        f"({N_STORE_TRIALS} trials, {STORE_SHARDS} shards)",
        f"put_trial: {write_per_s:,.0f} trials/s ({write_wall:.2f}s)",
        f"get_trial: {read_per_s:,.0f} trials/s ({read_wall:.2f}s)",
    ]
    save_artifact("fabric_sharded_store", "\n".join(lines))
    emit_bench(
        __file__,
        sharded_trials=N_STORE_TRIALS,
        sharded_shards=STORE_SHARDS,
        sharded_put_per_s=round(write_per_s, 1),
        sharded_get_per_s=round(read_per_s, 1),
    )
    # Generous floors: an order of magnitude under the tracked rates, so
    # only a pathological dispatch/transaction regression trips.
    assert write_per_s > 20, write_per_s
    assert read_per_s > 100, read_per_s


def _drain_fleet(store_path, workers):
    """Submit CAMPAIGNS_PER_FLEET cold campaigns and drain with a fleet."""
    coordinator = Coordinator(str(store_path))
    try:
        t0 = time.perf_counter()
        jobs = [
            coordinator.submit(
                parse_campaign_spec(
                    dict(SPEC, note=f"fleet{workers}-{i}",
                         seed=1000 * workers + i)
                )
            )
            for i in range(CAMPAIGNS_PER_FLEET)
        ]
        fleet = [
            FabricWorker(
                LocalTransport(coordinator),
                name=f"bench-w{i}",
                store_path=coordinator.store_path,
                poll_s=0.02,
                ttl_s=30.0,
            )
            for i in range(workers)
        ]
        threads = [
            threading.Thread(target=w.run, daemon=True) for w in fleet
        ]
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + 600.0
        while time.monotonic() < deadline:
            states = [coordinator.job(job.id).state for job in jobs]
            if all(state in TERMINAL_STATES for state in states):
                break
            time.sleep(0.05)
        wall = time.perf_counter() - t0
        for worker in fleet:
            worker.stop()
        for thread in threads:
            thread.join(timeout=10.0)
        assert all(
            coordinator.job(job.id).state == DONE for job in jobs
        ), f"fleet of {workers} left campaigns unfinished"
        return wall
    finally:
        coordinator.shutdown(drain=False)


def test_campaign_latency_by_fleet_size(
    benchmark, tmp_path, monkeypatch, save_artifact
):
    walls = {}

    def sweep():
        for workers in FLEET_SIZES:
            # Fresh store and cache per fleet: every run is cold, so the
            # wall-clocks compare worker counts, not cache luck.
            monkeypatch.setenv(
                CACHE_DIR_ENV, str(tmp_path / f"cache-{workers}")
            )
            walls[workers] = _drain_fleet(
                tmp_path / f"fabric-{workers}.db", workers
            )
        return walls

    run_once(benchmark, sweep)
    lines = [
        "repro.fabric end-to-end campaign latency "
        f"({CAMPAIGNS_PER_FLEET} cold campaigns per fleet)",
    ] + [
        f"workers={w}: {walls[w]:.2f}s "
        f"({CAMPAIGNS_PER_FLEET / walls[w]:.2f} campaigns/s)"
        for w in FLEET_SIZES
    ]
    save_artifact("fabric_campaign_latency", "\n".join(lines))
    emit_bench(
        __file__,
        campaigns_per_fleet=CAMPAIGNS_PER_FLEET,
        campaign_wall_s={
            str(w): round(walls[w], 3) for w in FLEET_SIZES
        },
    )
    assert all(wall > 0 for wall in walls.values())
