"""repro.fabric: queue throughput and distributed campaign latency.

Two numbers the fabric must not quietly regress on:

* raw :class:`repro.fabric.queue.WorkQueue` throughput — every lease,
  heartbeat and completion is one SQLite transaction, so a schema or
  indexing slip shows up here long before it wedges a real fleet;
* end-to-end campaign latency through the coordinator at fleet sizes
  1, 2 and 4 — each fleet drains the same number of campaigns, every
  campaign seeded differently so the work is genuinely cold and the
  worker-count scaling stays visible.

Wall-clocks are reported (and floored loosely); the bit-identity and
protocol guarantees live in the tier-1 fabric test suite.
"""

import threading
import time

from conftest import emit_bench, run_once

from repro.fabric.coordinator import Coordinator
from repro.fabric.queue import WorkQueue
from repro.fabric.worker import FabricWorker, LocalTransport
from repro.harness.cache import CACHE_DIR_ENV
from repro.service.scheduler import DONE, TERMINAL_STATES
from repro.service.specs import parse_campaign_spec

N_QUEUE_TASKS = 200
FLEET_SIZES = (1, 2, 4)
CAMPAIGNS_PER_FLEET = 4

SPEC = {
    "kind": "conformance",
    "stacks": ["xquic"],
    "ccas": ["cubic"],
    "duration_s": 3,
    "trials": 2,
    "run": "bench-fabric",
}


def test_queue_throughput(benchmark, tmp_path, save_artifact):
    """Full enqueue -> lease -> heartbeat -> complete cycle, serially."""
    spec = {"kind": "conformance", "stacks": ["quiche"], "ccas": ["cubic"]}

    def cycle():
        with WorkQueue(str(tmp_path / "queue.db")) as q:
            t0 = time.perf_counter()
            for i in range(N_QUEUE_TASKS):
                q.enqueue(f"bench-{i:05d}", spec, priority=i % 3)
            enqueue_wall = time.perf_counter() - t0

            t0 = time.perf_counter()
            drained = 0
            while True:
                lease = q.lease("bench-worker", ttl_s=600.0)
                if lease is None:
                    break
                q.heartbeat(lease.campaign, lease.lease_id, ttl_s=600.0)
                q.complete(lease.campaign, lease.lease_id, {"cells": 1})
                drained += 1
            drain_wall = time.perf_counter() - t0
        return enqueue_wall, drained, drain_wall

    enqueue_wall, drained, drain_wall = run_once(benchmark, cycle)
    assert drained == N_QUEUE_TASKS
    tasks_per_s = drained / drain_wall
    lines = [
        f"repro.fabric queue benchmark ({N_QUEUE_TASKS} tasks)",
        f"enqueue: {N_QUEUE_TASKS / enqueue_wall:,.0f} tasks/s "
        f"({enqueue_wall:.2f}s)",
        f"lease+heartbeat+complete: {tasks_per_s:,.0f} tasks/s "
        f"({drain_wall:.2f}s, 3 transactions per task)",
    ]
    save_artifact("fabric_queue", "\n".join(lines))
    emit_bench(
        __file__,
        queue_tasks=N_QUEUE_TASKS,
        queue_tasks_per_s=round(tasks_per_s, 1),
        queue_enqueue_per_s=round(N_QUEUE_TASKS / enqueue_wall, 1),
    )
    # Generous floor: a 10x regression in the SQLite layer trips this.
    assert tasks_per_s > 5


def _drain_fleet(store_path, workers):
    """Submit CAMPAIGNS_PER_FLEET cold campaigns and drain with a fleet."""
    coordinator = Coordinator(str(store_path))
    try:
        t0 = time.perf_counter()
        jobs = [
            coordinator.submit(
                parse_campaign_spec(
                    dict(SPEC, note=f"fleet{workers}-{i}",
                         seed=1000 * workers + i)
                )
            )
            for i in range(CAMPAIGNS_PER_FLEET)
        ]
        fleet = [
            FabricWorker(
                LocalTransport(coordinator),
                name=f"bench-w{i}",
                store_path=coordinator.store_path,
                poll_s=0.02,
                ttl_s=30.0,
            )
            for i in range(workers)
        ]
        threads = [
            threading.Thread(target=w.run, daemon=True) for w in fleet
        ]
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + 600.0
        while time.monotonic() < deadline:
            states = [coordinator.job(job.id).state for job in jobs]
            if all(state in TERMINAL_STATES for state in states):
                break
            time.sleep(0.05)
        wall = time.perf_counter() - t0
        for worker in fleet:
            worker.stop()
        for thread in threads:
            thread.join(timeout=10.0)
        assert all(
            coordinator.job(job.id).state == DONE for job in jobs
        ), f"fleet of {workers} left campaigns unfinished"
        return wall
    finally:
        coordinator.shutdown(drain=False)


def test_campaign_latency_by_fleet_size(
    benchmark, tmp_path, monkeypatch, save_artifact
):
    walls = {}

    def sweep():
        for workers in FLEET_SIZES:
            # Fresh store and cache per fleet: every run is cold, so the
            # wall-clocks compare worker counts, not cache luck.
            monkeypatch.setenv(
                CACHE_DIR_ENV, str(tmp_path / f"cache-{workers}")
            )
            walls[workers] = _drain_fleet(
                tmp_path / f"fabric-{workers}.db", workers
            )
        return walls

    run_once(benchmark, sweep)
    lines = [
        "repro.fabric end-to-end campaign latency "
        f"({CAMPAIGNS_PER_FLEET} cold campaigns per fleet)",
    ] + [
        f"workers={w}: {walls[w]:.2f}s "
        f"({CAMPAIGNS_PER_FLEET / walls[w]:.2f} campaigns/s)"
        for w in FLEET_SIZES
    ]
    save_artifact("fabric_campaign_latency", "\n".join(lines))
    emit_bench(
        __file__,
        campaigns_per_fleet=CAMPAIGNS_PER_FLEET,
        campaign_wall_s={
            str(w): round(walls[w], 3) for w in FLEET_SIZES
        },
    )
    assert all(wall > 0 for wall in walls.values())
