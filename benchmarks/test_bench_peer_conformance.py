"""repro.ccax: reference-free peer-conformance campaign throughput.

Runs a three-peer group (bbr3, cubic, gcc — one model-based, one
loss-based, one real-time CCA) through the full peer-conformance
pipeline — self-competition trials, per-peer Performance Envelopes,
pairwise conformance matrix, k-selected clustering, peer scores — and
reports how many delivered packets the campaign pushes per wall-clock
second.  Numbers land in ``output/BENCH_peer_conformance.json`` so CI
history can catch a pathological slowdown in the new-CCA simulation
paths; functional guarantees (jobs-1-vs-N bit-identity, clustering
determinism) live in tier-1 tests.
"""

import time

from conftest import emit_bench, run_once

from repro.ccax.campaign import evaluate_peer_group
from repro.harness import scenarios
from repro.harness.cache import ResultCache
from repro.harness.config import ExperimentConfig
from repro.harness.runner import Impl, run_pair

PEERS = ["bbr3", "cubic", "gcc"]
CONFIG = ExperimentConfig(duration_s=20.0, trials=2)


def test_peer_conformance_campaign(benchmark, tmp_path):
    condition = scenarios.shallow_buffer()

    def run():
        start = time.perf_counter()
        result = evaluate_peer_group(
            PEERS,
            condition,
            CONFIG,
            cache=ResultCache(directory=tmp_path / "cache"),
        )
        wall_s = time.perf_counter() - start
        # Packet count from one representative trial per peer (the
        # campaign's sampled point clouds don't retain traces).
        packets = 0
        for peer in PEERS:
            impl = Impl("linux", peer)
            pair = run_pair(
                impl, impl, condition, duration_s=CONFIG.duration_s, seed=0
            )
            packets += len(pair.first.trace.records)
            packets += len(pair.second.trace.records)
        return result, packets, wall_s

    result, packets, wall_s = run_once(benchmark, run)
    assert sorted(result.peers) == sorted(PEERS)
    assert 1 <= result.k <= len(PEERS)
    assert packets > 0
    emit_bench(
        __file__,
        peers=PEERS,
        k=int(result.k),
        scores={p: round(result.score_of(p), 4) for p in result.peers},
        trials=CONFIG.trials,
        duration_s=CONFIG.duration_s,
        packets=packets,
        sim_wall_s=round(wall_s, 4),
        packets_per_s=round(packets / wall_s, 1),
    )
