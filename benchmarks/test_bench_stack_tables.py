"""Tables 1 and 2: the stack inventory."""

from conftest import emit_bench, run_once

from repro.harness import reporting
from repro.stacks import registry


def test_table1_studied_stacks(benchmark, save_artifact):
    def build():
        rows = []
        for profile in registry.STACKS.values():
            rows.append(
                [
                    profile.organization,
                    profile.name,
                    profile.version[:16],
                    "yes" if profile.supports("cubic") else "no",
                    "yes" if profile.supports("bbr") else "no",
                    "yes" if profile.supports("reno") else "no",
                ]
            )
        return reporting.format_table(
            ["Organization", "Stack", "Version/Commit", "CUBIC", "BBR", "Reno"],
            rows,
            title="Table 1: QUIC/TCP stacks studied and their available CCAs",
        )

    text = run_once(benchmark, build)
    save_artifact("table1_stacks", text)
    emit_bench(__file__, studied_stacks=len(registry.STACKS),
               known_stacks=len(registry.KNOWN_STACKS))
    assert "quiche" in text and "xquic" in text


def test_table2_known_stacks(benchmark, save_artifact):
    def build():
        rows = [
            [
                k.organization,
                k.stack,
                "yes" if k.open_source else "no",
                "yes" if k.implements_cc else "no",
                "yes" if k.stable else "no",
                "yes" if k.deployed else "no",
                "yes" if k.studied else "no",
            ]
            for k in registry.KNOWN_STACKS
        ]
        return reporting.format_table(
            ["Organization", "Stack", "Open Source", "Implements CC",
             "Stable Rel.", "Deployed", "Studied?"],
            rows,
            title="Table 2: known IETF QUIC/TCP stacks",
        )

    text = run_once(benchmark, build)
    save_artifact("table2_known_stacks", text)
    assert text.count("yes") > 30
