"""§6 "Keeping up with the kernel": conformance across kernel milestones.

Regression-tests representative implementations against two kernel
flavours: the paper's 5.13 reference and a pre-HyStart CUBIC.  The
interesting row is xquic CUBIC, whose verdict depends on the milestone —
it is conformant to the HyStart-less kernel (Table 4's verification) —
which is exactly the phenomenon §6 says demands per-milestone testing.
"""

from conftest import emit_bench, run_once

from repro.harness import reporting, scenarios
from repro.harness.regression import MILESTONES, flipped_verdicts, regression_matrix

IMPLEMENTATIONS = [
    ("quicgo", "cubic"),
    ("msquic", "cubic"),
    ("xquic", "cubic"),
    ("quiche", "cubic"),
]


def test_kernel_milestone_regression(benchmark, bench_config, bench_cache, save_artifact):
    condition = scenarios.shallow_buffer()

    def run():
        return regression_matrix(
            milestones=MILESTONES,
            implementations=IMPLEMENTATIONS,
            condition=condition,
            config=bench_config,
            cache=bench_cache,
        )

    rows_data = run_once(benchmark, run)
    names = [m.name for m in MILESTONES]
    rows = [
        [r.stack, r.cca]
        + [round(r.conformance[n], 2) for n in names]
        + ["FLIPS" if r.verdict_flips else ""]
        for r in rows_data
    ]
    text = reporting.format_table(
        ["Stack", "CCA"] + names + ["verdict"],
        rows,
        title="Conformance across kernel milestones "
        "(§6 'Keeping up with the kernel')",
    )
    save_artifact("regression_kernel_milestones", text)
    emit_bench(__file__, implementations=len(rows_data), verdict_flips=sum(
        1 for r in rows_data if r.verdict_flips
    ))

    by_key = {(r.stack, r.cca): r for r in rows_data}
    xquic = by_key[("xquic", "cubic")]
    # Table 4: xquic CUBIC conforms better to the HyStart-less kernel.
    assert xquic.conformance["pre-hystart"] >= xquic.conformance["5.13-stock"] - 0.05
    # Conformant stacks stay conformant under both milestones.
    assert min(by_key[("quicgo", "cubic")].conformance.values()) > 0.4
