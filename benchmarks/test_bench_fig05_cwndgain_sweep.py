"""Figure 5: Conformance vs Conformance-T for modified kernel BBR.

The paper's validation of Conformance-T: sweeping BBR's cwnd gain away
from the default 2.0 collapses Conformance while Conformance-T stays
high, and the translation components grow with the gain.
"""

from conftest import emit_bench, run_once

from repro.analysis.sweeps import cwnd_gain_sweep
from repro.harness import reporting

GAINS = (1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0)


def test_fig5_cwnd_gain_sweep(
    benchmark, bench_config, bench_cache, bench_executor, save_artifact
):
    points = run_once(
        benchmark,
        lambda: cwnd_gain_sweep(
            gains=GAINS,
            config=bench_config,
            cache=bench_cache,
            executor=bench_executor,
        ),
    )
    rows = [
        [p.cwnd_gain, round(p.conformance, 2), round(p.conformance_t, 2),
         f"{p.delta_throughput_mbps:+.1f}", f"{p.delta_delay_ms:+.1f}"]
        for p in points
    ]
    text = reporting.format_table(
        ["cwnd_gain", "Conf", "Conf-T", "d-tput (Mbps)", "d-delay (ms)"],
        rows,
        title="Fig 5: modified kernel BBR vs vanilla (paper: Conf peaks at "
        "gain 2.0, Conf-T stays high)",
    )
    save_artifact("fig05_cwndgain_sweep", text)
    emit_bench(__file__, conformance={
        str(p.cwnd_gain): round(p.conformance, 3) for p in points
    }, conformance_t={
        str(p.cwnd_gain): round(p.conformance_t, 3) for p in points
    })

    by_gain = {p.cwnd_gain: p for p in points}
    default = by_gain[2.0]
    # Conformance peaks at the default gain.
    assert default.conformance >= max(
        by_gain[1.0].conformance, by_gain[4.0].conformance
    )
    # Far-off gains: Conf-T stays clearly above Conf (translated envelope).
    assert by_gain[4.0].conformance_t > by_gain[4.0].conformance + 0.1
    # A cwnd knob moves throughput upward as the gain grows.
    assert by_gain[4.0].delta_throughput_mbps > by_gain[2.0].delta_throughput_mbps
