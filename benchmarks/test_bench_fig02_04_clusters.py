"""Figures 2-4: natural cluster structure of the CCAs' envelopes.

* Fig 2 — TCP BBR's point cloud has two natural clusters (ProbeBW vs
  ProbeRTT phases).
* Fig 3 — CUBIC and Reno form clusters around throughput levels, with no
  fixed count.
* Fig 4 — the retention curve R(k) is strictly decreasing, and the chosen
  k sits just before its steepest drop.
"""

import numpy as np
from conftest import emit_bench, run_once

from repro.core.envelope import EnvelopeConfig, build_envelope
from repro.harness import reporting, scenarios
from repro.harness.conformance import reference_trials


def _reference_envelope(cca, bench_config, bench_cache):
    condition = scenarios.shallow_buffer()
    trials = reference_trials(cca, condition, bench_config, cache=bench_cache)
    return build_envelope(trials, EnvelopeConfig())


def test_fig2_bbr_two_clusters(benchmark, bench_config, bench_cache, save_artifact):
    pe = run_once(benchmark, lambda: _reference_envelope("bbr", bench_config, bench_cache))
    plot = reporting.format_envelope_ascii(
        pe.hulls, pe.all_points,
        title=f"Fig 2: kernel BBR envelope, k={pe.k} (paper: 2 clusters, ProbeBW+ProbeRTT)",
    )
    save_artifact("fig02_bbr_clusters", plot)
    # ProbeRTT samples sit at clearly lower throughput than ProbeBW ones.
    tputs = pe.all_points[:, 1]
    assert pe.k >= 2 or (np.percentile(tputs, 5) < 0.5 * np.percentile(tputs, 95))


def test_fig3_cubic_reno_clusters(benchmark, bench_config, bench_cache, save_artifact):
    def run():
        return (
            _reference_envelope("cubic", bench_config, bench_cache),
            _reference_envelope("reno", bench_config, bench_cache),
        )

    cubic_pe, reno_pe = run_once(benchmark, run)
    text = "\n\n".join(
        reporting.format_envelope_ascii(
            pe.hulls, pe.all_points, title=f"Fig 3: kernel {name} envelope, k={pe.k}"
        )
        for name, pe in (("CUBIC", cubic_pe), ("Reno", reno_pe))
    )
    save_artifact("fig03_cubic_reno_clusters", text)
    assert cubic_pe.k >= 1 and reno_pe.k >= 1
    assert cubic_pe.retained_fraction() > 0.5
    assert reno_pe.retained_fraction() > 0.5


def test_fig4_retention_curve(benchmark, bench_config, bench_cache, save_artifact):
    pe = run_once(benchmark, lambda: _reference_envelope("cubic", bench_config, bench_cache))
    curve = pe.retention_curve
    assert curve is not None
    rows = [[k + 1, round(float(r), 3)] for k, r in enumerate(curve)]
    text = reporting.format_table(
        ["k", "R(k) = IOU"],
        rows,
        title=f"Fig 4: information retained vs cluster count (chosen k={pe.k})",
    )
    save_artifact("fig04_k_selection", text)
    emit_bench(__file__, chosen_k=pe.k,
               retention_curve=[round(float(r), 3) for r in curve])
    # R is (weakly) decreasing in k.
    assert all(a >= b - 0.05 for a, b in zip(curve, curve[1:]))
    # The chosen k retains most points; k+1 retains fewer.
    assert curve[pe.k - 1] >= curve[-1]
