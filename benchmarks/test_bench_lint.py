"""Lint engine throughput: cold (parse everything) vs warm (cache) runs.

Emits ``output/BENCH_lint.json`` with files/sec for both paths and the
speedup.  The acceptance bar is warm >= 5x cold with byte-identical
findings — a warm run replays summaries from the content-hash cache and
only re-runs the whole-program phase, so if the speedup collapses the
incremental machinery has regressed.
"""

import dataclasses
import time
from pathlib import Path

from repro.lint import Baseline, LintConfig, find_repo_root, lint_paths, render_findings

from conftest import OUTPUT_DIR, emit_bench, run_once

#: The cache must be regression-proof against the real tree, so the
#: bench lints src/repro itself — through a bench-private cache file so
#: it never races a developer's own warm cache.
_CACHE_NAME = "benchmarks/output/.lint-bench-cache.json"


def _config():
    root = find_repo_root(Path(__file__).resolve().parent)
    return dataclasses.replace(
        LintConfig.for_root(root), cache_name=_CACHE_NAME
    )


def _run(config):
    return lint_paths(config=config, baseline=Baseline.load(config.baseline_path()))


def test_bench_lint_cold_vs_warm(benchmark):
    OUTPUT_DIR.mkdir(exist_ok=True)
    config = _config()
    cache = config.cache_path()
    if cache.exists():
        cache.unlink()

    def campaign():
        t0 = time.perf_counter()
        cold = _run(config)
        cold_s = time.perf_counter() - t0
        t1 = time.perf_counter()
        warm = _run(config)
        warm_s = time.perf_counter() - t1
        return cold, cold_s, warm, warm_s

    cold, cold_s, warm, warm_s = run_once(benchmark, campaign)

    # The warm run served every file from the cache...
    assert cold.cache_misses == cold.files and cold.cache_hits == 0
    assert warm.cache_hits == warm.files and warm.cache_misses == 0
    # ...with byte-identical output on all three channels.
    for channel in ("findings", "suppressed", "baselined"):
        assert render_findings(getattr(warm, channel), "json") == (
            render_findings(getattr(cold, channel), "json")
        ), f"warm {channel} differ from cold"

    speedup = cold_s / warm_s
    emit_bench(
        __file__,
        files=cold.files,
        rules=len(cold.rules_run),
        cold_s=round(cold_s, 4),
        warm_s=round(warm_s, 4),
        cold_files_per_s=round(cold.files / cold_s, 1),
        warm_files_per_s=round(warm.files / warm_s, 1),
        speedup=round(speedup, 2),
    )
    print(
        f"\nlint bench: {cold.files} files; cold {cold_s:.3f}s "
        f"({cold.files / cold_s:.0f} files/s), warm {warm_s:.3f}s "
        f"({cold.files / warm_s:.0f} files/s), speedup {speedup:.1f}x"
    )
    # Acceptance: the warm path must stay at least 5x faster than cold.
    assert speedup >= 5.0, (
        f"warm lint only {speedup:.1f}x faster than cold (need >= 5x): "
        "the incremental cache is no longer carrying the parse/extract cost"
    )
    if cache.exists():
        cache.unlink()
